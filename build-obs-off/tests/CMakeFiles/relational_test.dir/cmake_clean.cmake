file(REMOVE_RECURSE
  "CMakeFiles/relational_test.dir/relational_atom_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_atom_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational_builtin_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_builtin_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational_database_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_database_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational_query_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_query_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational_schema_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_schema_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational_value_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_value_test.cc.o.d"
  "relational_test"
  "relational_test.pdb"
  "relational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
