
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_cache_test.cc" "tests/CMakeFiles/workload_test.dir/workload_cache_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_cache_test.cc.o.d"
  "/root/repo/tests/workload_ghcn_test.cc" "tests/CMakeFiles/workload_test.dir/workload_ghcn_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_ghcn_test.cc.o.d"
  "/root/repo/tests/workload_random_test.cc" "tests/CMakeFiles/workload_test.dir/workload_random_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_random_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/parser/CMakeFiles/psc_parser.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/rewriting/CMakeFiles/psc_rewriting.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/core/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/algebra/CMakeFiles/psc_algebra.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/workload/CMakeFiles/psc_workload.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/consistency/CMakeFiles/psc_consistency.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/counting/CMakeFiles/psc_counting.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/tableau/CMakeFiles/psc_tableau.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/obs/CMakeFiles/psc_obs.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/source/CMakeFiles/psc_source.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
