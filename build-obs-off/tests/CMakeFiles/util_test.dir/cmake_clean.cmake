file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util_arithmetic_property_test.cc.o"
  "CMakeFiles/util_test.dir/util_arithmetic_property_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_bigint_test.cc.o"
  "CMakeFiles/util_test.dir/util_bigint_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_combinatorics_test.cc.o"
  "CMakeFiles/util_test.dir/util_combinatorics_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_random_test.cc.o"
  "CMakeFiles/util_test.dir/util_random_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_rational_test.cc.o"
  "CMakeFiles/util_test.dir/util_rational_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_status_test.cc.o"
  "CMakeFiles/util_test.dir/util_status_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_string_test.cc.o"
  "CMakeFiles/util_test.dir/util_string_test.cc.o.d"
  "util_test"
  "util_test.pdb"
  "util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
