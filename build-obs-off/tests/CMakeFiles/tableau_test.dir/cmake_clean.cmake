file(REMOVE_RECURSE
  "CMakeFiles/tableau_test.dir/tableau_constraint_test.cc.o"
  "CMakeFiles/tableau_test.dir/tableau_constraint_test.cc.o.d"
  "CMakeFiles/tableau_test.dir/tableau_tableau_test.cc.o"
  "CMakeFiles/tableau_test.dir/tableau_tableau_test.cc.o.d"
  "CMakeFiles/tableau_test.dir/tableau_template_test.cc.o"
  "CMakeFiles/tableau_test.dir/tableau_template_test.cc.o.d"
  "CMakeFiles/tableau_test.dir/tableau_theorem41_test.cc.o"
  "CMakeFiles/tableau_test.dir/tableau_theorem41_test.cc.o.d"
  "tableau_test"
  "tableau_test.pdb"
  "tableau_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
