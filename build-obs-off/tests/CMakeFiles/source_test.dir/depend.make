# Empty dependencies file for source_test.
# This may be replaced when dependencies are built.
