file(REMOVE_RECURSE
  "CMakeFiles/source_test.dir/source_collection_test.cc.o"
  "CMakeFiles/source_test.dir/source_collection_test.cc.o.d"
  "CMakeFiles/source_test.dir/source_descriptor_test.cc.o"
  "CMakeFiles/source_test.dir/source_descriptor_test.cc.o.d"
  "CMakeFiles/source_test.dir/source_measures_test.cc.o"
  "CMakeFiles/source_test.dir/source_measures_test.cc.o.d"
  "source_test"
  "source_test.pdb"
  "source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
