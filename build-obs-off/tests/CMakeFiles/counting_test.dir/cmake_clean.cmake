file(REMOVE_RECURSE
  "CMakeFiles/counting_test.dir/counting_consensus_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_consensus_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_counter_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_counter_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_dp_counter_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_dp_counter_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_example51_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_example51_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_instance_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_instance_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_linear_system_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_linear_system_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_sampler_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_sampler_test.cc.o.d"
  "CMakeFiles/counting_test.dir/counting_world_enumerator_test.cc.o"
  "CMakeFiles/counting_test.dir/counting_world_enumerator_test.cc.o.d"
  "counting_test"
  "counting_test.pdb"
  "counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
