file(REMOVE_RECURSE
  "CMakeFiles/consistency_test.dir/consistency_brute_force_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_brute_force_test.cc.o.d"
  "CMakeFiles/consistency_test.dir/consistency_diagnostics_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_diagnostics_test.cc.o.d"
  "CMakeFiles/consistency_test.dir/consistency_general_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_general_test.cc.o.d"
  "CMakeFiles/consistency_test.dir/consistency_hitting_set_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_hitting_set_test.cc.o.d"
  "CMakeFiles/consistency_test.dir/consistency_identity_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_identity_test.cc.o.d"
  "CMakeFiles/consistency_test.dir/consistency_shrink_witness_test.cc.o"
  "CMakeFiles/consistency_test.dir/consistency_shrink_witness_test.cc.o.d"
  "consistency_test"
  "consistency_test.pdb"
  "consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
