# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-obs-off/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-obs-off/tests/util_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/relational_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/parser_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/source_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/counting_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/tableau_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/consistency_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/rewriting_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/algebra_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/core_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/workload_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/property_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/integration_test[1]_include.cmake")
include("/root/repo/build-obs-off/tests/obs_test[1]_include.cmake")
