# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-obs-off/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("psc/util")
subdirs("psc/obs")
subdirs("psc/relational")
subdirs("psc/parser")
subdirs("psc/source")
subdirs("psc/counting")
subdirs("psc/tableau")
subdirs("psc/consistency")
subdirs("psc/rewriting")
subdirs("psc/algebra")
subdirs("psc/core")
subdirs("psc/workload")
