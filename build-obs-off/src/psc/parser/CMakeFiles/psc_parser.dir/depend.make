# Empty dependencies file for psc_parser.
# This may be replaced when dependencies are built.
