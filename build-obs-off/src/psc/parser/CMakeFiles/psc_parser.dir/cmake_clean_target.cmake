file(REMOVE_RECURSE
  "libpsc_parser.a"
)
