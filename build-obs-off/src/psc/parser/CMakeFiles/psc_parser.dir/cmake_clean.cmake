file(REMOVE_RECURSE
  "CMakeFiles/psc_parser.dir/lexer.cc.o"
  "CMakeFiles/psc_parser.dir/lexer.cc.o.d"
  "CMakeFiles/psc_parser.dir/parser.cc.o"
  "CMakeFiles/psc_parser.dir/parser.cc.o.d"
  "libpsc_parser.a"
  "libpsc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
