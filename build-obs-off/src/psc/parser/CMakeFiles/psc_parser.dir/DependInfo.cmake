
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/parser/lexer.cc" "src/psc/parser/CMakeFiles/psc_parser.dir/lexer.cc.o" "gcc" "src/psc/parser/CMakeFiles/psc_parser.dir/lexer.cc.o.d"
  "/root/repo/src/psc/parser/parser.cc" "src/psc/parser/CMakeFiles/psc_parser.dir/parser.cc.o" "gcc" "src/psc/parser/CMakeFiles/psc_parser.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/source/CMakeFiles/psc_source.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
