file(REMOVE_RECURSE
  "CMakeFiles/psc_algebra.dir/expression.cc.o"
  "CMakeFiles/psc_algebra.dir/expression.cc.o.d"
  "CMakeFiles/psc_algebra.dir/operators.cc.o"
  "CMakeFiles/psc_algebra.dir/operators.cc.o.d"
  "CMakeFiles/psc_algebra.dir/plan_compiler.cc.o"
  "CMakeFiles/psc_algebra.dir/plan_compiler.cc.o.d"
  "CMakeFiles/psc_algebra.dir/prob_relation.cc.o"
  "CMakeFiles/psc_algebra.dir/prob_relation.cc.o.d"
  "libpsc_algebra.a"
  "libpsc_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
