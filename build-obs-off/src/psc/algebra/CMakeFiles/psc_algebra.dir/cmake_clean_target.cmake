file(REMOVE_RECURSE
  "libpsc_algebra.a"
)
