
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/algebra/expression.cc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/expression.cc.o" "gcc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/expression.cc.o.d"
  "/root/repo/src/psc/algebra/operators.cc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/operators.cc.o" "gcc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/operators.cc.o.d"
  "/root/repo/src/psc/algebra/plan_compiler.cc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/plan_compiler.cc.o" "gcc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/plan_compiler.cc.o.d"
  "/root/repo/src/psc/algebra/prob_relation.cc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/prob_relation.cc.o" "gcc" "src/psc/algebra/CMakeFiles/psc_algebra.dir/prob_relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/obs/CMakeFiles/psc_obs.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
