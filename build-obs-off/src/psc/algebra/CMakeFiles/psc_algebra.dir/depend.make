# Empty dependencies file for psc_algebra.
# This may be replaced when dependencies are built.
