file(REMOVE_RECURSE
  "CMakeFiles/psc_source.dir/measures.cc.o"
  "CMakeFiles/psc_source.dir/measures.cc.o.d"
  "CMakeFiles/psc_source.dir/source_collection.cc.o"
  "CMakeFiles/psc_source.dir/source_collection.cc.o.d"
  "CMakeFiles/psc_source.dir/source_descriptor.cc.o"
  "CMakeFiles/psc_source.dir/source_descriptor.cc.o.d"
  "libpsc_source.a"
  "libpsc_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
