file(REMOVE_RECURSE
  "libpsc_source.a"
)
