# Empty dependencies file for psc_source.
# This may be replaced when dependencies are built.
