file(REMOVE_RECURSE
  "CMakeFiles/psc_util.dir/bigint.cc.o"
  "CMakeFiles/psc_util.dir/bigint.cc.o.d"
  "CMakeFiles/psc_util.dir/combinatorics.cc.o"
  "CMakeFiles/psc_util.dir/combinatorics.cc.o.d"
  "CMakeFiles/psc_util.dir/random.cc.o"
  "CMakeFiles/psc_util.dir/random.cc.o.d"
  "CMakeFiles/psc_util.dir/rational.cc.o"
  "CMakeFiles/psc_util.dir/rational.cc.o.d"
  "CMakeFiles/psc_util.dir/status.cc.o"
  "CMakeFiles/psc_util.dir/status.cc.o.d"
  "CMakeFiles/psc_util.dir/string_util.cc.o"
  "CMakeFiles/psc_util.dir/string_util.cc.o.d"
  "libpsc_util.a"
  "libpsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
