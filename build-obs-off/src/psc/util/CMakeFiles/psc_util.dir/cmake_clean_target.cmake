file(REMOVE_RECURSE
  "libpsc_util.a"
)
