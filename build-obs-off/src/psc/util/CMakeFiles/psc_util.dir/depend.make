# Empty dependencies file for psc_util.
# This may be replaced when dependencies are built.
