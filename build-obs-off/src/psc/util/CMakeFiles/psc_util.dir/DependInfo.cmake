
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/util/bigint.cc" "src/psc/util/CMakeFiles/psc_util.dir/bigint.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/bigint.cc.o.d"
  "/root/repo/src/psc/util/combinatorics.cc" "src/psc/util/CMakeFiles/psc_util.dir/combinatorics.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/combinatorics.cc.o.d"
  "/root/repo/src/psc/util/random.cc" "src/psc/util/CMakeFiles/psc_util.dir/random.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/random.cc.o.d"
  "/root/repo/src/psc/util/rational.cc" "src/psc/util/CMakeFiles/psc_util.dir/rational.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/rational.cc.o.d"
  "/root/repo/src/psc/util/status.cc" "src/psc/util/CMakeFiles/psc_util.dir/status.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/status.cc.o.d"
  "/root/repo/src/psc/util/string_util.cc" "src/psc/util/CMakeFiles/psc_util.dir/string_util.cc.o" "gcc" "src/psc/util/CMakeFiles/psc_util.dir/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
