
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/consistency/diagnostics.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/diagnostics.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/diagnostics.cc.o.d"
  "/root/repo/src/psc/consistency/general_consistency.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/general_consistency.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/general_consistency.cc.o.d"
  "/root/repo/src/psc/consistency/hitting_set.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/hitting_set.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/hitting_set.cc.o.d"
  "/root/repo/src/psc/consistency/identity_consistency.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/identity_consistency.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/identity_consistency.cc.o.d"
  "/root/repo/src/psc/consistency/possible_worlds.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/possible_worlds.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/possible_worlds.cc.o.d"
  "/root/repo/src/psc/consistency/shrink_witness.cc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/shrink_witness.cc.o" "gcc" "src/psc/consistency/CMakeFiles/psc_consistency.dir/shrink_witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/obs/CMakeFiles/psc_obs.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/tableau/CMakeFiles/psc_tableau.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/counting/CMakeFiles/psc_counting.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/source/CMakeFiles/psc_source.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
