file(REMOVE_RECURSE
  "libpsc_consistency.a"
)
