# Empty dependencies file for psc_consistency.
# This may be replaced when dependencies are built.
