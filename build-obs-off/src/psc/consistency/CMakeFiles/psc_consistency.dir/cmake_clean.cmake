file(REMOVE_RECURSE
  "CMakeFiles/psc_consistency.dir/diagnostics.cc.o"
  "CMakeFiles/psc_consistency.dir/diagnostics.cc.o.d"
  "CMakeFiles/psc_consistency.dir/general_consistency.cc.o"
  "CMakeFiles/psc_consistency.dir/general_consistency.cc.o.d"
  "CMakeFiles/psc_consistency.dir/hitting_set.cc.o"
  "CMakeFiles/psc_consistency.dir/hitting_set.cc.o.d"
  "CMakeFiles/psc_consistency.dir/identity_consistency.cc.o"
  "CMakeFiles/psc_consistency.dir/identity_consistency.cc.o.d"
  "CMakeFiles/psc_consistency.dir/possible_worlds.cc.o"
  "CMakeFiles/psc_consistency.dir/possible_worlds.cc.o.d"
  "CMakeFiles/psc_consistency.dir/shrink_witness.cc.o"
  "CMakeFiles/psc_consistency.dir/shrink_witness.cc.o.d"
  "libpsc_consistency.a"
  "libpsc_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
