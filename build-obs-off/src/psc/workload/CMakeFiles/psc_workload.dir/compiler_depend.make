# Empty compiler generated dependencies file for psc_workload.
# This may be replaced when dependencies are built.
