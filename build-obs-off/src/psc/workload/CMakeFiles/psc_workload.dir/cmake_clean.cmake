file(REMOVE_RECURSE
  "CMakeFiles/psc_workload.dir/cache_workload.cc.o"
  "CMakeFiles/psc_workload.dir/cache_workload.cc.o.d"
  "CMakeFiles/psc_workload.dir/ghcn.cc.o"
  "CMakeFiles/psc_workload.dir/ghcn.cc.o.d"
  "CMakeFiles/psc_workload.dir/random_collections.cc.o"
  "CMakeFiles/psc_workload.dir/random_collections.cc.o.d"
  "libpsc_workload.a"
  "libpsc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
