file(REMOVE_RECURSE
  "libpsc_workload.a"
)
