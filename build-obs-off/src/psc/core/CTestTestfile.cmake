# CMake generated Testfile for 
# Source directory: /root/repo/src/psc/core
# Build directory: /root/repo/build-obs-off/src/psc/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
