file(REMOVE_RECURSE
  "CMakeFiles/psc_core.dir/certain_answer.cc.o"
  "CMakeFiles/psc_core.dir/certain_answer.cc.o.d"
  "CMakeFiles/psc_core.dir/query_system.cc.o"
  "CMakeFiles/psc_core.dir/query_system.cc.o.d"
  "libpsc_core.a"
  "libpsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
