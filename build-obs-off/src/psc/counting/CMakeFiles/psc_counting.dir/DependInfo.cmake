
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/counting/confidence.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/confidence.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/confidence.cc.o.d"
  "/root/repo/src/psc/counting/consensus.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/consensus.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/consensus.cc.o.d"
  "/root/repo/src/psc/counting/dp_counter.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/dp_counter.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/dp_counter.cc.o.d"
  "/root/repo/src/psc/counting/identity_instance.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/identity_instance.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/identity_instance.cc.o.d"
  "/root/repo/src/psc/counting/linear_system.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/linear_system.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/linear_system.cc.o.d"
  "/root/repo/src/psc/counting/model_counter.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/model_counter.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/model_counter.cc.o.d"
  "/root/repo/src/psc/counting/world_enumerator.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/world_enumerator.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/world_enumerator.cc.o.d"
  "/root/repo/src/psc/counting/world_sampler.cc" "src/psc/counting/CMakeFiles/psc_counting.dir/world_sampler.cc.o" "gcc" "src/psc/counting/CMakeFiles/psc_counting.dir/world_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/obs/CMakeFiles/psc_obs.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/source/CMakeFiles/psc_source.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
