file(REMOVE_RECURSE
  "CMakeFiles/psc_counting.dir/confidence.cc.o"
  "CMakeFiles/psc_counting.dir/confidence.cc.o.d"
  "CMakeFiles/psc_counting.dir/consensus.cc.o"
  "CMakeFiles/psc_counting.dir/consensus.cc.o.d"
  "CMakeFiles/psc_counting.dir/dp_counter.cc.o"
  "CMakeFiles/psc_counting.dir/dp_counter.cc.o.d"
  "CMakeFiles/psc_counting.dir/identity_instance.cc.o"
  "CMakeFiles/psc_counting.dir/identity_instance.cc.o.d"
  "CMakeFiles/psc_counting.dir/linear_system.cc.o"
  "CMakeFiles/psc_counting.dir/linear_system.cc.o.d"
  "CMakeFiles/psc_counting.dir/model_counter.cc.o"
  "CMakeFiles/psc_counting.dir/model_counter.cc.o.d"
  "CMakeFiles/psc_counting.dir/world_enumerator.cc.o"
  "CMakeFiles/psc_counting.dir/world_enumerator.cc.o.d"
  "CMakeFiles/psc_counting.dir/world_sampler.cc.o"
  "CMakeFiles/psc_counting.dir/world_sampler.cc.o.d"
  "libpsc_counting.a"
  "libpsc_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
