file(REMOVE_RECURSE
  "libpsc_counting.a"
)
