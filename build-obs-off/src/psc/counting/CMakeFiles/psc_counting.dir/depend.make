# Empty dependencies file for psc_counting.
# This may be replaced when dependencies are built.
