# Empty dependencies file for psc_tableau.
# This may be replaced when dependencies are built.
