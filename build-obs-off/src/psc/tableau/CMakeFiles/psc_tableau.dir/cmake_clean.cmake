file(REMOVE_RECURSE
  "CMakeFiles/psc_tableau.dir/constraint.cc.o"
  "CMakeFiles/psc_tableau.dir/constraint.cc.o.d"
  "CMakeFiles/psc_tableau.dir/database_template.cc.o"
  "CMakeFiles/psc_tableau.dir/database_template.cc.o.d"
  "CMakeFiles/psc_tableau.dir/tableau.cc.o"
  "CMakeFiles/psc_tableau.dir/tableau.cc.o.d"
  "CMakeFiles/psc_tableau.dir/template_builder.cc.o"
  "CMakeFiles/psc_tableau.dir/template_builder.cc.o.d"
  "libpsc_tableau.a"
  "libpsc_tableau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_tableau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
