
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/tableau/constraint.cc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/constraint.cc.o" "gcc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/constraint.cc.o.d"
  "/root/repo/src/psc/tableau/database_template.cc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/database_template.cc.o" "gcc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/database_template.cc.o.d"
  "/root/repo/src/psc/tableau/tableau.cc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/tableau.cc.o" "gcc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/tableau.cc.o.d"
  "/root/repo/src/psc/tableau/template_builder.cc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/template_builder.cc.o" "gcc" "src/psc/tableau/CMakeFiles/psc_tableau.dir/template_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/obs/CMakeFiles/psc_obs.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/source/CMakeFiles/psc_source.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/relational/CMakeFiles/psc_relational.dir/DependInfo.cmake"
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
