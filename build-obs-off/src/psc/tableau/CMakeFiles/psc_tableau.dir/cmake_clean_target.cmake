file(REMOVE_RECURSE
  "libpsc_tableau.a"
)
