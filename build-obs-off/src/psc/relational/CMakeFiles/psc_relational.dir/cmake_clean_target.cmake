file(REMOVE_RECURSE
  "libpsc_relational.a"
)
