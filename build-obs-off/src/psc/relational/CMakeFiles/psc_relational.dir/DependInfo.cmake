
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/relational/atom.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/atom.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/atom.cc.o.d"
  "/root/repo/src/psc/relational/builtin.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/builtin.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/builtin.cc.o.d"
  "/root/repo/src/psc/relational/conjunctive_query.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/conjunctive_query.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/psc/relational/database.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/database.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/database.cc.o.d"
  "/root/repo/src/psc/relational/schema.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/schema.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/schema.cc.o.d"
  "/root/repo/src/psc/relational/term.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/term.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/term.cc.o.d"
  "/root/repo/src/psc/relational/value.cc" "src/psc/relational/CMakeFiles/psc_relational.dir/value.cc.o" "gcc" "src/psc/relational/CMakeFiles/psc_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-obs-off/src/psc/util/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
