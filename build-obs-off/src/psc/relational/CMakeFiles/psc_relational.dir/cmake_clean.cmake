file(REMOVE_RECURSE
  "CMakeFiles/psc_relational.dir/atom.cc.o"
  "CMakeFiles/psc_relational.dir/atom.cc.o.d"
  "CMakeFiles/psc_relational.dir/builtin.cc.o"
  "CMakeFiles/psc_relational.dir/builtin.cc.o.d"
  "CMakeFiles/psc_relational.dir/conjunctive_query.cc.o"
  "CMakeFiles/psc_relational.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/psc_relational.dir/database.cc.o"
  "CMakeFiles/psc_relational.dir/database.cc.o.d"
  "CMakeFiles/psc_relational.dir/schema.cc.o"
  "CMakeFiles/psc_relational.dir/schema.cc.o.d"
  "CMakeFiles/psc_relational.dir/term.cc.o"
  "CMakeFiles/psc_relational.dir/term.cc.o.d"
  "CMakeFiles/psc_relational.dir/value.cc.o"
  "CMakeFiles/psc_relational.dir/value.cc.o.d"
  "libpsc_relational.a"
  "libpsc_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
