# Empty dependencies file for psc_relational.
# This may be replaced when dependencies are built.
