file(REMOVE_RECURSE
  "CMakeFiles/psc_obs.dir/json.cc.o"
  "CMakeFiles/psc_obs.dir/json.cc.o.d"
  "CMakeFiles/psc_obs.dir/metrics.cc.o"
  "CMakeFiles/psc_obs.dir/metrics.cc.o.d"
  "CMakeFiles/psc_obs.dir/report.cc.o"
  "CMakeFiles/psc_obs.dir/report.cc.o.d"
  "CMakeFiles/psc_obs.dir/trace.cc.o"
  "CMakeFiles/psc_obs.dir/trace.cc.o.d"
  "libpsc_obs.a"
  "libpsc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
