file(REMOVE_RECURSE
  "libpsc_obs.a"
)
