# Empty dependencies file for psc_obs.
# This may be replaced when dependencies are built.
