file(REMOVE_RECURSE
  "CMakeFiles/psc_rewriting.dir/bucket_rewriter.cc.o"
  "CMakeFiles/psc_rewriting.dir/bucket_rewriter.cc.o.d"
  "CMakeFiles/psc_rewriting.dir/containment.cc.o"
  "CMakeFiles/psc_rewriting.dir/containment.cc.o.d"
  "libpsc_rewriting.a"
  "libpsc_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
