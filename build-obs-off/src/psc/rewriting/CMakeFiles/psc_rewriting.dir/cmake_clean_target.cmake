file(REMOVE_RECURSE
  "libpsc_rewriting.a"
)
