# Empty dependencies file for psc_rewriting.
# This may be replaced when dependencies are built.
