# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-obs-off/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(metrics_schema_check "/usr/bin/cmake" "-DPSC_CLI=/root/repo/build-obs-off/tools/psc" "-DPYTHON=/root/.pyenv/shims/python3" "-DCHECKER=/root/repo/tools/check_metrics_schema.py" "-DINPUT=/root/repo/data/example51.psc" "-DOUTPUT=/root/repo/build-obs-off/tools/metrics_schema_check.json" "-DREQUIRED_COUNTERS=" "-P" "/root/repo/tools/run_metrics_check.cmake")
set_tests_properties(metrics_schema_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
