# Empty compiler generated dependencies file for psc_cli.
# This may be replaced when dependencies are built.
