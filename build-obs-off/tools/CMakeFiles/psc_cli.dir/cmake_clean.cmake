file(REMOVE_RECURSE
  "CMakeFiles/psc_cli.dir/psc_cli.cc.o"
  "CMakeFiles/psc_cli.dir/psc_cli.cc.o.d"
  "psc"
  "psc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
