# Empty dependencies file for bench_example51.
# This may be replaced when dependencies are built.
