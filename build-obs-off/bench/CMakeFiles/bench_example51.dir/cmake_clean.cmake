file(REMOVE_RECURSE
  "CMakeFiles/bench_example51.dir/bench_example51.cc.o"
  "CMakeFiles/bench_example51.dir/bench_example51.cc.o.d"
  "bench_example51"
  "bench_example51.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
