# Empty compiler generated dependencies file for bench_ghcn.
# This may be replaced when dependencies are built.
