file(REMOVE_RECURSE
  "CMakeFiles/bench_ghcn.dir/bench_ghcn.cc.o"
  "CMakeFiles/bench_ghcn.dir/bench_ghcn.cc.o.d"
  "bench_ghcn"
  "bench_ghcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ghcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
