file(REMOVE_RECURSE
  "CMakeFiles/bench_templates.dir/bench_templates.cc.o"
  "CMakeFiles/bench_templates.dir/bench_templates.cc.o.d"
  "bench_templates"
  "bench_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
