# Empty dependencies file for bench_templates.
# This may be replaced when dependencies are built.
