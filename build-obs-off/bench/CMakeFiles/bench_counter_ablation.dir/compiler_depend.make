# Empty compiler generated dependencies file for bench_counter_ablation.
# This may be replaced when dependencies are built.
