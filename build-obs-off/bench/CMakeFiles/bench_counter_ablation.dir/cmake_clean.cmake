file(REMOVE_RECURSE
  "CMakeFiles/bench_counter_ablation.dir/bench_counter_ablation.cc.o"
  "CMakeFiles/bench_counter_ablation.dir/bench_counter_ablation.cc.o.d"
  "bench_counter_ablation"
  "bench_counter_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
