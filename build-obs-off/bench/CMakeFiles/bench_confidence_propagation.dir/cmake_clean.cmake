file(REMOVE_RECURSE
  "CMakeFiles/bench_confidence_propagation.dir/bench_confidence_propagation.cc.o"
  "CMakeFiles/bench_confidence_propagation.dir/bench_confidence_propagation.cc.o.d"
  "bench_confidence_propagation"
  "bench_confidence_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confidence_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
