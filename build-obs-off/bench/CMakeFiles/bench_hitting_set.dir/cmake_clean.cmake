file(REMOVE_RECURSE
  "CMakeFiles/bench_hitting_set.dir/bench_hitting_set.cc.o"
  "CMakeFiles/bench_hitting_set.dir/bench_hitting_set.cc.o.d"
  "bench_hitting_set"
  "bench_hitting_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hitting_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
