# Empty compiler generated dependencies file for bench_hitting_set.
# This may be replaced when dependencies are built.
