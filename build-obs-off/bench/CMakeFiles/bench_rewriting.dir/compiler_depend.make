# Empty compiler generated dependencies file for bench_rewriting.
# This may be replaced when dependencies are built.
