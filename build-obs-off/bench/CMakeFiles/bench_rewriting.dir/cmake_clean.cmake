file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriting.dir/bench_rewriting.cc.o"
  "CMakeFiles/bench_rewriting.dir/bench_rewriting.cc.o.d"
  "bench_rewriting"
  "bench_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
