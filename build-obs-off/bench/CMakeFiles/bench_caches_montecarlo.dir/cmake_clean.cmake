file(REMOVE_RECURSE
  "CMakeFiles/bench_caches_montecarlo.dir/bench_caches_montecarlo.cc.o"
  "CMakeFiles/bench_caches_montecarlo.dir/bench_caches_montecarlo.cc.o.d"
  "bench_caches_montecarlo"
  "bench_caches_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_caches_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
