# Empty compiler generated dependencies file for consistency_audit.
# This may be replaced when dependencies are built.
