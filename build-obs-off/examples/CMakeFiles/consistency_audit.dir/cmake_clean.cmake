file(REMOVE_RECURSE
  "CMakeFiles/consistency_audit.dir/consistency_audit.cpp.o"
  "CMakeFiles/consistency_audit.dir/consistency_audit.cpp.o.d"
  "consistency_audit"
  "consistency_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
