# Empty compiler generated dependencies file for web_caches.
# This may be replaced when dependencies are built.
