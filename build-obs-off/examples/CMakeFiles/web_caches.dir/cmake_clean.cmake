file(REMOVE_RECURSE
  "CMakeFiles/web_caches.dir/web_caches.cpp.o"
  "CMakeFiles/web_caches.dir/web_caches.cpp.o.d"
  "web_caches"
  "web_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
