file(REMOVE_RECURSE
  "CMakeFiles/climatology.dir/climatology.cpp.o"
  "CMakeFiles/climatology.dir/climatology.cpp.o.d"
  "climatology"
  "climatology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climatology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
