# Empty dependencies file for climatology.
# This may be replaced when dependencies are built.
