#include "psc/workload/random_collections.h"

#include <algorithm>

#include "psc/util/string_util.h"

namespace psc {

Result<SourceCollection> MakeRandomIdentityCollection(
    const RandomIdentityConfig& config, Rng* rng) {
  PSC_CHECK(rng != nullptr);
  if (config.num_sources < 1 || config.universe_size < 1 ||
      config.min_extension < 0 ||
      config.max_extension < config.min_extension ||
      config.bound_granularity < 1) {
    return Status::InvalidArgument("invalid random collection config");
  }
  std::vector<SourceDescriptor> sources;
  for (int64_t i = 0; i < config.num_sources; ++i) {
    const int64_t size = std::min(
        config.universe_size,
        rng->UniformInt(config.min_extension, config.max_extension));
    const std::vector<int64_t> picks =
        rng->SampleWithoutReplacement(config.universe_size, size);
    Relation extension;
    for (const int64_t pick : picks) extension.insert(Tuple{Value(pick)});
    const Rational completeness(
        rng->UniformInt(0, config.bound_granularity),
        config.bound_granularity);
    const Rational soundness(rng->UniformInt(0, config.bound_granularity),
                             config.bound_granularity);
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor source,
        SourceDescriptor::Create(StrCat("S", i + 1),
                                 ConjunctiveQuery::Identity("R", 1),
                                 std::move(extension), completeness,
                                 soundness));
    sources.push_back(std::move(source));
  }
  return SourceCollection::Create(std::move(sources));
}

HittingSetInstance MakeRandomHittingSet(int64_t universe_size,
                                        int64_t num_subsets,
                                        int64_t max_subset_size,
                                        int64_t budget, Rng* rng) {
  PSC_CHECK(rng != nullptr);
  HittingSetInstance instance;
  instance.universe_size = universe_size;
  instance.budget = budget;
  for (int64_t i = 0; i < num_subsets; ++i) {
    const int64_t size = std::min(
        universe_size, rng->UniformInt(1, std::max<int64_t>(
                                              1, max_subset_size)));
    instance.subsets.push_back(
        rng->SampleWithoutReplacement(universe_size, size));
  }
  return instance;
}

}  // namespace psc
