#include "psc/workload/cache_workload.h"

#include <algorithm>

#include "psc/util/random.h"
#include "psc/util/string_util.h"

namespace psc {

Result<CacheWorkload> MakeCacheWorkload(const CacheConfig& config) {
  if (config.num_objects < 1 || config.num_caches < 1) {
    return Status::InvalidArgument("need >= 1 object and >= 1 cache");
  }
  if (config.coverage < 0.0 || config.coverage > 1.0 ||
      config.staleness < 0.0 || config.staleness > 1.0) {
    return Status::InvalidArgument(
        "coverage and staleness must be within [0,1]");
  }
  Rng rng(config.seed);
  CacheWorkload workload;
  for (int64_t id = 0; id < config.num_objects; ++id) {
    workload.live_objects.insert(id);
  }

  std::vector<SourceDescriptor> sources;
  for (int64_t cache = 0; cache < config.num_caches; ++cache) {
    const int64_t held = std::clamp<int64_t>(
        static_cast<int64_t>(config.coverage * config.num_objects + 0.5), 0,
        config.num_objects);
    const std::vector<int64_t> live_picks =
        rng.SampleWithoutReplacement(config.num_objects, held);
    const int64_t stale = std::clamp<int64_t>(
        static_cast<int64_t>(config.staleness * held + 0.5), 0, held);

    Relation extension;
    int64_t sound = 0;
    for (size_t i = 0; i < live_picks.size(); ++i) {
      if (static_cast<int64_t>(i) < stale) {
        // A stale entry: an object id that no longer exists.
        extension.insert(
            Tuple{Value(config.num_objects +
                        rng.UniformInt(0, config.num_objects - 1))});
      } else {
        extension.insert(Tuple{Value(live_picks[i])});
        ++sound;
      }
    }
    const int64_t extension_size = static_cast<int64_t>(extension.size());
    const Rational soundness =
        extension_size == 0 ? Rational::One()
                            : Rational(sound, extension_size);
    const Rational completeness = Rational(sound, config.num_objects);
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor source,
        SourceDescriptor::Create(StrCat("cache", cache + 1),
                                 ConjunctiveQuery::Identity("Object", 1),
                                 std::move(extension), completeness,
                                 soundness));
    sources.push_back(std::move(source));
  }
  PSC_ASSIGN_OR_RETURN(workload.collection,
                       SourceCollection::Create(std::move(sources)));
  return workload;
}

}  // namespace psc
