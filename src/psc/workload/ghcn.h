#ifndef PSC_WORKLOAD_GHCN_H_
#define PSC_WORKLOAD_GHCN_H_

#include <string>
#include <vector>

#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/random.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Synthetic Global Historical Climatology Network workload — the
/// paper's motivating example (Section 1.1), substituted for the real NOAA
/// data per DESIGN.md.
///
/// Global schema:
///   Station(id, latitude, longitude, country)
///   Temperature(station, year, month, value)   (value = tenths of °C)
///
/// The generator first draws a ground-truth database ("the real world"),
/// then derives sources as noisy views of it: each source's intended
/// content is φ(truth); its actual extension keeps a `coverage` fraction of
/// those facts and corrupts an `error_rate` fraction of the kept ones. The
/// claimed bounds are computed from the *actual* soundness/completeness
/// (so the truth is a possible world) unless `overclaim` asks for an
/// inconsistency scenario.
struct GhcnConfig {
  int64_t num_stations = 12;
  std::vector<std::string> countries = {"Canada", "US", "Mexico"};
  int64_t start_year = 1990;
  int64_t end_year = 1991;
  /// Mean temperature range, tenths of °C.
  int64_t min_value = -300;
  int64_t max_value = 350;
};

/// The generated ground truth plus its schema.
struct GhcnWorld {
  Database truth;
  Schema schema;
  /// Station ids, in order.
  std::vector<int64_t> station_ids;
};

class GhcnGenerator {
 public:
  GhcnGenerator(GhcnConfig config, uint64_t seed);

  /// Draws the ground-truth database: every station gets a country and
  /// coordinates, and a temperature for every (year, month).
  GhcnWorld GenerateTruth();

  /// \brief The catalog source S₀: V₀(s,lat,lon,c) ← Station(s,lat,lon,c),
  /// with the full (exact) station list.
  Result<SourceDescriptor> MakeCatalogSource(const GhcnWorld& world,
                                             const std::string& name);

  /// \brief A country temperature source (the paper's S₁/S₂ shape):
  ///   V(s,y,m,v) ← Temperature(s,y,m,v), Station(s,lat,lon,"country"),
  ///                After(y, after_year).
  ///
  /// `coverage`, `error_rate` ∈ [0,1]. With `overclaim` the descriptor
  /// claims bounds strictly above the actual measures (useful for
  /// inconsistency experiments).
  Result<SourceDescriptor> MakeCountrySource(
      const GhcnWorld& world, const std::string& name,
      const std::string& country, int64_t after_year, double coverage,
      double error_rate, bool overclaim = false);

  /// \brief A single-station source (the paper's S₃ shape):
  ///   V(y,m,v) ← Temperature(station_id, y, m, v).
  Result<SourceDescriptor> MakeStationSource(const GhcnWorld& world,
                                             const std::string& name,
                                             int64_t station_id,
                                             double coverage,
                                             double error_rate);

 private:
  /// Derives extension + honest bounds from an intended relation.
  Result<SourceDescriptor> DeriveSource(const ConjunctiveQuery& view,
                                        const std::string& name,
                                        const Relation& intended,
                                        double coverage, double error_rate,
                                        bool overclaim, size_t value_column);

  GhcnConfig config_;
  Rng rng_;
};

}  // namespace psc

#endif  // PSC_WORKLOAD_GHCN_H_
