#ifndef PSC_WORKLOAD_CACHE_WORKLOAD_H_
#define PSC_WORKLOAD_CACHE_WORKLOAD_H_

#include <cstdint>
#include <set>

#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief The Section 6 application: "multiple caches of a set of objects
/// (e.g. Web pages, memory locations), multiple mirror-sites of a given
/// site". Every cache is an identity view over a unary relation
/// Object(id); partially stale caches are partially sound, partially
/// filled caches are partially complete — the data-model-independent
/// special case the paper highlights.
struct CacheConfig {
  /// Live objects are ids 0 … num_objects−1.
  int64_t num_objects = 100;
  int64_t num_caches = 4;
  /// Fraction of live objects each cache holds.
  double coverage = 0.7;
  /// Fraction of each cache's entries replaced by stale ids (ids of
  /// objects that no longer exist: num_objects … 2·num_objects−1).
  double staleness = 0.1;
  uint64_t seed = 42;
};

/// A generated cache federation plus its ground truth.
struct CacheWorkload {
  SourceCollection collection;
  /// The live object ids (the "real world" extension of Object).
  std::set<int64_t> live_objects;
};

/// \brief Generates a cache federation. Each cache descriptor claims its
/// *actual* soundness/completeness w.r.t. the live set, so the truth is
/// always a possible world.
Result<CacheWorkload> MakeCacheWorkload(const CacheConfig& config);

}  // namespace psc

#endif  // PSC_WORKLOAD_CACHE_WORKLOAD_H_
