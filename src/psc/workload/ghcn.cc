#include "psc/workload/ghcn.h"

#include <algorithm>

#include "psc/util/string_util.h"

namespace psc {

GhcnGenerator::GhcnGenerator(GhcnConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

GhcnWorld GhcnGenerator::GenerateTruth() {
  GhcnWorld world;
  const Status station_status = world.schema.AddRelation("Station", 4);
  const Status temp_status = world.schema.AddRelation("Temperature", 4);
  PSC_CHECK(station_status.ok() && temp_status.ok());

  for (int64_t i = 0; i < config_.num_stations; ++i) {
    const int64_t id = 1000 + i;
    world.station_ids.push_back(id);
    const std::string& country = config_.countries.empty()
                                     ? "Nowhere"
                                     : config_.countries[static_cast<size_t>(
                                           i) %
                                                         config_.countries
                                                             .size()];
    world.truth.AddFact(
        "Station",
        Tuple{Value(id), Value(rng_.UniformInt(-90, 90)),
              Value(rng_.UniformInt(-180, 180)), Value(country)});
    for (int64_t year = config_.start_year; year <= config_.end_year; ++year) {
      for (int64_t month = 1; month <= 12; ++month) {
        world.truth.AddFact(
            "Temperature",
            Tuple{Value(id), Value(year), Value(month),
                  Value(rng_.UniformInt(config_.min_value,
                                        config_.max_value))});
      }
    }
  }
  return world;
}

Result<SourceDescriptor> GhcnGenerator::MakeCatalogSource(
    const GhcnWorld& world, const std::string& name) {
  Atom head(StrCat("V_", name),
            {Term::Var("s"), Term::Var("lat"), Term::Var("lon"),
             Term::Var("c")});
  Atom body("Station", {Term::Var("s"), Term::Var("lat"), Term::Var("lon"),
                        Term::Var("c")});
  PSC_ASSIGN_OR_RETURN(ConjunctiveQuery view,
                       ConjunctiveQuery::Create(head, {body}));
  PSC_ASSIGN_OR_RETURN(const Relation intended, view.Evaluate(world.truth));
  return SourceDescriptor::Create(name, std::move(view), intended,
                                  Rational::One(), Rational::One());
}

Result<SourceDescriptor> GhcnGenerator::MakeCountrySource(
    const GhcnWorld& world, const std::string& name, const std::string& country,
    int64_t after_year, double coverage, double error_rate, bool overclaim) {
  Atom head(StrCat("V_", name), {Term::Var("s"), Term::Var("y"),
                                 Term::Var("m"), Term::Var("v")});
  Atom temperature("Temperature", {Term::Var("s"), Term::Var("y"),
                                   Term::Var("m"), Term::Var("v")});
  Atom station("Station", {Term::Var("s"), Term::Var("lat"), Term::Var("lon"),
                           Term::ConstStr(country)});
  Atom after("After", {Term::Var("y"), Term::ConstInt(after_year)});
  PSC_ASSIGN_OR_RETURN(
      ConjunctiveQuery view,
      ConjunctiveQuery::Create(head, {temperature, station, after}));
  PSC_ASSIGN_OR_RETURN(const Relation intended, view.Evaluate(world.truth));
  return DeriveSource(view, name, intended, coverage, error_rate, overclaim,
                      /*value_column=*/3);
}

Result<SourceDescriptor> GhcnGenerator::MakeStationSource(
    const GhcnWorld& world, const std::string& name, int64_t station_id,
    double coverage, double error_rate) {
  Atom head(StrCat("V_", name),
            {Term::Var("y"), Term::Var("m"), Term::Var("v")});
  Atom body("Temperature", {Term::ConstInt(station_id), Term::Var("y"),
                            Term::Var("m"), Term::Var("v")});
  PSC_ASSIGN_OR_RETURN(ConjunctiveQuery view,
                       ConjunctiveQuery::Create(head, {body}));
  PSC_ASSIGN_OR_RETURN(const Relation intended, view.Evaluate(world.truth));
  return DeriveSource(view, name, intended, coverage, error_rate,
                      /*overclaim=*/false, /*value_column=*/2);
}

Result<SourceDescriptor> GhcnGenerator::DeriveSource(
    const ConjunctiveQuery& view, const std::string& name,
    const Relation& intended, double coverage, double error_rate,
    bool overclaim, size_t value_column) {
  if (coverage < 0.0 || coverage > 1.0 || error_rate < 0.0 ||
      error_rate > 1.0) {
    return Status::InvalidArgument(
        "coverage and error_rate must be within [0,1]");
  }
  const std::vector<Tuple> intended_list(intended.begin(), intended.end());
  const int64_t total = static_cast<int64_t>(intended_list.size());
  const int64_t kept_count =
      std::clamp<int64_t>(static_cast<int64_t>(coverage * total + 0.5), 0,
                          total);
  const std::vector<int64_t> kept_indices =
      rng_.SampleWithoutReplacement(total, kept_count);

  std::vector<Tuple> kept;
  kept.reserve(kept_indices.size());
  for (const int64_t index : kept_indices) {
    kept.push_back(intended_list[static_cast<size_t>(index)]);
  }

  const int64_t corrupt_count = std::clamp<int64_t>(
      static_cast<int64_t>(error_rate * kept_count + 0.5), 0, kept_count);
  Relation extension;
  for (size_t i = 0; i < kept.size(); ++i) {
    Tuple tuple = kept[i];
    if (static_cast<int64_t>(i) < corrupt_count) {
      // Perturb the measurement until the tuple leaves the intended set
      // (a genuinely incorrect reading).
      PSC_CHECK(value_column < tuple.size());
      do {
        tuple[value_column] =
            Value(tuple[value_column].AsInt() + rng_.UniformInt(1, 500));
      } while (intended.count(tuple) > 0);
    }
    extension.insert(std::move(tuple));
  }

  // Actual measures w.r.t. the ground truth.
  int64_t sound = 0;
  for (const Tuple& tuple : extension) {
    if (intended.count(tuple) > 0) ++sound;
  }
  const int64_t extension_size = static_cast<int64_t>(extension.size());
  Rational actual_soundness = extension_size == 0
                                  ? Rational::One()
                                  : Rational(sound, extension_size);
  Rational actual_completeness =
      total == 0 ? Rational::One() : Rational(sound, total);

  Rational claimed_soundness = actual_soundness;
  Rational claimed_completeness = actual_completeness;
  if (overclaim) {
    const Rational bump(1, 4);
    const Rational one = Rational::One();
    claimed_soundness = actual_soundness + bump;
    if (one < claimed_soundness) claimed_soundness = one;
    claimed_completeness = actual_completeness + bump;
    if (one < claimed_completeness) claimed_completeness = one;
  }
  return SourceDescriptor::Create(name, view, std::move(extension),
                                  claimed_completeness, claimed_soundness);
}

}  // namespace psc
