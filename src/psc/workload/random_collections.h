#ifndef PSC_WORKLOAD_RANDOM_COLLECTIONS_H_
#define PSC_WORKLOAD_RANDOM_COLLECTIONS_H_

#include <cstdint>

#include "psc/consistency/hitting_set.h"
#include "psc/source/source_collection.h"
#include "psc/util/random.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Random identity-view collections for randomized property tests
/// and the consistency-scaling experiments (E2).
struct RandomIdentityConfig {
  int64_t num_sources = 3;
  /// Universe is {0,…,universe_size−1} as unary integer facts.
  int64_t universe_size = 5;
  int64_t min_extension = 1;
  int64_t max_extension = 4;
  /// Bounds are drawn uniformly from {0, 1/q, 2/q, …, q/q}.
  int64_t bound_granularity = 4;
};

/// Draws a random identity collection over a unary relation "R".
Result<SourceCollection> MakeRandomIdentityCollection(
    const RandomIdentityConfig& config, Rng* rng);

/// \brief Random HITTING SET instances for the E3 reduction experiments.
/// Subset sizes are uniform in [1, max_subset_size].
HittingSetInstance MakeRandomHittingSet(int64_t universe_size,
                                        int64_t num_subsets,
                                        int64_t max_subset_size,
                                        int64_t budget, Rng* rng);

}  // namespace psc

#endif  // PSC_WORKLOAD_RANDOM_COLLECTIONS_H_
