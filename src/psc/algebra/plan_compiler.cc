#include "psc/algebra/plan_compiler.h"

#include <map>

#include "psc/relational/builtin.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// Comparison with operands swapped: After(c, y) ≡ Before(y, c).
Result<std::string> SwapComparison(const std::string& op) {
  if (op == "After") return std::string("Before");
  if (op == "Before") return std::string("After");
  if (op == "Lt") return std::string("Gt");
  if (op == "Gt") return std::string("Lt");
  if (op == "Le") return std::string("Ge");
  if (op == "Ge") return std::string("Le");
  if (op == "Eq" || op == "Ne") return op;
  return Status::Unimplemented(StrCat("cannot swap built-in '", op, "'"));
}

}  // namespace

Result<AlgebraExprPtr> CompileQuery(const ConjunctiveQuery& query) {
  if (query.relational_body().empty()) {
    return Status::Unimplemented(
        "plan compilation requires at least one relational body atom");
  }

  // Accumulated plan and the first column bound to each variable.
  AlgebraExprPtr plan;
  std::map<std::string, size_t> column_of;
  size_t width = 0;

  for (const Atom& atom : query.relational_body()) {
    AlgebraExprPtr scan = AlgebraExpr::Base(atom.predicate(), atom.arity());
    // Atom-local conditions: embedded constants and repeated variables
    // within this atom.
    std::vector<Condition> local;
    std::map<std::string, size_t> local_column;
    for (size_t pos = 0; pos < atom.arity(); ++pos) {
      const Term& term = atom.terms()[pos];
      if (term.is_constant()) {
        local.push_back(Condition::WithConstant(pos, "Eq", term.constant()));
        continue;
      }
      auto [it, inserted] = local_column.emplace(term.var_name(), pos);
      if (!inserted) {
        local.push_back(Condition::WithColumn(pos, "Eq", it->second));
      }
    }
    if (!local.empty()) {
      scan = AlgebraExpr::Select(std::move(scan), std::move(local));
    }

    if (plan == nullptr) {
      plan = std::move(scan);
    } else {
      plan = AlgebraExpr::Product(std::move(plan), std::move(scan));
    }

    // Cross-atom join conditions, and first-binding registration.
    std::vector<Condition> joins;
    for (const auto& [var, local_pos] : local_column) {
      const size_t global_pos = width + local_pos;
      auto [it, inserted] = column_of.emplace(var, global_pos);
      if (!inserted) {
        joins.push_back(Condition::WithColumn(global_pos, "Eq", it->second));
      }
    }
    if (!joins.empty()) {
      plan = AlgebraExpr::Select(std::move(plan), std::move(joins));
    }
    width += atom.arity();
  }

  // Built-in filters.
  std::vector<Condition> filters;
  for (const Atom& builtin : query.builtin_body()) {
    const Term& lhs = builtin.terms()[0];
    const Term& rhs = builtin.terms()[1];
    if (lhs.is_variable()) {
      const size_t lhs_col = column_of.at(lhs.var_name());
      if (rhs.is_variable()) {
        filters.push_back(Condition::WithColumn(
            lhs_col, builtin.predicate(), column_of.at(rhs.var_name())));
      } else {
        filters.push_back(Condition::WithConstant(
            lhs_col, builtin.predicate(), rhs.constant()));
      }
    } else if (rhs.is_variable()) {
      PSC_ASSIGN_OR_RETURN(const std::string swapped,
                           SwapComparison(builtin.predicate()));
      filters.push_back(Condition::WithConstant(
          column_of.at(rhs.var_name()), swapped, lhs.constant()));
    } else {
      // Ground built-in: decide now; an always-false one empties the plan.
      PSC_ASSIGN_OR_RETURN(
          const bool holds,
          EvalBuiltin(builtin.predicate(),
                      {lhs.constant(), rhs.constant()}));
      if (!holds) {
        filters.push_back(Condition::WithColumn(0, "Ne", 0));
      }
    }
  }
  if (!filters.empty()) {
    plan = AlgebraExpr::Select(std::move(plan), std::move(filters));
  }

  // Head projection.
  std::vector<size_t> head_columns;
  for (const Term& term : query.head().terms()) {
    if (term.is_constant()) {
      return Status::Unimplemented(
          StrCat("head constant ", term.ToString(),
                 " not supported by plan compilation; bind it with an Eq "
                 "built-in instead"));
    }
    head_columns.push_back(column_of.at(term.var_name()));
  }
  return AlgebraExpr::Project(std::move(plan), std::move(head_columns));
}

}  // namespace psc
