#include "psc/algebra/expression.h"

#include "psc/util/string_util.h"

namespace psc {

AlgebraExprPtr AlgebraExpr::Base(std::string name, size_t arity) {
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kBase;
  expr->base_name_ = std::move(name);
  expr->output_arity_ = arity;
  return AlgebraExprPtr(expr);
}

AlgebraExprPtr AlgebraExpr::Project(AlgebraExprPtr child,
                                    std::vector<size_t> columns) {
  PSC_CHECK(child != nullptr);
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kProject;
  expr->output_arity_ = columns.size();
  expr->columns_ = std::move(columns);
  expr->left_ = std::move(child);
  return AlgebraExprPtr(expr);
}

AlgebraExprPtr AlgebraExpr::Select(AlgebraExprPtr child,
                                   std::vector<Condition> conditions) {
  PSC_CHECK(child != nullptr);
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kSelect;
  expr->output_arity_ = child->OutputArity();
  expr->conditions_ = std::move(conditions);
  expr->left_ = std::move(child);
  return AlgebraExprPtr(expr);
}

AlgebraExprPtr AlgebraExpr::Product(AlgebraExprPtr left,
                                    AlgebraExprPtr right) {
  PSC_CHECK(left != nullptr && right != nullptr);
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kProduct;
  expr->output_arity_ = left->OutputArity() + right->OutputArity();
  expr->left_ = std::move(left);
  expr->right_ = std::move(right);
  return AlgebraExprPtr(expr);
}

AlgebraExprPtr AlgebraExpr::Join(
    AlgebraExprPtr left, AlgebraExprPtr right,
    std::vector<std::pair<size_t, size_t>> join_columns) {
  PSC_CHECK(left != nullptr && right != nullptr);
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kJoin;
  expr->output_arity_ =
      left->OutputArity() + right->OutputArity() - join_columns.size();
  expr->join_columns_ = std::move(join_columns);
  expr->left_ = std::move(left);
  expr->right_ = std::move(right);
  return AlgebraExprPtr(expr);
}

AlgebraExprPtr AlgebraExpr::Union(AlgebraExprPtr left, AlgebraExprPtr right) {
  PSC_CHECK(left != nullptr && right != nullptr);
  PSC_CHECK_MSG(left->OutputArity() == right->OutputArity(),
                "union of mismatched arities");
  auto* expr = new AlgebraExpr();
  expr->kind_ = Kind::kUnion;
  expr->output_arity_ = left->OutputArity();
  expr->left_ = std::move(left);
  expr->right_ = std::move(right);
  return AlgebraExprPtr(expr);
}

std::set<std::string> AlgebraExpr::BaseRelations() const {
  std::set<std::string> names;
  if (kind_ == Kind::kBase) {
    names.insert(base_name_);
    return names;
  }
  if (left_ != nullptr) {
    for (const std::string& name : left_->BaseRelations()) names.insert(name);
  }
  if (right_ != nullptr) {
    for (const std::string& name : right_->BaseRelations()) {
      names.insert(name);
    }
  }
  return names;
}

Result<ProbRelation> AlgebraExpr::EvalConfidence(
    const std::map<std::string, ProbRelation>& base) const {
  switch (kind_) {
    case Kind::kBase: {
      auto it = base.find(base_name_);
      if (it == base.end()) {
        return Status::NotFound(
            StrCat("no confidence relation for base '", base_name_, "'"));
      }
      if (it->second.arity() != output_arity_) {
        return Status::InvalidArgument(
            StrCat("base '", base_name_, "' has arity ", it->second.arity(),
                   ", plan expects ", output_arity_));
      }
      return it->second;
    }
    case Kind::kProject: {
      PSC_ASSIGN_OR_RETURN(const ProbRelation child,
                           left_->EvalConfidence(base));
      return psc::Project(child, columns_);
    }
    case Kind::kSelect: {
      PSC_ASSIGN_OR_RETURN(const ProbRelation child,
                           left_->EvalConfidence(base));
      return psc::Select(child, conditions_);
    }
    case Kind::kProduct: {
      PSC_ASSIGN_OR_RETURN(const ProbRelation lhs,
                           left_->EvalConfidence(base));
      PSC_ASSIGN_OR_RETURN(const ProbRelation rhs,
                           right_->EvalConfidence(base));
      return psc::CrossProduct(lhs, rhs);
    }
    case Kind::kJoin: {
      PSC_ASSIGN_OR_RETURN(const ProbRelation lhs,
                           left_->EvalConfidence(base));
      PSC_ASSIGN_OR_RETURN(const ProbRelation rhs,
                           right_->EvalConfidence(base));
      return psc::EquiJoin(lhs, rhs, join_columns_);
    }
    case Kind::kUnion: {
      PSC_ASSIGN_OR_RETURN(const ProbRelation lhs,
                           left_->EvalConfidence(base));
      PSC_ASSIGN_OR_RETURN(const ProbRelation rhs,
                           right_->EvalConfidence(base));
      return psc::Union(lhs, rhs);
    }
  }
  return Status::Internal("unreachable algebra kind");
}

Result<Relation> AlgebraExpr::EvalInWorld(const Database& db) const {
  switch (kind_) {
    case Kind::kBase:
      return db.GetRelation(base_name_);
    case Kind::kProject: {
      PSC_ASSIGN_OR_RETURN(const Relation child, left_->EvalInWorld(db));
      return ProjectRelation(child, left_->OutputArity(), columns_);
    }
    case Kind::kSelect: {
      PSC_ASSIGN_OR_RETURN(const Relation child, left_->EvalInWorld(db));
      return SelectRelation(child, conditions_);
    }
    case Kind::kProduct: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs, left_->EvalInWorld(db));
      PSC_ASSIGN_OR_RETURN(const Relation rhs, right_->EvalInWorld(db));
      return CrossProductRelation(lhs, rhs);
    }
    case Kind::kJoin: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs, left_->EvalInWorld(db));
      PSC_ASSIGN_OR_RETURN(const Relation rhs, right_->EvalInWorld(db));
      return EquiJoinRelation(lhs, left_->OutputArity(), rhs,
                              right_->OutputArity(), join_columns_);
    }
    case Kind::kUnion: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs, left_->EvalInWorld(db));
      PSC_ASSIGN_OR_RETURN(const Relation rhs, right_->EvalInWorld(db));
      return UnionRelation(lhs, rhs);
    }
  }
  return Status::Internal("unreachable algebra kind");
}

Result<Relation> AlgebraExpr::EvalCertainWithNulls(
    const Database& naive_table, const NullPredicate& is_null) const {
  switch (kind_) {
    case Kind::kBase:
      return naive_table.GetRelation(base_name_);
    case Kind::kProject: {
      PSC_ASSIGN_OR_RETURN(const Relation child,
                           left_->EvalCertainWithNulls(naive_table, is_null));
      return ProjectRelation(child, left_->OutputArity(), columns_);
    }
    case Kind::kSelect: {
      PSC_ASSIGN_OR_RETURN(const Relation child,
                           left_->EvalCertainWithNulls(naive_table, is_null));
      return SelectRelationCertain(child, conditions_, is_null);
    }
    case Kind::kProduct: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs,
                           left_->EvalCertainWithNulls(naive_table, is_null));
      PSC_ASSIGN_OR_RETURN(const Relation rhs,
                           right_->EvalCertainWithNulls(naive_table, is_null));
      return CrossProductRelation(lhs, rhs);
    }
    case Kind::kJoin: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs,
                           left_->EvalCertainWithNulls(naive_table, is_null));
      PSC_ASSIGN_OR_RETURN(const Relation rhs,
                           right_->EvalCertainWithNulls(naive_table, is_null));
      return EquiJoinRelationCertain(lhs, left_->OutputArity(), rhs,
                                     right_->OutputArity(), join_columns_,
                                     is_null);
    }
    case Kind::kUnion: {
      PSC_ASSIGN_OR_RETURN(const Relation lhs,
                           left_->EvalCertainWithNulls(naive_table, is_null));
      PSC_ASSIGN_OR_RETURN(const Relation rhs,
                           right_->EvalCertainWithNulls(naive_table, is_null));
      return UnionRelation(lhs, rhs);
    }
  }
  return Status::Internal("unreachable algebra kind");
}

std::string AlgebraExpr::ToString() const {
  switch (kind_) {
    case Kind::kBase:
      return base_name_;
    case Kind::kProject: {
      std::vector<std::string> parts;
      parts.reserve(columns_.size());
      for (const size_t column : columns_) {
        parts.push_back(std::to_string(column));
      }
      return StrCat("π{", ::psc::Join(parts, ","), "}(", left_->ToString(), ")");
    }
    case Kind::kSelect: {
      std::vector<std::string> parts;
      parts.reserve(conditions_.size());
      for (const Condition& condition : conditions_) {
        parts.push_back(condition.ToString());
      }
      return StrCat("σ{", ::psc::Join(parts, " ∧ "), "}(", left_->ToString(), ")");
    }
    case Kind::kProduct:
      return StrCat("(", left_->ToString(), " × ", right_->ToString(), ")");
    case Kind::kJoin: {
      std::vector<std::string> parts;
      parts.reserve(join_columns_.size());
      for (const auto& [l, r] : join_columns_) {
        parts.push_back(StrCat(l, "=", r));
      }
      return StrCat("(", left_->ToString(), " ⋈{", ::psc::Join(parts, ","), "} ",
                    right_->ToString(), ")");
    }
    case Kind::kUnion:
      return StrCat("(", left_->ToString(), " ∪ ", right_->ToString(), ")");
  }
  return "?";
}

}  // namespace psc
