#include "psc/algebra/operators.h"

#include "psc/obs/metrics.h"
#include "psc/relational/builtin.h"
#include "psc/util/string_util.h"

namespace psc {

Result<bool> Condition::Eval(const Tuple& tuple) const {
  if (column >= tuple.size()) {
    return Status::InvalidArgument(
        StrCat("condition column ", column, " out of range for arity ",
               tuple.size()));
  }
  Value rhs_value;
  if (std::holds_alternative<Value>(rhs)) {
    rhs_value = std::get<Value>(rhs);
  } else {
    const size_t other = std::get<size_t>(rhs);
    if (other >= tuple.size()) {
      return Status::InvalidArgument(
          StrCat("condition column ", other, " out of range for arity ",
                 tuple.size()));
    }
    rhs_value = tuple[other];
  }
  return EvalBuiltin(op, {tuple[column], rhs_value});
}

std::string Condition::ToString() const {
  const std::string rhs_text =
      std::holds_alternative<Value>(rhs)
          ? std::get<Value>(rhs).ToString()
          : StrCat("$", std::get<size_t>(rhs));
  return StrCat(op, "($", column, ", ", rhs_text, ")");
}

namespace {

Result<Tuple> ProjectTuple(const Tuple& tuple,
                           const std::vector<size_t>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (const size_t column : columns) {
    if (column >= tuple.size()) {
      return Status::InvalidArgument(
          StrCat("projection column ", column, " out of range for arity ",
                 tuple.size()));
    }
    out.push_back(tuple[column]);
  }
  return out;
}

Result<bool> EvalConditions(const Tuple& tuple,
                            const std::vector<Condition>& conditions) {
  for (const Condition& condition : conditions) {
    PSC_ASSIGN_OR_RETURN(const bool holds, condition.Eval(tuple));
    if (!holds) return false;
  }
  return true;
}

}  // namespace

Result<ProbRelation> Project(const ProbRelation& input,
                             const std::vector<size_t>& columns) {
  ProbRelation output(columns.size());
  for (const auto& [tuple, confidence] : input.entries()) {
    PSC_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(tuple, columns));
    PSC_RETURN_NOT_OK(output.Merge(std::move(projected), confidence));
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<ProbRelation> Select(const ProbRelation& input,
                            const std::vector<Condition>& conditions) {
  ProbRelation output(input.arity());
  for (const auto& [tuple, confidence] : input.entries()) {
    PSC_ASSIGN_OR_RETURN(const bool keep, EvalConditions(tuple, conditions));
    if (keep) PSC_RETURN_NOT_OK(output.Insert(tuple, confidence));
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<ProbRelation> CrossProduct(const ProbRelation& left,
                                  const ProbRelation& right) {
  ProbRelation output(left.arity() + right.arity());
  for (const auto& [left_tuple, left_conf] : left.entries()) {
    for (const auto& [right_tuple, right_conf] : right.entries()) {
      Tuple combined = left_tuple;
      combined.insert(combined.end(), right_tuple.begin(), right_tuple.end());
      PSC_RETURN_NOT_OK(output.Insert(std::move(combined),
                                      left_conf * right_conf));
    }
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<ProbRelation> EquiJoin(
    const ProbRelation& left, const ProbRelation& right,
    const std::vector<std::pair<size_t, size_t>>& join_columns) {
  PSC_ASSIGN_OR_RETURN(ProbRelation product, CrossProduct(left, right));
  std::vector<Condition> conditions;
  conditions.reserve(join_columns.size());
  for (const auto& [left_col, right_col] : join_columns) {
    conditions.push_back(
        Condition::WithColumn(left_col, "Eq", left.arity() + right_col));
  }
  PSC_ASSIGN_OR_RETURN(ProbRelation selected, Select(product, conditions));
  // Keep all left columns and the non-join right columns.
  std::vector<size_t> columns;
  for (size_t i = 0; i < left.arity(); ++i) columns.push_back(i);
  for (size_t j = 0; j < right.arity(); ++j) {
    bool is_join_column = false;
    for (const auto& [left_col, right_col] : join_columns) {
      if (right_col == j) {
        is_join_column = true;
        break;
      }
    }
    if (!is_join_column) columns.push_back(left.arity() + j);
  }
  return Project(selected, columns);
}

Result<ProbRelation> Union(const ProbRelation& left,
                           const ProbRelation& right) {
  if (left.arity() != right.arity()) {
    return Status::InvalidArgument(
        StrCat("union of arities ", left.arity(), " and ", right.arity()));
  }
  ProbRelation output(left.arity());
  for (const auto& [tuple, confidence] : left.entries()) {
    PSC_RETURN_NOT_OK(output.Merge(tuple, confidence));
  }
  for (const auto& [tuple, confidence] : right.entries()) {
    PSC_RETURN_NOT_OK(output.Merge(tuple, confidence));
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<Relation> ProjectRelation(const Relation& input, size_t arity,
                                 const std::vector<size_t>& columns) {
  Relation output;
  for (const Tuple& tuple : input) {
    if (tuple.size() != arity) {
      return Status::InvalidArgument("inconsistent tuple arity in relation");
    }
    PSC_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(tuple, columns));
    output.insert(std::move(projected));
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<Relation> SelectRelation(const Relation& input,
                                const std::vector<Condition>& conditions) {
  Relation output;
  for (const Tuple& tuple : input) {
    PSC_ASSIGN_OR_RETURN(const bool keep, EvalConditions(tuple, conditions));
    if (keep) output.insert(tuple);
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Relation CrossProductRelation(const Relation& left, const Relation& right) {
  Relation output;
  for (const Tuple& left_tuple : left) {
    for (const Tuple& right_tuple : right) {
      Tuple combined = left_tuple;
      combined.insert(combined.end(), right_tuple.begin(), right_tuple.end());
      output.insert(std::move(combined));
    }
  }
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<Relation> EquiJoinRelation(
    const Relation& left, size_t left_arity, const Relation& right,
    size_t right_arity,
    const std::vector<std::pair<size_t, size_t>>& join_columns) {
  Relation product = CrossProductRelation(left, right);
  std::vector<Condition> conditions;
  conditions.reserve(join_columns.size());
  for (const auto& [left_col, right_col] : join_columns) {
    conditions.push_back(
        Condition::WithColumn(left_col, "Eq", left_arity + right_col));
  }
  PSC_ASSIGN_OR_RETURN(const Relation selected,
                       SelectRelation(product, conditions));
  std::vector<size_t> columns;
  for (size_t i = 0; i < left_arity; ++i) columns.push_back(i);
  for (size_t j = 0; j < right_arity; ++j) {
    bool is_join_column = false;
    for (const auto& [left_col, right_col] : join_columns) {
      if (right_col == j) {
        is_join_column = true;
        break;
      }
    }
    if (!is_join_column) columns.push_back(left_arity + j);
  }
  return ProjectRelation(selected, left_arity + right_arity, columns);
}

Relation UnionRelation(const Relation& left, const Relation& right) {
  Relation output = left;
  output.insert(right.begin(), right.end());
  PSC_OBS_COUNTER_ADD("algebra.tuples_produced", output.size());
  return output;
}

Result<bool> EvalConditionCertain(const Condition& condition,
                                  const Tuple& tuple,
                                  const NullPredicate& is_null) {
  if (condition.column >= tuple.size()) {
    return Status::InvalidArgument(
        StrCat("condition column ", condition.column,
               " out of range for arity ", tuple.size()));
  }
  const Value& lhs = tuple[condition.column];
  Value rhs;
  if (std::holds_alternative<Value>(condition.rhs)) {
    rhs = std::get<Value>(condition.rhs);
  } else {
    const size_t other = std::get<size_t>(condition.rhs);
    if (other >= tuple.size()) {
      return Status::InvalidArgument(
          StrCat("condition column ", other, " out of range for arity ",
                 tuple.size()));
    }
    rhs = tuple[other];
  }
  if (!is_null(lhs) && !is_null(rhs)) {
    return EvalBuiltin(condition.op, {lhs, rhs});
  }
  // A null stands for an arbitrary constant. The only conditions holding
  // under every instantiation are the reflexive ones on the same value
  // (x = x, x <= x, x >= x for the same null label).
  if (lhs == rhs) {
    return condition.op == "Eq" || condition.op == "Le" ||
           condition.op == "Ge";
  }
  return false;
}

Result<Relation> SelectRelationCertain(const Relation& input,
                                       const std::vector<Condition>& conditions,
                                       const NullPredicate& is_null) {
  Relation output;
  for (const Tuple& tuple : input) {
    bool keep = true;
    for (const Condition& condition : conditions) {
      PSC_ASSIGN_OR_RETURN(const bool holds,
                           EvalConditionCertain(condition, tuple, is_null));
      if (!holds) {
        keep = false;
        break;
      }
    }
    if (keep) output.insert(tuple);
  }
  return output;
}

Result<Relation> EquiJoinRelationCertain(
    const Relation& left, size_t left_arity, const Relation& right,
    size_t right_arity,
    const std::vector<std::pair<size_t, size_t>>& join_columns,
    const NullPredicate& is_null) {
  Relation product = CrossProductRelation(left, right);
  std::vector<Condition> conditions;
  conditions.reserve(join_columns.size());
  for (const auto& [left_col, right_col] : join_columns) {
    conditions.push_back(
        Condition::WithColumn(left_col, "Eq", left_arity + right_col));
  }
  PSC_ASSIGN_OR_RETURN(const Relation selected,
                       SelectRelationCertain(product, conditions, is_null));
  std::vector<size_t> columns;
  for (size_t i = 0; i < left_arity; ++i) columns.push_back(i);
  for (size_t j = 0; j < right_arity; ++j) {
    bool is_join_column = false;
    for (const auto& [left_col, right_col] : join_columns) {
      if (right_col == j) {
        is_join_column = true;
        break;
      }
    }
    if (!is_join_column) columns.push_back(left_arity + j);
  }
  return ProjectRelation(selected, left_arity + right_arity, columns);
}

}  // namespace psc
