#ifndef PSC_ALGEBRA_PLAN_COMPILER_H_
#define PSC_ALGEBRA_PLAN_COMPILER_H_

#include "psc/algebra/expression.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Compiles a safe conjunctive query into a relational-algebra plan.
///
/// The paper writes queries in conjunctive-query notation (Section 5)
/// but defines confidence propagation over relational algebra
/// (Definition 5.1); this compiler connects the two:
///
///   Ans(s, v) ← Temperature(s, y, m, v), Station(s, lat, lon, "Canada"),
///               After(y, 1900)
///
/// becomes π(σ(Temperature × Station)), with selections for head-to-body
/// bindings, repeated variables, embedded constants and built-ins. The
/// compiled plan satisfies, for every database D,
///
///   plan->EvalInWorld(D) == query.Evaluate(D)
///
/// (verified by randomized property tests), so the same query can be run
/// exactly (possible-world enumeration) or compositionally
/// (Definition 5.1) through the facade.
///
/// Restrictions: the head must consist of variables (use a built-in Eq
/// filter for constant outputs), and at least one relational atom is
/// required. Violations are Unimplemented/InvalidArgument.
Result<AlgebraExprPtr> CompileQuery(const ConjunctiveQuery& query);

}  // namespace psc

#endif  // PSC_ALGEBRA_PLAN_COMPILER_H_
