#ifndef PSC_ALGEBRA_OPERATORS_H_
#define PSC_ALGEBRA_OPERATORS_H_

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "psc/algebra/prob_relation.h"
#include "psc/relational/database.h"
#include "psc/util/result.h"

namespace psc {

/// \brief One selection condition: column `op` (constant | column), where
/// `op` is a built-in comparison name ("Eq", "Lt", "After", …).
struct Condition {
  size_t column = 0;
  std::string op = "Eq";
  /// Either a constant or another column index.
  std::variant<Value, size_t> rhs = Value(int64_t{0});

  static Condition WithConstant(size_t column, std::string op, Value value) {
    return Condition{column, std::move(op), std::move(value)};
  }
  static Condition WithColumn(size_t column, std::string op, size_t other) {
    return Condition{column, std::move(op), other};
  }

  /// Evaluates the condition on one tuple.
  Result<bool> Eval(const Tuple& tuple) const;

  std::string ToString() const;
};

/// \name Definition 5.1 operators
///
/// Each operator implements one clause of the paper's compositional
/// confidence semantics:
///   * projection: conf(t) = ⊕ { conf(t′) : π(t′) = t }  (independent-or)
///   * selection:  conf(t) unchanged on surviving tuples
///   * product:    conf(t′×t″) = conf(t′)·conf(t″)
/// @{

/// π_columns — `columns` lists the (0-based) output column order; columns
/// may repeat.
Result<ProbRelation> Project(const ProbRelation& input,
                             const std::vector<size_t>& columns);

/// σ_conditions — conjunction of conditions.
Result<ProbRelation> Select(const ProbRelation& input,
                            const std::vector<Condition>& conditions);

/// Cartesian product.
Result<ProbRelation> CrossProduct(const ProbRelation& left,
                                  const ProbRelation& right);
/// @}

/// \name Derived operators (extensions beyond Definition 5.1)
/// @{

/// Equi-join on column pairs, implemented as σ(×) then projecting away the
/// duplicate right-side join columns. Confidence multiplies (independence).
Result<ProbRelation> EquiJoin(
    const ProbRelation& left, const ProbRelation& right,
    const std::vector<std::pair<size_t, size_t>>& join_columns);

/// Union with ⊕-combination of confidences (same independence reading as
/// projection).
Result<ProbRelation> Union(const ProbRelation& left,
                           const ProbRelation& right);
/// @}

/// \name Deterministic counterparts over plain relations.
///
/// Used to evaluate a query plan inside one concrete possible world when
/// computing exact per-world confidences (experiment E5).
/// @{
Result<Relation> ProjectRelation(const Relation& input, size_t arity,
                                 const std::vector<size_t>& columns);
Result<Relation> SelectRelation(const Relation& input,
                                const std::vector<Condition>& conditions);
Relation CrossProductRelation(const Relation& left, const Relation& right);
Result<Relation> EquiJoinRelation(
    const Relation& left, size_t left_arity, const Relation& right,
    size_t right_arity,
    const std::vector<std::pair<size_t, size_t>>& join_columns);
Relation UnionRelation(const Relation& left, const Relation& right);
/// @}

/// \brief Identifies labeled nulls inside a naive table.
using NullPredicate = std::function<bool(const Value&)>;

/// \brief Certain-semantics condition check over a naive table: true only
/// when the condition holds in *every* instantiation of the nulls.
///
/// Both operands concrete → ordinary evaluation. Any null operand:
/// certainly true only for Eq/Le/Ge on the *same* value (same null label
/// compared with itself); everything else might fail for some
/// instantiation and is rejected.
Result<bool> EvalConditionCertain(const Condition& condition,
                                  const Tuple& tuple,
                                  const NullPredicate& is_null);

/// σ under certain semantics (conjunction of EvalConditionCertain).
Result<Relation> SelectRelationCertain(const Relation& input,
                                       const std::vector<Condition>& conditions,
                                       const NullPredicate& is_null);

/// Equi-join under certain semantics (join equality must certainly hold).
Result<Relation> EquiJoinRelationCertain(
    const Relation& left, size_t left_arity, const Relation& right,
    size_t right_arity,
    const std::vector<std::pair<size_t, size_t>>& join_columns,
    const NullPredicate& is_null);

}  // namespace psc

#endif  // PSC_ALGEBRA_OPERATORS_H_
