#include "psc/algebra/prob_relation.h"

#include "psc/util/string_util.h"

namespace psc {

namespace {

Status ValidateEntry(size_t arity, const Tuple& tuple, double confidence) {
  if (tuple.size() != arity) {
    return Status::InvalidArgument(
        StrCat("tuple ", TupleToString(tuple), " has arity ", tuple.size(),
               ", relation expects ", arity));
  }
  if (!(confidence >= 0.0 && confidence <= 1.0)) {
    return Status::InvalidArgument(
        StrCat("confidence ", confidence, " outside [0,1] for tuple ",
               TupleToString(tuple)));
  }
  return Status::OK();
}

}  // namespace

Status ProbRelation::Insert(Tuple tuple, double confidence) {
  PSC_RETURN_NOT_OK(ValidateEntry(arity_, tuple, confidence));
  if (confidence == 0.0) return Status::OK();
  auto [it, inserted] = tuples_.emplace(std::move(tuple), confidence);
  if (!inserted) {
    return Status::InvalidArgument(
        StrCat("duplicate tuple ", TupleToString(it->first),
               "; use Merge for independent-or combination"));
  }
  return Status::OK();
}

Status ProbRelation::Merge(Tuple tuple, double confidence) {
  PSC_RETURN_NOT_OK(ValidateEntry(arity_, tuple, confidence));
  if (confidence == 0.0) return Status::OK();
  auto [it, inserted] = tuples_.emplace(std::move(tuple), confidence);
  if (!inserted) {
    it->second = 1.0 - (1.0 - it->second) * (1.0 - confidence);
  }
  return Status::OK();
}

Result<double> ProbRelation::ConfidenceOf(const Tuple& tuple) const {
  if (tuple.size() != arity_) {
    return Status::InvalidArgument(
        StrCat("tuple ", TupleToString(tuple), " has arity ", tuple.size(),
               ", relation expects ", arity_));
  }
  auto it = tuples_.find(tuple);
  return it == tuples_.end() ? 0.0 : it->second;
}

std::vector<Tuple> ProbRelation::TuplesWithConfidenceAtLeast(
    double threshold) const {
  std::vector<Tuple> result;
  for (const auto& [tuple, confidence] : tuples_) {
    if (confidence >= threshold) result.push_back(tuple);
  }
  return result;
}

ProbRelation ProbRelation::FromRelation(const Relation& relation,
                                        size_t arity) {
  ProbRelation result(arity);
  for (const Tuple& tuple : relation) {
    const Status status = result.Insert(tuple, 1.0);
    PSC_CHECK_MSG(status.ok(), status.ToString());
  }
  return result;
}

std::string ProbRelation::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(tuples_.size());
  for (const auto& [tuple, confidence] : tuples_) {
    lines.push_back(StrCat(TupleToString(tuple), " : ", confidence));
  }
  return Join(lines, "\n");
}

}  // namespace psc
