#ifndef PSC_ALGEBRA_PROB_RELATION_H_
#define PSC_ALGEBRA_PROB_RELATION_H_

#include <map>
#include <string>

#include "psc/relational/database.h"
#include "psc/relational/value.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A relation whose tuples carry confidence values in [0,1] — the
/// carrier of the Definition 5.1 compositional semantics.
///
/// Tuples with confidence 0 are never stored (absent ⟺ confidence 0), so a
/// ProbRelation is exactly "the possible answer annotated with
/// confidences".
class ProbRelation {
 public:
  /// An empty nullary relation; prefer the arity constructor.
  ProbRelation() = default;
  explicit ProbRelation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// \brief Inserts a tuple with the given confidence.
  ///
  /// Errors: wrong arity; confidence outside [0,1]; duplicate tuple (use
  /// `Merge` for ⊕-combination). Confidence 0 is accepted and dropped.
  Status Insert(Tuple tuple, double confidence);

  /// \brief ⊕-combines `confidence` into the tuple's entry:
  /// new = 1 − (1−old)(1−confidence) — the independent-or used by
  /// projection and union.
  Status Merge(Tuple tuple, double confidence);

  /// Confidence of `tuple`; 0 when absent. Errors on arity mismatch.
  Result<double> ConfidenceOf(const Tuple& tuple) const;

  /// The underlying (tuple → confidence) map in canonical tuple order.
  const std::map<Tuple, double>& entries() const { return tuples_; }

  /// Tuples with confidence ≥ `threshold` (e.g. 1.0 for certain answers).
  std::vector<Tuple> TuplesWithConfidenceAtLeast(double threshold) const;

  /// \brief Lifts a deterministic relation: every tuple gets confidence 1.
  static ProbRelation FromRelation(const Relation& relation, size_t arity);

  /// Multi-line "tuple : confidence" rendering.
  std::string ToString() const;

 private:
  size_t arity_ = 0;
  std::map<Tuple, double> tuples_;
};

}  // namespace psc

#endif  // PSC_ALGEBRA_PROB_RELATION_H_
