#ifndef PSC_ALGEBRA_EXPRESSION_H_
#define PSC_ALGEBRA_EXPRESSION_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "psc/algebra/operators.h"
#include "psc/algebra/prob_relation.h"
#include "psc/relational/database.h"
#include "psc/util/result.h"

namespace psc {

class AlgebraExpr;
using AlgebraExprPtr = std::shared_ptr<const AlgebraExpr>;

/// \brief A relational-algebra query plan over global relations.
///
/// Two evaluation modes:
///  * `EvalConfidence` — the Definition 5.1 compositional semantics over
///    confidence-annotated base relations (projection ⊕, selection
///    pass-through, product ·, plus the join/union extensions);
///  * `EvalInWorld` — plain set semantics inside one concrete possible
///    world, used to compute exact answer-tuple confidences by averaging
///    over poss(S) (Theorem 5.1's left-hand side).
class AlgebraExpr : public std::enable_shared_from_this<AlgebraExpr> {
 public:
  enum class Kind { kBase, kProject, kSelect, kProduct, kJoin, kUnion };

  /// Leaf: the global relation `name` with the given arity.
  static AlgebraExprPtr Base(std::string name, size_t arity);
  /// π_columns(child); columns may repeat or reorder.
  static AlgebraExprPtr Project(AlgebraExprPtr child,
                                std::vector<size_t> columns);
  /// σ_conditions(child), a conjunction.
  static AlgebraExprPtr Select(AlgebraExprPtr child,
                               std::vector<Condition> conditions);
  /// child_left × child_right.
  static AlgebraExprPtr Product(AlgebraExprPtr left, AlgebraExprPtr right);
  /// Equi-join (extension beyond Definition 5.1).
  static AlgebraExprPtr Join(
      AlgebraExprPtr left, AlgebraExprPtr right,
      std::vector<std::pair<size_t, size_t>> join_columns);
  /// Union (extension beyond Definition 5.1); arities must match.
  static AlgebraExprPtr Union(AlgebraExprPtr left, AlgebraExprPtr right);

  Kind kind() const { return kind_; }
  size_t OutputArity() const { return output_arity_; }
  const std::string& base_name() const { return base_name_; }

  /// Names of all base relations referenced by the plan.
  std::set<std::string> BaseRelations() const;

  /// \brief Definition 5.1 evaluation: `base` maps each base-relation name
  /// to its confidence-annotated extension. Missing names are errors.
  Result<ProbRelation> EvalConfidence(
      const std::map<std::string, ProbRelation>& base) const;

  /// Set-semantics evaluation inside one world (absent relations = empty).
  Result<Relation> EvalInWorld(const Database& db) const;

  /// \brief Certain-semantics evaluation over a *naive table*: a database
  /// whose values satisfying `is_null` are labeled nulls standing for
  /// unknown constants.
  ///
  /// Returns tuples that are in the plan's answer under *every*
  /// instantiation of the nulls (conditions touching nulls must hold
  /// universally; see EvalConditionCertain). Output tuples may still
  /// contain nulls — callers computing certain answers drop those.
  /// Sound for the monotone fragment (π, σ, ×, ⋈, ∪ — everything this
  /// class offers).
  Result<Relation> EvalCertainWithNulls(const Database& naive_table,
                                        const NullPredicate& is_null) const;

  /// "π{0,2}(σ{Eq($1, 3)}(R × S))".
  std::string ToString() const;

 private:
  AlgebraExpr() = default;

  Kind kind_ = Kind::kBase;
  size_t output_arity_ = 0;
  std::string base_name_;
  std::vector<size_t> columns_;
  std::vector<Condition> conditions_;
  std::vector<std::pair<size_t, size_t>> join_columns_;
  AlgebraExprPtr left_;
  AlgebraExprPtr right_;
};

}  // namespace psc

#endif  // PSC_ALGEBRA_EXPRESSION_H_
