#ifndef PSC_SOURCE_MEASURES_H_
#define PSC_SOURCE_MEASURES_H_

#include "psc/relational/database.h"
#include "psc/source/source_descriptor.h"
#include "psc/util/rational.h"
#include "psc/util/result.h"

namespace psc {

/// \brief The exact soundness and completeness of one source with respect to
/// a concrete candidate database, plus the intermediate set sizes.
struct SourceMeasures {
  /// |φ(D)| — size of the intended content under D.
  int64_t view_result_size = 0;
  /// |v ∩ φ(D)| — the sound portion of the extension.
  int64_t intersection_size = 0;
  /// |v|.
  int64_t extension_size = 0;
  /// c_D(S) = |v ∩ φ(D)| / |φ(D)|; 1 when φ(D) = ∅ (vacuously complete).
  Rational completeness;
  /// s_D(S) = |v ∩ φ(D)| / |v|; 1 when v = ∅ (vacuously sound).
  Rational soundness;
};

/// \brief Computes c_D(S) and s_D(S) (Definitions 2.1 and 2.2).
///
/// Convention for empty denominators: an empty φ(D) makes the source
/// vacuously complete (there is nothing to cover) and an empty v makes it
/// vacuously sound (no claim can be wrong); both measures are then 1. This
/// matches the paper's constraints being trivially satisfiable in these
/// cases and keeps the measures total.
Result<SourceMeasures> ComputeMeasures(const SourceDescriptor& source,
                                       const Database& db);

/// \brief True iff `db` satisfies this source's bounds:
/// c_D(S) ≥ c and s_D(S) ≥ s.
Result<bool> SatisfiesBounds(const SourceDescriptor& source,
                             const Database& db);

/// \brief True iff the source is *sound* w.r.t. `db`: v ⊆ φ(D).
Result<bool> IsSound(const SourceDescriptor& source, const Database& db);

/// \brief True iff the source is *complete* w.r.t. `db`: v ⊇ φ(D).
Result<bool> IsComplete(const SourceDescriptor& source, const Database& db);

/// \brief True iff the source is *exact* w.r.t. `db`: v = φ(D).
Result<bool> IsExact(const SourceDescriptor& source, const Database& db);

}  // namespace psc

#endif  // PSC_SOURCE_MEASURES_H_
