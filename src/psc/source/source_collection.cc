#include "psc/source/source_collection.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "psc/obs/metrics.h"
#include "psc/source/measures.h"
#include "psc/util/string_util.h"

namespace psc {

bool CollectionDelta::empty() const {
  for (const auto& [name, delta] : sources) {
    if (!delta.empty()) return false;
  }
  return true;
}

size_t CollectionDelta::size() const {
  size_t total = 0;
  for (const auto& [name, delta] : sources) {
    total += delta.inserts.size() + delta.retracts.size();
  }
  return total;
}

std::vector<std::string> CollectionDeltaSummary::DirtySources() const {
  std::vector<std::string> dirty;
  for (const auto& [name, change] : sources) {
    if (change.inserted + change.retracted > 0) dirty.push_back(name);
  }
  return dirty;  // map iteration: already sorted
}

std::string CollectionDeltaSummary::ToString() const {
  return StrCat("+", inserted, " -", retracted, " noop=", noops, " over ",
                DirtySources().size(), " source(s)");
}

Result<SourceCollection> SourceCollection::Create(
    std::vector<SourceDescriptor> sources) {
  std::set<std::string> names;
  Schema schema;
  for (const SourceDescriptor& source : sources) {
    if (source.name().empty()) {
      return Status::InvalidArgument("source with empty name");
    }
    if (!names.insert(source.name()).second) {
      return Status::InvalidArgument(
          StrCat("duplicate source name '", source.name(), "'"));
    }
    PSC_RETURN_NOT_OK(source.view().InferSchema(&schema));
  }
  return SourceCollection(std::move(sources), std::move(schema));
}

Result<size_t> SourceCollection::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].name() == name) return i;
  }
  return Status::NotFound(StrCat("no source named '", name, "'"));
}

Result<bool> SourceCollection::IsPossibleWorld(const Database& db) const {
  for (const SourceDescriptor& source : sources_) {
    PSC_ASSIGN_OR_RETURN(const bool satisfied, SatisfiesBounds(source, db));
    if (!satisfied) return false;
  }
  return true;
}

size_t SourceCollection::TotalExtensionSize() const {
  size_t total = 0;
  for (const SourceDescriptor& source : sources_) {
    total += source.extension_size();
  }
  return total;
}

size_t SourceCollection::WitnessSizeBound() const {
  size_t max_body = 0;
  for (const SourceDescriptor& source : sources_) {
    max_body = std::max(max_body, source.view().RelationalBodySize());
  }
  return max_body * TotalExtensionSize();
}

bool SourceCollection::AllIdentityViews(std::string* relation) const {
  std::string common;
  for (const SourceDescriptor& source : sources_) {
    if (!source.view().IsIdentity()) return false;
    const std::string& name =
        source.view().relational_body()[0].predicate();
    if (common.empty()) {
      common = name;
    } else if (common != name) {
      return false;
    }
  }
  if (relation != nullptr) *relation = common;
  return !sources_.empty();
}

std::vector<Value> SourceCollection::MentionedConstants() const {
  std::set<Value> constants;
  for (const SourceDescriptor& source : sources_) {
    for (const Tuple& tuple : source.extension()) {
      constants.insert(tuple.begin(), tuple.end());
    }
    for (const Atom& atom : source.view().body()) {
      for (const Term& term : atom.terms()) {
        if (term.is_constant()) constants.insert(term.constant());
      }
    }
    for (const Term& term : source.view().head().terms()) {
      if (term.is_constant()) constants.insert(term.constant());
    }
  }
  return std::vector<Value>(constants.begin(), constants.end());
}

Result<CollectionDeltaSummary> SourceCollection::ApplyDelta(
    const CollectionDelta& delta) {
  // Validate everything before mutating anything, so a failed call leaves
  // the collection exactly as it was.
  std::vector<std::pair<size_t, const CollectionDelta::SourceDelta*>> resolved;
  resolved.reserve(delta.sources.size());
  for (const auto& [name, source_delta] : delta.sources) {
    PSC_ASSIGN_OR_RETURN(const size_t index, IndexOf(name));
    const size_t head_arity = sources_[index].view().head().arity();
    for (const Tuple& tuple : source_delta.inserts) {
      if (tuple.size() != head_arity) {
        return Status::InvalidArgument(
            StrCat("source '", name, "': delta tuple ", TupleToString(tuple),
                   " has arity ", tuple.size(), ", head expects ", head_arity));
      }
    }
    resolved.emplace_back(index, &source_delta);
  }

  CollectionDeltaSummary summary;
  for (const auto& [index, source_delta] : resolved) {
    PSC_ASSIGN_OR_RETURN(
        const RelationChange change,
        sources_[index].ApplyExtensionDelta(source_delta->inserts,
                                            source_delta->retracts));
    if (change.inserted + change.retracted > 0) {
      if (source_generations_.size() < sources_.size()) {
        source_generations_.resize(sources_.size(), 0);
      }
      source_generations_[index] = ++generation_;
    }
    summary.inserted += change.inserted;
    summary.retracted += change.retracted;
    summary.noops += change.noops;
    summary.sources.emplace(sources_[index].name(), change);
  }
  PSC_OBS_COUNTER_ADD("delta.ops_applied", summary.inserted + summary.retracted);
  PSC_OBS_COUNTER_ADD("delta.noops", summary.noops);
  return summary;
}

std::vector<std::vector<size_t>> SourceCollection::RelationGroups() const {
  // Union-find over source indices, merging on shared body relations.
  std::vector<size_t> parent(sources_.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<std::string, size_t> relation_owner;
  for (size_t i = 0; i < sources_.size(); ++i) {
    for (const Atom& atom : sources_[i].view().relational_body()) {
      const auto [it, fresh] = relation_owner.emplace(atom.predicate(), i);
      if (!fresh) parent[find(i)] = find(it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> by_root;
  for (size_t i = 0; i < sources_.size(); ++i) by_root[find(i)].push_back(i);
  std::vector<std::vector<size_t>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, members] : by_root) groups.push_back(std::move(members));
  // by_root keys are roots (arbitrary); order groups by smallest member.
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return groups;
}

std::string SourceCollection::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(sources_.size());
  for (const SourceDescriptor& source : sources_) {
    parts.push_back(source.ToString());
  }
  return Join(parts, "\n");
}

}  // namespace psc
