#include "psc/source/source_collection.h"

#include <algorithm>
#include <set>

#include "psc/source/measures.h"
#include "psc/util/string_util.h"

namespace psc {

Result<SourceCollection> SourceCollection::Create(
    std::vector<SourceDescriptor> sources) {
  std::set<std::string> names;
  Schema schema;
  for (const SourceDescriptor& source : sources) {
    if (source.name().empty()) {
      return Status::InvalidArgument("source with empty name");
    }
    if (!names.insert(source.name()).second) {
      return Status::InvalidArgument(
          StrCat("duplicate source name '", source.name(), "'"));
    }
    PSC_RETURN_NOT_OK(source.view().InferSchema(&schema));
  }
  return SourceCollection(std::move(sources), std::move(schema));
}

Result<size_t> SourceCollection::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].name() == name) return i;
  }
  return Status::NotFound(StrCat("no source named '", name, "'"));
}

Result<bool> SourceCollection::IsPossibleWorld(const Database& db) const {
  for (const SourceDescriptor& source : sources_) {
    PSC_ASSIGN_OR_RETURN(const bool satisfied, SatisfiesBounds(source, db));
    if (!satisfied) return false;
  }
  return true;
}

size_t SourceCollection::TotalExtensionSize() const {
  size_t total = 0;
  for (const SourceDescriptor& source : sources_) {
    total += source.extension_size();
  }
  return total;
}

size_t SourceCollection::WitnessSizeBound() const {
  size_t max_body = 0;
  for (const SourceDescriptor& source : sources_) {
    max_body = std::max(max_body, source.view().RelationalBodySize());
  }
  return max_body * TotalExtensionSize();
}

bool SourceCollection::AllIdentityViews(std::string* relation) const {
  std::string common;
  for (const SourceDescriptor& source : sources_) {
    if (!source.view().IsIdentity()) return false;
    const std::string& name =
        source.view().relational_body()[0].predicate();
    if (common.empty()) {
      common = name;
    } else if (common != name) {
      return false;
    }
  }
  if (relation != nullptr) *relation = common;
  return !sources_.empty();
}

std::vector<Value> SourceCollection::MentionedConstants() const {
  std::set<Value> constants;
  for (const SourceDescriptor& source : sources_) {
    for (const Tuple& tuple : source.extension()) {
      constants.insert(tuple.begin(), tuple.end());
    }
    for (const Atom& atom : source.view().body()) {
      for (const Term& term : atom.terms()) {
        if (term.is_constant()) constants.insert(term.constant());
      }
    }
    for (const Term& term : source.view().head().terms()) {
      if (term.is_constant()) constants.insert(term.constant());
    }
  }
  return std::vector<Value>(constants.begin(), constants.end());
}

std::string SourceCollection::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(sources_.size());
  for (const SourceDescriptor& source : sources_) {
    parts.push_back(source.ToString());
  }
  return Join(parts, "\n");
}

}  // namespace psc
