#ifndef PSC_SOURCE_SOURCE_COLLECTION_H_
#define PSC_SOURCE_SOURCE_COLLECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "psc/relational/schema.h"
#include "psc/source/source_descriptor.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A batched mutation of a `SourceCollection`: per source name, the
/// extension tuples to insert and retract. Mirrors `DatabaseDelta` one
/// level up — sources drift (the paper's §6 caches/mirrors), their view
/// definitions and bounds do not.
struct CollectionDelta {
  struct SourceDelta {
    Relation inserts;
    Relation retracts;
    bool empty() const { return inserts.empty() && retracts.empty(); }
  };

  std::map<std::string, SourceDelta> sources;

  void Insert(const std::string& source, Tuple tuple) {
    sources[source].inserts.insert(std::move(tuple));
  }
  void Retract(const std::string& source, Tuple tuple) {
    sources[source].retracts.insert(std::move(tuple));
  }
  bool empty() const;
  /// Total number of tuple operations listed (inserts + retracts).
  size_t size() const;
};

/// \brief Change summary returned by `SourceCollection::ApplyDelta`,
/// reusing the per-target `RelationChange` counters from database.h.
struct CollectionDeltaSummary {
  std::map<std::string, RelationChange> sources;
  uint64_t inserted = 0;
  uint64_t retracted = 0;
  uint64_t noops = 0;

  bool changed() const { return inserted + retracted > 0; }
  /// Names of sources with at least one effective change, sorted.
  std::vector<std::string> DirtySources() const;
  std::string ToString() const;
};

/// \brief A source collection S = {S₁,…,Sₙ}, the central object of the
/// paper: it induces the set of possible worlds
/// poss(S) = { D over sch(S) : c_D(vᵢ) ≥ cᵢ ∧ s_D(vᵢ) ≥ sᵢ for all i }.
class SourceCollection {
 public:
  SourceCollection() = default;

  /// \brief Builds a collection; source names must be unique and nonempty.
  static Result<SourceCollection> Create(
      std::vector<SourceDescriptor> sources);

  const std::vector<SourceDescriptor>& sources() const { return sources_; }
  size_t size() const { return sources_.size(); }
  const SourceDescriptor& source(size_t i) const { return sources_[i]; }

  /// Source index by name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// \brief sch(S): the global relations mentioned by the views.
  const Schema& schema() const { return schema_; }

  /// \brief D ∈ poss(S)? Checks every source's bounds against `db`.
  Result<bool> IsPossibleWorld(const Database& db) const;

  /// Σᵢ |vᵢ| — total extension size (the input size for Theorem 3.2).
  size_t TotalExtensionSize() const;

  /// \brief The Lemma 3.1 witness-size bound:
  /// maxᵢ |body(φᵢ)| · Σᵢ |vᵢ|, counting relational body atoms.
  size_t WitnessSizeBound() const;

  /// \brief True iff every view is the identity over one common relation —
  /// the Section 5.1 special case. `relation` (optional out) receives the
  /// common relation name.
  bool AllIdentityViews(std::string* relation = nullptr) const;

  /// \brief All constants mentioned in view extensions and view definitions,
  /// sorted and deduplicated — the seed for canonical domains.
  std::vector<Value> MentionedConstants() const;

  /// Multi-line rendering of every descriptor.
  std::string ToString() const;

  /// \brief Applies a batched extension delta across any number of sources.
  ///
  /// Validation is all-or-nothing: unknown source names and arity-mismatched
  /// insert tuples fail the whole call before any source is touched. Each
  /// source with an effective change advances its generation; no-op deltas
  /// leave all generations untouched.
  Result<CollectionDeltaSummary> ApplyDelta(const CollectionDelta& delta);

  /// \brief Collection-wide mutation counter: advanced once per source with
  /// an effective change, never by no-ops.
  uint64_t generation() const { return generation_; }

  /// \brief Mutation counter of source `i`: the value of `generation()`
  /// when its extension last changed (0 if never). Delta-aware caches key
  /// their entries on snapshots of these, so mutating one source leaves
  /// results that never read it valid.
  uint64_t source_generation(size_t i) const {
    return i < source_generations_.size() ? source_generations_[i] : 0;
  }

  /// \brief Partitions source indices into *relation groups*: the connected
  /// components of the "shares a body relation" graph. Sources in different
  /// groups constrain disjoint parts of the global database, so poss(S)
  /// factorizes as a product across groups — a delta confined to one group
  /// cannot change marginal confidences computed over another while the
  /// collection stays consistent. Groups are sorted by smallest member.
  std::vector<std::vector<size_t>> RelationGroups() const;

 private:
  explicit SourceCollection(std::vector<SourceDescriptor> sources,
                            Schema schema)
      : sources_(std::move(sources)), schema_(std::move(schema)) {}

  std::vector<SourceDescriptor> sources_;
  Schema schema_;
  uint64_t generation_ = 0;
  /// Lazily sized to sources_.size() on first effective delta.
  std::vector<uint64_t> source_generations_;
};

}  // namespace psc

#endif  // PSC_SOURCE_SOURCE_COLLECTION_H_
