#ifndef PSC_SOURCE_SOURCE_COLLECTION_H_
#define PSC_SOURCE_SOURCE_COLLECTION_H_

#include <string>
#include <vector>

#include "psc/relational/schema.h"
#include "psc/source/source_descriptor.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A source collection S = {S₁,…,Sₙ}, the central object of the
/// paper: it induces the set of possible worlds
/// poss(S) = { D over sch(S) : c_D(vᵢ) ≥ cᵢ ∧ s_D(vᵢ) ≥ sᵢ for all i }.
class SourceCollection {
 public:
  SourceCollection() = default;

  /// \brief Builds a collection; source names must be unique and nonempty.
  static Result<SourceCollection> Create(
      std::vector<SourceDescriptor> sources);

  const std::vector<SourceDescriptor>& sources() const { return sources_; }
  size_t size() const { return sources_.size(); }
  const SourceDescriptor& source(size_t i) const { return sources_[i]; }

  /// Source index by name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// \brief sch(S): the global relations mentioned by the views.
  const Schema& schema() const { return schema_; }

  /// \brief D ∈ poss(S)? Checks every source's bounds against `db`.
  Result<bool> IsPossibleWorld(const Database& db) const;

  /// Σᵢ |vᵢ| — total extension size (the input size for Theorem 3.2).
  size_t TotalExtensionSize() const;

  /// \brief The Lemma 3.1 witness-size bound:
  /// maxᵢ |body(φᵢ)| · Σᵢ |vᵢ|, counting relational body atoms.
  size_t WitnessSizeBound() const;

  /// \brief True iff every view is the identity over one common relation —
  /// the Section 5.1 special case. `relation` (optional out) receives the
  /// common relation name.
  bool AllIdentityViews(std::string* relation = nullptr) const;

  /// \brief All constants mentioned in view extensions and view definitions,
  /// sorted and deduplicated — the seed for canonical domains.
  std::vector<Value> MentionedConstants() const;

  /// Multi-line rendering of every descriptor.
  std::string ToString() const;

 private:
  explicit SourceCollection(std::vector<SourceDescriptor> sources,
                            Schema schema)
      : sources_(std::move(sources)), schema_(std::move(schema)) {}

  std::vector<SourceDescriptor> sources_;
  Schema schema_;
};

}  // namespace psc

#endif  // PSC_SOURCE_SOURCE_COLLECTION_H_
