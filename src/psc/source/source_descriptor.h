#ifndef PSC_SOURCE_SOURCE_DESCRIPTOR_H_
#define PSC_SOURCE_SOURCE_DESCRIPTOR_H_

#include <string>

#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/util/rational.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A source descriptor ⟨φ, v, c, s⟩ (Section 2.3 of the paper):
///
///  * φ — the view definition describing the source's *intended* content,
///  * v — the view extension: the source's *actual* content,
///  * c ∈ [0,1] — a lower bound on completeness |v ∩ φ(D)| / |φ(D)|,
///  * s ∈ [0,1] — a lower bound on soundness   |v ∩ φ(D)| / |v|,
///
/// each relative to the unknown global database D. Bounds are exact
/// rationals so that thresholds such as |uᵢ| ≥ sᵢ|vᵢ| are decided without
/// floating-point error.
class SourceDescriptor {
 public:
  /// Empty, invalid descriptor; use Create.
  SourceDescriptor() = default;

  /// \brief Validates and builds a descriptor.
  ///
  /// Errors: bounds outside [0,1]; extension tuple arity differing from the
  /// view head arity.
  static Result<SourceDescriptor> Create(std::string name,
                                         ConjunctiveQuery view,
                                         Relation extension,
                                         Rational completeness,
                                         Rational soundness);

  const std::string& name() const { return name_; }
  const ConjunctiveQuery& view() const { return view_; }
  /// The view extension v (current contents of the source).
  const Relation& extension() const { return extension_; }
  const Rational& completeness_bound() const { return completeness_; }
  const Rational& soundness_bound() const { return soundness_; }

  /// |v|.
  size_t extension_size() const { return extension_.size(); }

  /// \brief The minimum number of sound facts tᵢ = ⌈sᵢ·|vᵢ|⌉ every possible
  /// world must certify (inequality (3) in the paper).
  int64_t MinSoundFacts() const;

  /// \brief Mutates the view extension in place: retracts `retracts`,
  /// inserts `inserts` (a tuple in both sets is an insert, matching
  /// `Database::ApplyDelta`). Fails without mutating when an inserted
  /// tuple's arity differs from the view head's.
  ///
  /// Changing v moves both measured ratios and the tᵢ threshold, so any
  /// cached consistency/confidence state keyed on this source is stale
  /// after an effective change (see psc/delta/incremental.h).
  Result<RelationChange> ApplyExtensionDelta(const Relation& inserts,
                                             const Relation& retracts);

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  SourceDescriptor(std::string name, ConjunctiveQuery view, Relation extension,
                   Rational completeness, Rational soundness)
      : name_(std::move(name)),
        view_(std::move(view)),
        extension_(std::move(extension)),
        completeness_(completeness),
        soundness_(soundness) {}

  std::string name_;
  ConjunctiveQuery view_;
  Relation extension_;
  Rational completeness_;
  Rational soundness_;
};

}  // namespace psc

#endif  // PSC_SOURCE_SOURCE_DESCRIPTOR_H_
