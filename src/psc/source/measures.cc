#include "psc/source/measures.h"

namespace psc {

Result<SourceMeasures> ComputeMeasures(const SourceDescriptor& source,
                                       const Database& db) {
  PSC_ASSIGN_OR_RETURN(const Relation view_result, source.view().Evaluate(db));
  SourceMeasures measures;
  measures.view_result_size = static_cast<int64_t>(view_result.size());
  measures.extension_size = static_cast<int64_t>(source.extension().size());
  int64_t intersection = 0;
  for (const Tuple& tuple : source.extension()) {
    if (view_result.count(tuple) > 0) ++intersection;
  }
  measures.intersection_size = intersection;
  measures.completeness =
      measures.view_result_size == 0
          ? Rational::One()
          : Rational(intersection, measures.view_result_size);
  measures.soundness = measures.extension_size == 0
                           ? Rational::One()
                           : Rational(intersection, measures.extension_size);
  return measures;
}

Result<bool> SatisfiesBounds(const SourceDescriptor& source,
                             const Database& db) {
  PSC_ASSIGN_OR_RETURN(const SourceMeasures measures,
                       ComputeMeasures(source, db));
  return source.completeness_bound() <= measures.completeness &&
         source.soundness_bound() <= measures.soundness;
}

Result<bool> IsSound(const SourceDescriptor& source, const Database& db) {
  PSC_ASSIGN_OR_RETURN(const SourceMeasures measures,
                       ComputeMeasures(source, db));
  return measures.intersection_size == measures.extension_size;
}

Result<bool> IsComplete(const SourceDescriptor& source, const Database& db) {
  PSC_ASSIGN_OR_RETURN(const SourceMeasures measures,
                       ComputeMeasures(source, db));
  return measures.intersection_size == measures.view_result_size;
}

Result<bool> IsExact(const SourceDescriptor& source, const Database& db) {
  PSC_ASSIGN_OR_RETURN(const bool sound, IsSound(source, db));
  if (!sound) return false;
  return IsComplete(source, db);
}

}  // namespace psc
