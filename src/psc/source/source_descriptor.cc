#include "psc/source/source_descriptor.h"

#include "psc/util/string_util.h"

namespace psc {

Result<SourceDescriptor> SourceDescriptor::Create(std::string name,
                                                  ConjunctiveQuery view,
                                                  Relation extension,
                                                  Rational completeness,
                                                  Rational soundness) {
  const Rational zero = Rational::Zero();
  const Rational one = Rational::One();
  if (completeness < zero || one < completeness) {
    return Status::InvalidArgument(
        StrCat("source '", name, "': completeness bound ",
               completeness.ToString(), " outside [0,1]"));
  }
  if (soundness < zero || one < soundness) {
    return Status::InvalidArgument(StrCat("source '", name,
                                          "': soundness bound ",
                                          soundness.ToString(),
                                          " outside [0,1]"));
  }
  const size_t head_arity = view.head().arity();
  for (const Tuple& tuple : extension) {
    if (tuple.size() != head_arity) {
      return Status::InvalidArgument(
          StrCat("source '", name, "': extension tuple ", TupleToString(tuple),
                 " has arity ", tuple.size(), ", head expects ", head_arity));
    }
  }
  return SourceDescriptor(std::move(name), std::move(view),
                          std::move(extension), completeness, soundness);
}

Result<RelationChange> SourceDescriptor::ApplyExtensionDelta(
    const Relation& inserts, const Relation& retracts) {
  const size_t head_arity = view_.head().arity();
  for (const Tuple& tuple : inserts) {
    if (tuple.size() != head_arity) {
      return Status::InvalidArgument(
          StrCat("source '", name_, "': delta tuple ", TupleToString(tuple),
                 " has arity ", tuple.size(), ", head expects ", head_arity));
    }
  }
  RelationChange change;
  for (const Tuple& tuple : retracts) {
    if (inserts.count(tuple) > 0) {
      ++change.noops;  // insert wins
    } else if (extension_.erase(tuple) > 0) {
      ++change.retracted;
    } else {
      ++change.noops;
    }
  }
  for (const Tuple& tuple : inserts) {
    if (extension_.insert(tuple).second) {
      ++change.inserted;
    } else {
      ++change.noops;
    }
  }
  return change;
}

int64_t SourceDescriptor::MinSoundFacts() const {
  return soundness_.MulCeil(static_cast<int64_t>(extension_.size()));
}

std::string SourceDescriptor::ToString() const {
  std::vector<std::string> tuples;
  tuples.reserve(extension_.size());
  for (const Tuple& tuple : extension_) {
    tuples.push_back(TupleToString(tuple));
  }
  // An empty extension omits the facts field (the grammar requires at
  // least one fact after "facts:").
  const std::string facts_line =
      tuples.empty() ? "" : StrCat("\n  facts: ", Join(tuples, ", "));
  return StrCat("source ", name_, " {\n  view: ", view_.ToString(),
                "\n  completeness: ", completeness_.ToString(),
                "\n  soundness: ", soundness_.ToString(), facts_line, "\n}");
}

}  // namespace psc
