#include "psc/core/certain_answer.h"

#include "psc/tableau/template_builder.h"

namespace psc {

namespace {

/// Labeled nulls produced by FreezeTableau are "⊥n" strings.
bool IsFrozenNull(const Value& value) {
  return value.is_string() &&
         value.AsString().rfind("\xE2\x8A\xA5", 0) == 0;  // "⊥" prefix
}

bool TupleHasNull(const Tuple& tuple) {
  for (const Value& value : tuple) {
    if (IsFrozenNull(value)) return true;
  }
  return false;
}

}  // namespace

Result<CertainAnswerBound> CertainAnswerLowerBound(
    const SourceCollection& collection, const AlgebraExprPtr& query,
    uint64_t max_combinations, const limits::Budget& budget) {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  TemplateBuilder builder(&collection);

  CertainAnswerBound bound;
  bool first = true;
  bool any_realizable = false;
  Status deferred_error;
  PSC_ASSIGN_OR_RETURN(
      const bool completed,
      builder.ForEachAllowableCombination([&](const Combination& combination) {
        if (bound.combinations >= max_combinations) {
          bound.truncated = true;
          return false;
        }
        // A tripped budget truncates rather than fails: the intersection
        // over a prefix of 𝒰 is still a sound under-approximation.
        if (!budget.Charge()) {
          bound.truncated = true;
          return false;
        }
        ++bound.combinations;
        auto tableau = builder.BuildTableau(combination);
        if (!tableau.ok()) {
          if (tableau.status().code() == StatusCode::kUnimplemented) {
            // Cannot represent this combination; treating it as
            // contributing no certain tuples keeps the bound sound.
            bound.truncated = true;
            bound.certain.clear();
            first = false;
            any_realizable = true;
            return false;  // intersection already empty
          }
          deferred_error = tableau.status();
          return false;
        }
        if (!tableau->has_value()) return true;  // rep(𝒯^U) = ∅
        any_realizable = true;

        const Database naive_table = FreezeTableau(**tableau);
        auto answer = query->EvalCertainWithNulls(naive_table, IsFrozenNull);
        if (!answer.ok()) {
          deferred_error = answer.status();
          return false;
        }
        Relation null_free;
        for (const Tuple& tuple : *answer) {
          if (!TupleHasNull(tuple)) null_free.insert(tuple);
        }
        if (first) {
          bound.certain = std::move(null_free);
          first = false;
        } else {
          Relation intersection;
          for (const Tuple& tuple : bound.certain) {
            if (null_free.count(tuple) > 0) intersection.insert(tuple);
          }
          bound.certain = std::move(intersection);
        }
        // Once empty, no later combination can re-grow the intersection.
        return !bound.certain.empty();
      }));
  if (!completed && !deferred_error.ok()) return deferred_error;
  // Claiming inconsistency requires having seen *every* combination; a
  // truncated scan that found none realizable proves nothing.
  if (!any_realizable && !bound.truncated) {
    return Status::Inconsistent(
        "every allowable combination is unrealizable: poss(S) is empty");
  }
  return bound;
}

}  // namespace psc
