#ifndef PSC_CORE_QUERY_SYSTEM_H_
#define PSC_CORE_QUERY_SYSTEM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "psc/algebra/expression.h"
#include "psc/algebra/prob_relation.h"
#include "psc/consistency/general_consistency.h"
#include "psc/counting/confidence.h"
#include "psc/limits/budget.h"
#include "psc/obs/scope.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Answer to a query over a source collection, under the Section 5
/// semantics.
struct QueryAnswer {
  /// Tuple → confidence_Q(t) = Pr(t ∈ Q(D) | D ∈ poss(S)). Exact for the
  /// "exact" method, compositional (Definition 5.1) or estimated otherwise.
  ProbRelation confidences;
  /// Q₊(S) = ⋂_D Q(D) — the certain answer.
  Relation certain;
  /// Q*(S) = ⋃_D Q(D) — the possible answer.
  Relation possible;
  /// Possible worlds evaluated (exact) or sampled (Monte Carlo).
  uint64_t worlds_used = 0;
  /// "exact-enumeration", "compositional", "monte-carlo".
  std::string method;
  /// True when a resource budget (deadline / node budget) cut the
  /// computation short and the answer is a well-formed partial result —
  /// today only Monte-Carlo, which returns the samples drawn so far.
  bool truncated = false;
  /// Why the answer was truncated, when it was.
  std::string truncation_reason;
  /// True when the answer was served from a delta-aware cache without
  /// recomputation (see psc/delta/incremental.h); always false for answers
  /// computed directly by QuerySystem.
  bool from_cache = false;
};

/// \brief The user-facing facade: a source collection plus query answering,
/// consistency checking and confidence computation.
///
/// Typical flow:
///
///   auto system = QuerySystem::Create(ParseCollection(text).value());
///   auto report = system->CheckConsistency();
///   auto answer = system->AnswerExact(plan, domain);
class QuerySystem {
 public:
  struct Options {
    uint64_t max_shapes = uint64_t{1} << 26;
    uint64_t max_worlds = uint64_t{1} << 22;
    /// Universe-size cap (bits) for brute-force fallbacks on non-identity
    /// collections.
    size_t max_universe_bits = 22;
    /// Worker threads for consistency search, exact counting and
    /// Monte-Carlo sampling. 0 (the default) resolves via the PSC_THREADS
    /// environment variable, falling back to hardware_concurrency(); 1
    /// forces the sequential code paths byte-identical to the historical
    /// behaviour. Verdicts, exact counts and confidences are bit-identical
    /// for every thread count; Monte-Carlo estimates are identical across
    /// all multi-threaded counts (see AnswerMonteCarlo).
    size_t threads = 0;
    /// Route conjunctive-query evaluation through compiled slot-based join
    /// plans with lazy hash indexes (see relational/query_plan.h). false
    /// selects the legacy nested-loop interpreter (CLI:
    /// `--no-compiled-eval`) for differential testing. NOTE: the switch is
    /// process-global — Create applies it via
    /// eval::SetCompiledEvalEnabled, affecting every evaluation, not just
    /// this system's. Both engines produce identical results.
    bool use_compiled_eval = true;
    /// Wall-clock deadline in milliseconds for each entry point (0 = no
    /// deadline; CLI: `--deadline-ms`). Every call builds a fresh budget,
    /// so the deadline applies per call, not per system. On expiry,
    /// consistency checks degrade to kUnknown, Monte-Carlo returns a
    /// truncated partial answer, and exact counting/enumeration fails
    /// with Status::DeadlineExceeded. With both limits at 0 (the default)
    /// no budget is threaded anywhere and all results are bit-identical
    /// to the unlimited build.
    int64_t deadline_ms = 0;
    /// Explored-node budget shared by all workers of one call (0 = no
    /// budget; CLI: `--node-budget`). Nodes are the solvers' natural work
    /// units: count-vector tree nodes, DP states, allowable combinations,
    /// brute-force subsets, Monte-Carlo samples.
    uint64_t node_budget = 0;
    /// External cancellation for every call made through this system: the
    /// per-call budgets adopt this token, so one `Cancel()` (a server
    /// draining for shutdown, the CLI's signal handler) revokes all
    /// in-flight and future work with the usual graceful degradation
    /// (kUnknown verdicts / truncated answers / DeadlineExceeded).
    /// Unset (the default): calls are revocable only via their own limits.
    std::optional<limits::CancelToken> cancel;
    /// Per-query telemetry scope (see obs/scope.h). Every entry point
    /// installs it for the duration of the call — workers included, via
    /// exec's trace propagation — so metric deltas, trace spans and any
    /// limits trip attribute to this query. The default null scope keeps
    /// the historical global-only accounting at zero extra cost.
    obs::Scope scope;
  };

  /// Builds a system over `collection`.
  static Result<QuerySystem> Create(SourceCollection collection);
  static Result<QuerySystem> Create(SourceCollection collection,
                                    Options options);

  const SourceCollection& collection() const { return collection_; }

  /// \brief Decides whether poss(S) ≠ ∅ (Section 3), choosing the best
  /// strategy for the collection's shape.
  Result<ConsistencyReport> CheckConsistency() const;

  /// \brief Section 5.1: exact confidences for every base fact over the
  /// fact universe dom^arity. Identity-view collections only.
  Result<ConfidenceTable> BaseConfidences(
      const std::vector<Value>& domain) const;

  /// \brief Exact query answering by possible-world enumeration:
  /// certain/possible answers and exact confidences. Exponential; bounded
  /// by Options::max_worlds. Works for identity collections over `domain`
  /// (group enumeration) and falls back to brute force otherwise.
  Result<QueryAnswer> AnswerExact(const AlgebraExprPtr& query,
                                  const std::vector<Value>& domain) const;

  /// \brief Definition 5.1 compositional answering: exact base confidences
  /// feed the π/σ/× confidence propagation. Fast, but the confidences of
  /// derived tuples assume independence (see Theorem 5.1 and experiment
  /// E5). Certain/possible sets are derived from confidences (= 1 / > 0).
  Result<QueryAnswer> AnswerCompositional(
      const AlgebraExprPtr& query, const std::vector<Value>& domain) const;

  /// \brief Monte-Carlo answering: `samples` exact-uniform worlds from
  /// poss(S); confidences are sample frequencies. The certain/possible
  /// sets are *estimates* (tuples seen in every / any sampled world).
  Result<QueryAnswer> AnswerMonteCarlo(const AlgebraExprPtr& query,
                                       const std::vector<Value>& domain,
                                       uint64_t samples, uint64_t seed) const;

  /// \name Conjunctive-query overloads
  ///
  /// Accept the paper's query notation directly; the query is compiled
  /// into an algebra plan (see plan_compiler.h) and dispatched to the
  /// corresponding method above.
  /// @{
  Result<QueryAnswer> AnswerExact(const ConjunctiveQuery& query,
                                  const std::vector<Value>& domain) const;
  Result<QueryAnswer> AnswerCompositional(
      const ConjunctiveQuery& query, const std::vector<Value>& domain) const;
  Result<QueryAnswer> AnswerMonteCarlo(const ConjunctiveQuery& query,
                                       const std::vector<Value>& domain,
                                       uint64_t samples, uint64_t seed) const;
  /// @}

 private:
  QuerySystem(SourceCollection collection, Options options)
      : collection_(std::move(collection)), options_(options) {}

  SourceCollection collection_;
  Options options_;
};

}  // namespace psc

#endif  // PSC_CORE_QUERY_SYSTEM_H_
