#include "psc/core/query_system.h"

#include <algorithm>
#include <map>
#include <utility>

#include "psc/algebra/plan_compiler.h"
#include "psc/counting/identity_instance.h"
#include "psc/counting/world_enumerator.h"
#include "psc/counting/world_sampler.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/exec/parallel.h"
#include "psc/exec/thread_pool.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/relational/query_plan.h"
#include "psc/util/random.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// Near-1 threshold for deriving certain answers from floating-point
/// confidences in the compositional path.
constexpr double kCertainEpsilon = 1e-9;

/// Accumulates per-world query results into certain/possible sets and
/// containment counts. Default-constructed instances are empty shells for
/// container use; Add requires a query-bound instance. Accumulators over
/// disjoint world blocks merge with MergeFrom — intersection, union and
/// count addition are order-insensitive, so a block-parallel accumulation
/// finishes with exactly the sequential result.
class AnswerAccumulator {
 public:
  AnswerAccumulator() = default;
  explicit AnswerAccumulator(const AlgebraExprPtr* query) : query_(query) {}

  Status Add(const Database& world) {
    PSC_ASSIGN_OR_RETURN(const Relation answer, (*query_)->EvalInWorld(world));
    if (worlds_ == 0) {
      certain_ = answer;
    } else {
      Relation still_certain;
      for (const Tuple& tuple : certain_) {
        if (answer.count(tuple) > 0) still_certain.insert(tuple);
      }
      certain_ = std::move(still_certain);
    }
    for (const Tuple& tuple : answer) {
      possible_.insert(tuple);
      ++containment_[tuple];
    }
    ++worlds_;
    return Status::OK();
  }

  /// Folds another accumulator (over a disjoint set of worlds) into this
  /// one. Commutative and associative, so any merge order yields the
  /// sequential result.
  void MergeFrom(AnswerAccumulator other) {
    if (other.worlds_ == 0) return;
    if (worlds_ == 0) {
      *this = std::move(other);
      return;
    }
    Relation still_certain;
    for (const Tuple& tuple : certain_) {
      if (other.certain_.count(tuple) > 0) still_certain.insert(tuple);
    }
    certain_ = std::move(still_certain);
    for (const Tuple& tuple : other.possible_) possible_.insert(tuple);
    for (const auto& [tuple, count] : other.containment_) {
      containment_[tuple] += count;
    }
    worlds_ += other.worlds_;
  }

  Result<QueryAnswer> Finish(const std::string& method) const {
    if (worlds_ == 0) {
      return Status::Inconsistent(
          "poss(S) is empty: query answers are undefined");
    }
    QueryAnswer answer;
    answer.method = method;
    answer.worlds_used = worlds_;
    answer.certain = certain_;
    answer.possible = possible_;
    answer.confidences = ProbRelation((*query_)->OutputArity());
    for (const auto& [tuple, count] : containment_) {
      PSC_RETURN_NOT_OK(answer.confidences.Insert(
          tuple, static_cast<double>(count) / static_cast<double>(worlds_)));
    }
    return answer;
  }

  uint64_t worlds() const { return worlds_; }

 private:
  const AlgebraExprPtr* query_ = nullptr;
  uint64_t worlds_ = 0;
  Relation certain_;
  Relation possible_;
  std::map<Tuple, uint64_t> containment_;
};

/// Per-call budget from the system options; inactive (null state, zero
/// overhead, bit-identical results) when no limit is configured.
limits::Budget MakeBudget(const QuerySystem::Options& options) {
  if (options.deadline_ms <= 0 && options.node_budget == 0 &&
      !options.cancel.has_value() &&
      limits::AmbientCallLimits() == nullptr) {
    return limits::Budget();
  }
  limits::BudgetOptions budget_options;
  budget_options.deadline_ms = options.deadline_ms;
  budget_options.node_budget = options.node_budget;
  budget_options.cancel = options.cancel;
  return limits::Budget(budget_options);
}

}  // namespace

Result<QuerySystem> QuerySystem::Create(SourceCollection collection) {
  return Create(std::move(collection), Options());
}

Result<QuerySystem> QuerySystem::Create(SourceCollection collection,
                                        Options options) {
  eval::SetCompiledEvalEnabled(options.use_compiled_eval);
  return QuerySystem(std::move(collection), options);
}

Result<ConsistencyReport> QuerySystem::CheckConsistency() const {
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_OBS_SPAN("query.check_consistency");
  GeneralConsistencyChecker::Options options;
  options.max_shapes = options_.max_shapes;
  options.max_exhaustive_bits = options_.max_universe_bits;
  options.threads = options_.threads;
  options.budget = MakeBudget(options_);
  const GeneralConsistencyChecker checker(options);
  return checker.Check(collection_);
}

Result<ConfidenceTable> QuerySystem::BaseConfidences(
    const std::vector<Value>& domain) const {
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_OBS_SPAN("query.base_confidences");
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  const limits::Budget budget = MakeBudget(options_);
  const size_t threads = exec::ResolveThreadCount(options_.threads);
  if (threads > 1) {
    exec::ThreadPool pool(threads);
    return ComputeBaseFactConfidences(instance, options_.max_shapes, &pool,
                                      budget);
  }
  return ComputeBaseFactConfidences(instance, options_.max_shapes, nullptr,
                                    budget);
}

Result<QueryAnswer> QuerySystem::AnswerExact(
    const AlgebraExprPtr& query, const std::vector<Value>& domain) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_OBS_SPAN("query.answer_exact");
  AnswerAccumulator accumulator(&query);
  Status world_error;
  const auto consume = [&](const Database& world) {
    world_error = accumulator.Add(world);
    return world_error.ok();
  };

  const limits::Budget budget = MakeBudget(options_);
  if (collection_.AllIdentityViews()) {
    PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                         IdentityInstance::Create(collection_, domain));
    IdentityWorldEnumerator enumerator(&instance);
    PSC_ASSIGN_OR_RETURN(
        const bool completed,
        enumerator.ForEachWorld(consume, options_.max_worlds,
                                options_.max_shapes, budget));
    if (!completed) return world_error;
    PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                         accumulator.Finish("exact-enumeration"));
    PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
    return answer;
  }

  BruteForceWorldEnumerator::Options brute_options;
  brute_options.max_universe_bits = options_.max_universe_bits;
  brute_options.budget = budget;
  BruteForceWorldEnumerator enumerator(&collection_, domain, brute_options);
  PSC_ASSIGN_OR_RETURN(const bool completed,
                       enumerator.ForEachPossibleWorld(consume));
  if (!completed) return world_error;
  PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                       accumulator.Finish("exact-enumeration"));
  PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
  return answer;
}

Result<QueryAnswer> QuerySystem::AnswerCompositional(
    const AlgebraExprPtr& query, const std::vector<Value>& domain) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_OBS_SPAN("query.answer_compositional");
  if (!collection_.AllIdentityViews()) {
    return Status::Unimplemented(
        "compositional confidences require identity views (the Section 5.1 "
        "special case that defines base-fact confidences)");
  }
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  ConfidenceTable table;
  const limits::Budget budget = MakeBudget(options_);
  const size_t threads = exec::ResolveThreadCount(options_.threads);
  if (threads > 1) {
    exec::ThreadPool pool(threads);
    PSC_ASSIGN_OR_RETURN(table,
                         ComputeBaseFactConfidences(
                             instance, options_.max_shapes, &pool, budget));
  } else {
    PSC_ASSIGN_OR_RETURN(
        table, ComputeBaseFactConfidences(instance, options_.max_shapes,
                                          nullptr, budget));
  }
  ProbRelation base_relation(instance.arity());
  for (const TupleConfidence& entry : table.entries) {
    PSC_RETURN_NOT_OK(base_relation.Insert(entry.tuple, entry.confidence));
  }
  std::map<std::string, ProbRelation> base;
  base.emplace(instance.relation(), std::move(base_relation));

  QueryAnswer answer;
  answer.method = "compositional";
  PSC_ASSIGN_OR_RETURN(answer.confidences, query->EvalConfidence(base));
  for (const auto& [tuple, confidence] : answer.confidences.entries()) {
    answer.possible.insert(tuple);
    if (confidence >= 1.0 - kCertainEpsilon) answer.certain.insert(tuple);
  }
  return answer;
}

Result<QueryAnswer> QuerySystem::AnswerMonteCarlo(
    const AlgebraExprPtr& query, const std::vector<Value>& domain,
    uint64_t samples, uint64_t seed) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  if (samples == 0) return Status::InvalidArgument("samples must be >= 1");
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_OBS_SPAN("query.answer_monte_carlo");
  if (!collection_.AllIdentityViews()) {
    return Status::Unimplemented(
        "Monte-Carlo answering requires identity views (uniform world "
        "sampling uses the signature-group representation)");
  }
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  PSC_ASSIGN_OR_RETURN(const WorldSampler sampler,
                       WorldSampler::Create(&instance, options_.max_worlds));

  const limits::Budget budget = MakeBudget(options_);
  const size_t threads = exec::ResolveThreadCount(options_.threads);
  if (threads <= 1) {
    // Historical single-stream path: one Rng(seed) consumed in sample
    // order. Kept verbatim so --threads 1 replays previous releases
    // byte for byte.
    Rng rng(seed);
    AnswerAccumulator accumulator(&query);
    for (uint64_t i = 0; i < samples; ++i) {
      // A tripped budget truncates: the samples drawn so far are a valid
      // (smaller) estimate. With zero samples there is nothing to report.
      if (!budget.Charge()) {
        if (accumulator.worlds() == 0) return budget.ToStatus();
        PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                             accumulator.Finish("monte-carlo"));
        answer.truncated = true;
        answer.truncation_reason = budget.ToStatus().message();
        PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
        return answer;
      }
      PSC_RETURN_NOT_OK(accumulator.Add(sampler.Sample(&rng)));
    }
    PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                         accumulator.Finish("monte-carlo"));
    PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
    return answer;
  }

  // Counter-based streams: block b always draws its (at most)
  // kBlockSamples worlds from Rng(MixSeed(seed, b)), no matter which
  // worker runs it — the sampled multiset, and hence the estimate, is a
  // pure function of (seed, samples), identical for every thread count
  // >= 2. The block size is fixed (not derived from the worker count) for
  // the same reason.
  constexpr uint64_t kBlockSamples = 64;
  const uint64_t num_blocks = (samples + kBlockSamples - 1) / kBlockSamples;
  struct BlockResult {
    AnswerAccumulator acc;
    Status error;
  };
  exec::ThreadPool pool(threads);
  const limits::CancelToken cancel_token = budget.token();
  BlockResult merged = exec::ParallelReduce<BlockResult>(
      &pool, static_cast<size_t>(num_blocks), BlockResult{},
      [&](size_t block) {
        BlockResult result;
        result.acc = AnswerAccumulator(&query);
        Rng rng(MixSeed(seed, block));
        const uint64_t begin = block * kBlockSamples;
        const uint64_t end = std::min(samples, begin + kBlockSamples);
        for (uint64_t i = begin; i < end; ++i) {
          // On a trip this block returns its samples so far; the merged
          // partial answer is flagged truncated below.
          if (!budget.Charge()) break;
          result.error = result.acc.Add(sampler.Sample(&rng));
          if (!result.error.ok()) break;
        }
        return result;
      },
      [](BlockResult& acc, BlockResult part) {
        if (!acc.error.ok()) return;
        if (!part.error.ok()) {
          acc.error = std::move(part.error);
          return;
        }
        acc.acc.MergeFrom(std::move(part.acc));
      },
      budget.active() ? &cancel_token : nullptr);
  PSC_RETURN_NOT_OK(merged.error);
  if (budget.reason() != limits::StopReason::kNone &&
      merged.acc.worlds() == 0) {
    return budget.ToStatus();
  }
  PSC_ASSIGN_OR_RETURN(QueryAnswer answer, merged.acc.Finish("monte-carlo"));
  if (budget.reason() != limits::StopReason::kNone) {
    answer.truncated = true;
    answer.truncation_reason = budget.ToStatus().message();
  }
  PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
  return answer;
}

// The CQ overloads install the scope around compilation too, so the
// eval.plans_compiled counter (and friends) lands on the query; the
// algebra overloads re-install the same scope, which nests harmlessly.

Result<QueryAnswer> QuerySystem::AnswerExact(
    const ConjunctiveQuery& query, const std::vector<Value>& domain) const {
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerExact(plan, domain);
}

Result<QueryAnswer> QuerySystem::AnswerCompositional(
    const ConjunctiveQuery& query, const std::vector<Value>& domain) const {
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerCompositional(plan, domain);
}

Result<QueryAnswer> QuerySystem::AnswerMonteCarlo(
    const ConjunctiveQuery& query, const std::vector<Value>& domain,
    uint64_t samples, uint64_t seed) const {
  const obs::ScopeGuard scope_guard(options_.scope);
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerMonteCarlo(plan, domain, samples, seed);
}

}  // namespace psc
