#include "psc/core/query_system.h"

#include <map>

#include "psc/algebra/plan_compiler.h"
#include "psc/counting/identity_instance.h"
#include "psc/counting/world_enumerator.h"
#include "psc/counting/world_sampler.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/random.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// Near-1 threshold for deriving certain answers from floating-point
/// confidences in the compositional path.
constexpr double kCertainEpsilon = 1e-9;

/// Accumulates per-world query results into certain/possible sets and
/// containment counts.
class AnswerAccumulator {
 public:
  explicit AnswerAccumulator(const AlgebraExprPtr& query) : query_(query) {}

  Status Add(const Database& world) {
    PSC_ASSIGN_OR_RETURN(const Relation answer, query_->EvalInWorld(world));
    if (worlds_ == 0) {
      certain_ = answer;
    } else {
      Relation still_certain;
      for (const Tuple& tuple : certain_) {
        if (answer.count(tuple) > 0) still_certain.insert(tuple);
      }
      certain_ = std::move(still_certain);
    }
    for (const Tuple& tuple : answer) {
      possible_.insert(tuple);
      ++containment_[tuple];
    }
    ++worlds_;
    return Status::OK();
  }

  Result<QueryAnswer> Finish(const std::string& method) const {
    if (worlds_ == 0) {
      return Status::Inconsistent(
          "poss(S) is empty: query answers are undefined");
    }
    QueryAnswer answer;
    answer.method = method;
    answer.worlds_used = worlds_;
    answer.certain = certain_;
    answer.possible = possible_;
    answer.confidences = ProbRelation(query_->OutputArity());
    for (const auto& [tuple, count] : containment_) {
      PSC_RETURN_NOT_OK(answer.confidences.Insert(
          tuple, static_cast<double>(count) / static_cast<double>(worlds_)));
    }
    return answer;
  }

 private:
  const AlgebraExprPtr& query_;
  uint64_t worlds_ = 0;
  Relation certain_;
  Relation possible_;
  std::map<Tuple, uint64_t> containment_;
};

}  // namespace

Result<QuerySystem> QuerySystem::Create(SourceCollection collection) {
  return Create(std::move(collection), Options());
}

Result<QuerySystem> QuerySystem::Create(SourceCollection collection,
                                        Options options) {
  return QuerySystem(std::move(collection), options);
}

Result<ConsistencyReport> QuerySystem::CheckConsistency() const {
  GeneralConsistencyChecker::Options options;
  options.max_shapes = options_.max_shapes;
  options.max_exhaustive_bits = options_.max_universe_bits;
  const GeneralConsistencyChecker checker(options);
  return checker.Check(collection_);
}

Result<ConfidenceTable> QuerySystem::BaseConfidences(
    const std::vector<Value>& domain) const {
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  return ComputeBaseFactConfidences(instance, options_.max_shapes);
}

Result<QueryAnswer> QuerySystem::AnswerExact(
    const AlgebraExprPtr& query, const std::vector<Value>& domain) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  PSC_OBS_SPAN("query.answer_exact");
  AnswerAccumulator accumulator(query);
  Status world_error;
  const auto consume = [&](const Database& world) {
    world_error = accumulator.Add(world);
    return world_error.ok();
  };

  if (collection_.AllIdentityViews()) {
    PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                         IdentityInstance::Create(collection_, domain));
    IdentityWorldEnumerator enumerator(&instance);
    PSC_ASSIGN_OR_RETURN(
        const bool completed,
        enumerator.ForEachWorld(consume, options_.max_worlds,
                                options_.max_shapes));
    if (!completed) return world_error;
    PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                         accumulator.Finish("exact-enumeration"));
    PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
    return answer;
  }

  BruteForceWorldEnumerator::Options brute_options;
  brute_options.max_universe_bits = options_.max_universe_bits;
  BruteForceWorldEnumerator enumerator(&collection_, domain, brute_options);
  PSC_ASSIGN_OR_RETURN(const bool completed,
                       enumerator.ForEachPossibleWorld(consume));
  if (!completed) return world_error;
  PSC_ASSIGN_OR_RETURN(QueryAnswer answer,
                       accumulator.Finish("exact-enumeration"));
  PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
  return answer;
}

Result<QueryAnswer> QuerySystem::AnswerCompositional(
    const AlgebraExprPtr& query, const std::vector<Value>& domain) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  PSC_OBS_SPAN("query.answer_compositional");
  if (!collection_.AllIdentityViews()) {
    return Status::Unimplemented(
        "compositional confidences require identity views (the Section 5.1 "
        "special case that defines base-fact confidences)");
  }
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  PSC_ASSIGN_OR_RETURN(const ConfidenceTable table,
                       ComputeBaseFactConfidences(instance,
                                                  options_.max_shapes));
  ProbRelation base_relation(instance.arity());
  for (const TupleConfidence& entry : table.entries) {
    PSC_RETURN_NOT_OK(base_relation.Insert(entry.tuple, entry.confidence));
  }
  std::map<std::string, ProbRelation> base;
  base.emplace(instance.relation(), std::move(base_relation));

  QueryAnswer answer;
  answer.method = "compositional";
  PSC_ASSIGN_OR_RETURN(answer.confidences, query->EvalConfidence(base));
  for (const auto& [tuple, confidence] : answer.confidences.entries()) {
    answer.possible.insert(tuple);
    if (confidence >= 1.0 - kCertainEpsilon) answer.certain.insert(tuple);
  }
  return answer;
}

Result<QueryAnswer> QuerySystem::AnswerMonteCarlo(
    const AlgebraExprPtr& query, const std::vector<Value>& domain,
    uint64_t samples, uint64_t seed) const {
  if (query == nullptr) return Status::InvalidArgument("null query plan");
  if (samples == 0) return Status::InvalidArgument("samples must be >= 1");
  PSC_OBS_SPAN("query.answer_monte_carlo");
  if (!collection_.AllIdentityViews()) {
    return Status::Unimplemented(
        "Monte-Carlo answering requires identity views (uniform world "
        "sampling uses the signature-group representation)");
  }
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::Create(collection_, domain));
  PSC_ASSIGN_OR_RETURN(const WorldSampler sampler,
                       WorldSampler::Create(&instance, options_.max_worlds));
  Rng rng(seed);
  AnswerAccumulator accumulator(query);
  for (uint64_t i = 0; i < samples; ++i) {
    PSC_RETURN_NOT_OK(accumulator.Add(sampler.Sample(&rng)));
  }
  PSC_ASSIGN_OR_RETURN(QueryAnswer answer, accumulator.Finish("monte-carlo"));
  PSC_OBS_COUNTER_ADD("query.worlds_used", answer.worlds_used);
  return answer;
}

Result<QueryAnswer> QuerySystem::AnswerExact(
    const ConjunctiveQuery& query, const std::vector<Value>& domain) const {
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerExact(plan, domain);
}

Result<QueryAnswer> QuerySystem::AnswerCompositional(
    const ConjunctiveQuery& query, const std::vector<Value>& domain) const {
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerCompositional(plan, domain);
}

Result<QueryAnswer> QuerySystem::AnswerMonteCarlo(
    const ConjunctiveQuery& query, const std::vector<Value>& domain,
    uint64_t samples, uint64_t seed) const {
  PSC_ASSIGN_OR_RETURN(const AlgebraExprPtr plan, CompileQuery(query));
  return AnswerMonteCarlo(plan, domain, samples, seed);
}

}  // namespace psc
