#ifndef PSC_CORE_CERTAIN_ANSWER_H_
#define PSC_CORE_CERTAIN_ANSWER_H_

#include <cstdint>

#include "psc/algebra/expression.h"
#include "psc/limits/budget.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Result of the template-based certain-answer computation.
struct CertainAnswerBound {
  /// Tuples guaranteed to be in Q(D) for every D ∈ poss(S).
  Relation certain;
  /// Allowable combinations U examined.
  uint64_t combinations = 0;
  /// True when some combination was skipped (non-ground built-in or
  /// budget), in which case `certain` may be an over-tight bound of an
  /// already-sound approximation; it never becomes unsound.
  bool truncated = false;
};

/// \brief Sound under-approximation of the certain answer Q₊(S) for
/// arbitrary conjunctive views — the paper's Section 6 direction of
/// computing query answers from the Theorem 4.1 representation, in the
/// style of Grahne–Mendelzon's tableau techniques [6].
///
/// Method: for every allowable combination U, the tableau T^U(S) frozen
/// with labeled nulls is a *naive table* representing every database of
/// rep(𝒯^U(S)) (each such database extends an instantiation of the
/// tableau, and conjunctive plans are monotone). Evaluating the plan under
/// certain-semantics — ordered comparisons touching a null never hold,
/// equality on nulls holds only for the same label, answer tuples
/// containing nulls are dropped — yields tuples present in Q(D) for every
/// D ∈ rep(𝒯^U(S)); intersecting over U gives tuples certain for all of
/// poss(S) = ⋃_U rep(𝒯^U(S)).
///
/// Sound, not complete: naive tables cannot express disjunctive
/// reasoning, and combinations whose cardinality constraints are
/// unsatisfiable still participate in the intersection (detecting their
/// emptiness is itself hard). Unlike QuerySystem::AnswerExact, it never
/// enumerates possible worlds, so it works for general views whose world
/// sets are unbounded.
///
/// Errors: Inconsistent when every combination is unrealizable;
/// InvalidArgument for a null plan.
///
/// A tripped cooperative `budget` stops the scan and sets `truncated`
/// instead of failing: the intersection over the combinations seen so far
/// is already a sound under-approximation.
Result<CertainAnswerBound> CertainAnswerLowerBound(
    const SourceCollection& collection, const AlgebraExprPtr& query,
    uint64_t max_combinations = uint64_t{1} << 16,
    const limits::Budget& budget = limits::Budget());

}  // namespace psc

#endif  // PSC_CORE_CERTAIN_ANSWER_H_
