#include "psc/util/combinatorics.h"

#include "psc/util/status.h"

namespace psc {

const std::vector<BigInt>& BinomialTable::Row(int64_t n) {
  auto it = rows_.find(n);
  if (it != rows_.end()) return it->second;
  std::vector<BigInt> row(static_cast<size_t>(n) + 1);
  row[0] = BigInt(1);
  for (int64_t k = 0; k < n; ++k) {
    // C(n, k+1) = C(n, k) · (n − k) / (k + 1), exactly.
    BigInt next = row[static_cast<size_t>(k)];
    next.MulU32(static_cast<uint32_t>(n - k));
    row[static_cast<size_t>(k + 1)] =
        next.DivExactU32(static_cast<uint32_t>(k + 1));
  }
  return rows_.emplace(n, std::move(row)).first->second;
}

const BigInt& BinomialTable::Choose(int64_t n, int64_t k) {
  PSC_CHECK_MSG(n >= 0 && k >= 0, "BinomialTable::Choose: negative argument");
  if (k > n) return zero_;
  return Row(n)[static_cast<size_t>(k)];
}

}  // namespace psc
