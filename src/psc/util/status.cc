#include "psc/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace psc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

namespace internal {

void DieBecauseCheckFailed(const char* file, int line, const char* expr,
                           const std::string& extra) {
  std::fprintf(stderr, "PSC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace psc
