#include "psc/util/bigint.h"

#include <algorithm>
#include <cmath>

#include "psc/util/status.h"

namespace psc {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffu));
    value >>= 32;
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt& BigInt::operator+=(const BigInt& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result = *this;
  result += other;
  return result;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  PSC_CHECK_MSG(*this >= other, "BigInt subtraction would underflow");
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t sub = borrow;
    if (i < other.limbs_.size()) sub += other.limbs_[i];
    if (limbs_[i] >= sub) {
      limbs_[i] = static_cast<uint32_t>(limbs_[i] - sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<uint32_t>(kBase + limbs_[i] - sub);
      borrow = 1;
    }
  }
  PSC_CHECK(borrow == 0);
  Normalize();
  return *this;
}

BigInt BigInt::operator-(const BigInt& other) const {
  BigInt result = *this;
  result -= other;
  return result;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (IsZero() || other.IsZero()) return BigInt();
  BigInt result;
  result.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = result.limbs_[i + j] + a * other.limbs_[j] + carry;
      result.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = result.limbs_[k] + carry;
      result.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  result.Normalize();
  return result;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  *this = *this * other;
  return *this;
}

BigInt& BigInt::MulU32(uint32_t factor) {
  if (factor == 0 || IsZero()) {
    limbs_.clear();
    return *this;
  }
  uint64_t carry = 0;
  for (uint32_t& limb : limbs_) {
    uint64_t cur = static_cast<uint64_t>(limb) * factor + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

uint32_t BigInt::DivU32(uint32_t divisor) {
  PSC_CHECK_MSG(divisor != 0, "BigInt division by zero");
  uint64_t remainder = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (remainder << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  Normalize();
  return static_cast<uint32_t>(remainder);
}

BigInt BigInt::DivExactU32(uint32_t divisor) const {
  BigInt result = *this;
  uint32_t remainder = result.DivU32(divisor);
  PSC_CHECK_MSG(remainder == 0, "BigInt::DivExactU32: division not exact");
  return result;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  BigInt tmp = *this;
  std::string digits;
  while (!tmp.IsZero()) {
    uint32_t chunk = tmp.DivU32(1000000000u);
    if (tmp.IsZero()) {
      // Most significant chunk: no zero padding.
      digits.insert(0, std::to_string(chunk));
    } else {
      std::string part = std::to_string(chunk);
      digits.insert(0, std::string(9 - part.size(), '0') + part);
    }
  }
  return digits;
}

double BigInt::MantissaAndExponent(int* exponent) const {
  if (IsZero()) {
    *exponent = 0;
    return 0.0;
  }
  // Use the top (up to) 3 limbs for 96 bits of precision headroom.
  const int top = static_cast<int>(limbs_.size()) - 1;
  double mantissa = 0.0;
  for (int i = top; i >= 0 && i > top - 3; --i) {
    mantissa = mantissa * static_cast<double>(kBase) + limbs_[i];
  }
  const int used = std::min<int>(3, static_cast<int>(limbs_.size()));
  int exp2 = (static_cast<int>(limbs_.size()) - used) * 32;
  int local_exp = 0;
  mantissa = std::frexp(mantissa, &local_exp);
  *exponent = exp2 + local_exp;
  return mantissa;
}

double BigInt::ToDouble() const {
  int exp = 0;
  double mant = MantissaAndExponent(&exp);
  return std::ldexp(mant, exp);
}

double BigInt::RatioToDouble(const BigInt& num, const BigInt& den) {
  PSC_CHECK_MSG(!den.IsZero(), "BigInt::RatioToDouble: zero denominator");
  if (num.IsZero()) return 0.0;
  int num_exp = 0;
  int den_exp = 0;
  const double num_mant = num.MantissaAndExponent(&num_exp);
  const double den_mant = den.MantissaAndExponent(&den_exp);
  return std::ldexp(num_mant / den_mant, num_exp - den_exp);
}

BigInt BigInt::RandomBelow(const BigInt& bound, std::mt19937_64& engine) {
  PSC_CHECK_MSG(!bound.IsZero(), "BigInt::RandomBelow: zero bound");
  const int bits = bound.BitLength();
  const size_t limbs = (static_cast<size_t>(bits) + 31) / 32;
  const int top_bits = bits - static_cast<int>(limbs - 1) * 32;
  const uint32_t top_mask =
      top_bits >= 32 ? 0xffffffffu : ((uint32_t{1} << top_bits) - 1);
  while (true) {
    BigInt candidate;
    candidate.limbs_.resize(limbs);
    for (size_t i = 0; i < limbs; ++i) {
      candidate.limbs_[i] = static_cast<uint32_t>(engine());
    }
    candidate.limbs_.back() &= top_mask;
    candidate.Normalize();
    if (candidate < bound) return candidate;
  }
}

int BigInt::BitLength() const {
  if (IsZero()) return 0;
  int bits = (static_cast<int>(limbs_.size()) - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

uint64_t BigInt::ToUint64() const {
  PSC_CHECK_MSG(FitsUint64(), "BigInt::ToUint64: value too large");
  uint64_t value = 0;
  if (limbs_.size() >= 2) value = static_cast<uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) value |= limbs_[0];
  return value;
}

}  // namespace psc
