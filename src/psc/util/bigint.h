#ifndef PSC_UTIL_BIGINT_H_
#define PSC_UTIL_BIGINT_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace psc {

/// \brief Arbitrary-precision unsigned integer.
///
/// World counts in the Section 5.1 model counter grow like 2^N for a fact
/// universe of size N, which overflows any fixed-width type long before the
/// experiments become interesting; confidences must stay exact ratios of
/// counts. `BigInt` implements exactly the operations the counter needs:
/// addition, multiplication, ordering, subtraction (of a smaller value),
/// exact division by a machine word, and conversion to decimal / double.
///
/// Representation: little-endian vector of 32-bit limbs with no trailing
/// zero limbs (so zero is the empty vector).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// Construct from a machine integer.
  explicit BigInt(uint64_t value);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  BigInt& operator+=(const BigInt& other);
  BigInt operator+(const BigInt& other) const;

  /// Subtracts `other` from this value. Aborts if `other > *this`
  /// (the library only ever subtracts smaller counts from larger ones).
  BigInt& operator-=(const BigInt& other);
  BigInt operator-(const BigInt& other) const;

  BigInt operator*(const BigInt& other) const;
  BigInt& operator*=(const BigInt& other);

  /// Multiplies by a machine word in place.
  BigInt& MulU32(uint32_t factor);

  /// \brief Divides by a machine word in place and returns the remainder.
  uint32_t DivU32(uint32_t divisor);

  /// \brief Divides by `divisor`, aborting unless the division is exact.
  ///
  /// Used to turn Σ_worlds weight·k_g into a per-fact count (divisible by
  /// the group size termwise; see SignatureCounter).
  BigInt DivExactU32(uint32_t divisor) const;

  /// Three-way comparison.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Decimal representation.
  std::string ToString() const;

  /// Best-effort conversion; +inf if the value exceeds double range.
  double ToDouble() const;

  /// \brief Returns `num/den` as a double, stable even when both operands
  /// far exceed double range. Aborts if `den` is zero.
  static double RatioToDouble(const BigInt& num, const BigInt& den);

  /// Number of significant bits (0 for zero).
  int BitLength() const;

  /// \brief Uniformly random value in [0, bound) via rejection sampling.
  /// Aborts if `bound` is zero. Used for exact-uniform world sampling.
  static BigInt RandomBelow(const BigInt& bound, std::mt19937_64& engine);

  /// True iff the value fits in uint64; `ToUint64` aborts otherwise.
  bool FitsUint64() const { return limbs_.size() <= 2; }
  uint64_t ToUint64() const;

 private:
  void Normalize();
  /// value = mantissa * 2^exponent with mantissa in [0.5, 1).
  double MantissaAndExponent(int* exponent) const;

  std::vector<uint32_t> limbs_;
};

}  // namespace psc

#endif  // PSC_UTIL_BIGINT_H_
