#ifndef PSC_UTIL_RESULT_H_
#define PSC_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "psc/util/status.h"

namespace psc {

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Modeled on `arrow::Result`. A default-constructed `Result` is an
/// internal error; construct from a value or a non-OK `Status`.
template <typename T>
class Result {
 public:
  Result() : data_(Status::Internal("uninitialized Result")) {}

  /// Implicit construction from a value (like arrow::Result).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) status.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    PSC_CHECK_MSG(!std::get<Status>(data_).ok(),
                  "constructing Result<T> from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// \brief The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  /// \brief The held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    PSC_CHECK_MSG(ok(), status().ToString());
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    PSC_CHECK_MSG(ok(), status().ToString());
    return std::get<T>(data_);
  }
  T&& ValueOrDie() && {
    PSC_CHECK_MSG(ok(), status().ToString());
    return std::move(std::get<T>(data_));
  }

  /// \brief Alias for ValueOrDie, mirroring absl::StatusOr.
  const T& value() const& { return ValueOrDie(); }
  T& value() & { return ValueOrDie(); }
  T&& value() && { return std::move(*this).ValueOrDie(); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace psc

#define PSC_CONCAT_IMPL(x, y) x##y
#define PSC_CONCAT(x, y) PSC_CONCAT_IMPL(x, y)

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define PSC_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PSC_ASSIGN_OR_RETURN_IMPL(PSC_CONCAT(_psc_result_, __LINE__), lhs,  \
                            rexpr)

#define PSC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#endif  // PSC_UTIL_RESULT_H_
