#ifndef PSC_UTIL_RANDOM_H_
#define PSC_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace psc {

/// \brief SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
///
/// Used to derive independent RNG streams from (seed, stream-id) pairs —
/// the counter-based scheme the parallel Monte-Carlo sampler relies on so
/// the drawn worlds depend only on the logical stream index, never on
/// which worker thread ran the block.
inline uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Seed for the `stream`-th logical RNG stream of a run seeded with
/// `seed`. Distinct (seed, stream) pairs give decorrelated mt19937_64
/// streams; the mapping is pure, so any thread count replays identically.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(seed ^ SplitMix64(stream));
}

/// \brief Deterministic pseudo-random generator used by workload generators,
/// Monte-Carlo estimation and randomized property tests.
///
/// Wraps std::mt19937_64 so every consumer takes an explicit seed and runs
/// reproducibly (tests and benchmarks print their seeds).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Samples a uniformly random subset of {0,…,n-1} of size k
  /// (Floyd's algorithm); result is sorted.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace psc

#endif  // PSC_UTIL_RANDOM_H_
