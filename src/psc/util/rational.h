#ifndef PSC_UTIL_RATIONAL_H_
#define PSC_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

#include "psc/util/result.h"

namespace psc {

/// \brief Exact rational number with 64-bit numerator/denominator.
///
/// Soundness/completeness bounds and the derived thresholds
/// (|uᵢ| ≥ sᵢ·|vᵢ|, mᵢ = ⌊tᵢ/cᵢ⌋) must be evaluated exactly: a bound of
/// 1/3 stored as a double would misclassify |uᵢ| = k/3 boundary cases.
/// All comparisons use 128-bit cross multiplication, so no overflow occurs
/// for any value the library produces (counts are bounded by set sizes).
///
/// Invariants: denominator > 0; gcd(|num|, den) == 1; zero is 0/1.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// `value` as a rational.
  explicit constexpr Rational(int64_t value) : num_(value), den_(1) {}

  /// `num/den`; normalizes sign and reduces. Aborts if `den == 0`.
  Rational(int64_t num, int64_t den);

  static Rational Zero() { return Rational(); }
  static Rational One() { return Rational(1); }

  /// \brief Parses "3", "-3", "2/5", "0.25", "1.0".
  static Result<Rational> Parse(const std::string& text);

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& o) const;

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  /// \brief ⌈this · k⌉ for a non-negative integer k.
  ///
  /// Used for the soundness threshold tᵢ ≥ ⌈sᵢ·kᵢ⌉ (tᵢ is integral, so
  /// tᵢ ≥ sᵢkᵢ ⟺ tᵢ ≥ ⌈sᵢkᵢ⌉).
  int64_t MulCeil(int64_t k) const;

  /// \brief ⌊this · k⌋ for a non-negative integer k.
  int64_t MulFloor(int64_t k) const;

  /// \brief ⌊k / this⌋ for non-negative k; aborts if this is zero.
  ///
  /// Used for the completeness cap mᵢ = ⌊tᵢ/cᵢ⌋.
  int64_t DivFloor(int64_t k) const;

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// "num/den", or just "num" when den == 1.
  std::string ToString() const;

 private:
  int64_t num_;
  int64_t den_;
};

}  // namespace psc

#endif  // PSC_UTIL_RATIONAL_H_
