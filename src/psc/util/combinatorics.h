#ifndef PSC_UTIL_COMBINATORICS_H_
#define PSC_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "psc/util/bigint.h"

namespace psc {

/// \brief Cache of binomial coefficients C(n, k) as exact big integers.
///
/// The signature-grouping model counter multiplies one C(n_g, k_g) per group
/// per enumerated world-shape, so lookups must be O(1) after the first
/// touch. Each requested row n is materialized independently with the
/// multiplicative recurrence C(n,k+1) = C(n,k)·(n−k)/(k+1) — O(n) big-int
/// operations per row, never the O(n²) Pascal triangle (rows for group
/// sizes in the tens of thousands are routine).
class BinomialTable {
 public:
  BinomialTable() = default;

  BinomialTable(const BinomialTable&) = delete;
  BinomialTable& operator=(const BinomialTable&) = delete;

  /// \brief Returns C(n, k); zero when k > n. `n` and `k` must be >= 0.
  const BigInt& Choose(int64_t n, int64_t k);

  /// \brief Materializes row `n` ahead of time.
  ///
  /// Once every row a computation can touch has been warmed, `Choose` is
  /// a pure read and one table is safely shared by concurrent workers —
  /// the parallel counters rely on this instead of rebuilding the large
  /// rows once per shard.
  void Warm(int64_t n) { Row(n); }

 private:
  const std::vector<BigInt>& Row(int64_t n);

  std::map<int64_t, std::vector<BigInt>> rows_;
  BigInt zero_;
};

/// \brief Enumerates all k-subsets of {0,…,n-1} in lexicographic order,
/// invoking `fn` with the index vector. `fn` returns false to stop early.
///
/// Used by the allowable-combination enumerator (subsets uᵢ ⊆ vᵢ).
template <typename Fn>
bool ForEachSubsetOfSize(int64_t n, int64_t k, Fn&& fn) {
  if (k < 0 || k > n) return true;
  std::vector<int64_t> idx(k);
  for (int64_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    if (!fn(static_cast<const std::vector<int64_t>&>(idx))) return false;
    // Advance to the next combination.
    int64_t i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return true;
    ++idx[i];
    for (int64_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

/// \brief Enumerates every subset of {0,…,n-1} with size >= min_size,
/// as a bitmask (n <= 63). `fn` returns false to stop early.
template <typename Fn>
bool ForEachSubsetAtLeast(int64_t n, int64_t min_size, Fn&& fn) {
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (static_cast<int64_t>(__builtin_popcountll(mask)) < min_size) continue;
    if (!fn(mask)) return false;
  }
  return true;
}

}  // namespace psc

#endif  // PSC_UTIL_COMBINATORICS_H_
