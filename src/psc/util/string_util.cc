#include "psc/util/string_util.h"

#include <cctype>

namespace psc {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace psc
