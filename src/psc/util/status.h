#ifndef PSC_UTIL_STATUS_H_
#define PSC_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace psc {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across public API boundaries;
/// every fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kInconsistent,
  kDeadlineExceeded,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow-style status object: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (single pointer, no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// \brief True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;
};

namespace internal {
/// Aborts the process with a diagnostic; used by PSC_CHECK.
[[noreturn]] void DieBecauseCheckFailed(const char* file, int line,
                                        const char* expr,
                                        const std::string& extra);
}  // namespace internal

}  // namespace psc

/// Propagates a non-OK status to the caller.
#define PSC_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::psc::Status _psc_status = (expr);        \
    if (!_psc_status.ok()) return _psc_status; \
  } while (false)

/// Aborts if `cond` is false. For internal invariants, not input validation.
#define PSC_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::psc::internal::DieBecauseCheckFailed(__FILE__, __LINE__, #cond, \
                                             "");                       \
    }                                                                   \
  } while (false)

/// PSC_CHECK with an extra message.
#define PSC_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::psc::internal::DieBecauseCheckFailed(__FILE__, __LINE__, #cond, \
                                             (msg));                    \
    }                                                                   \
  } while (false)

#endif  // PSC_UTIL_STATUS_H_
