#include "psc/util/random.h"

#include <algorithm>
#include <set>

#include "psc/util/status.h"

namespace psc {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PSC_CHECK_MSG(lo <= hi, "Rng::UniformInt: empty range");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  PSC_CHECK_MSG(k >= 0 && k <= n, "Rng::SampleWithoutReplacement: bad k");
  std::set<int64_t> chosen;
  for (int64_t j = n - k; j < n; ++j) {
    const int64_t t = UniformInt(0, j);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<int64_t>(chosen.begin(), chosen.end());
}

}  // namespace psc
