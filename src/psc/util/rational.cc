#include "psc/util/rational.h"

#include <cstdlib>
#include <numeric>

#include "psc/util/status.h"

namespace psc {

namespace {

using Int128 = __int128;

int64_t Gcd(int64_t a, int64_t b) {
  // Magnitudes via unsigned arithmetic: `-a` on INT64_MIN is signed
  // overflow (UB), while 0 - uint64(a) is well defined and exact.
  const uint64_t ua =
      a < 0 ? uint64_t{0} - static_cast<uint64_t>(a) : static_cast<uint64_t>(a);
  const uint64_t ub =
      b < 0 ? uint64_t{0} - static_cast<uint64_t>(b) : static_cast<uint64_t>(b);
  return static_cast<int64_t>(std::gcd(ua, ub));
}

Rational MakeFromInt128(Int128 num, Int128 den) {
  PSC_CHECK_MSG(den != 0, "Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  // Reduce in 128 bits before narrowing.
  Int128 a = num < 0 ? -num : num;
  Int128 b = den;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a != 0) {
    num /= a;
    den /= a;
  }
  PSC_CHECK_MSG(num <= INT64_MAX && num >= INT64_MIN && den <= INT64_MAX,
                "Rational: overflow after reduction");
  return Rational(static_cast<int64_t>(num), static_cast<int64_t>(den));
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  PSC_CHECK_MSG(den_ != 0, "Rational: zero denominator");
  if (den_ < 0) {
    // Negating INT64_MIN is signed overflow; abort deterministically
    // instead of relying on UB.
    PSC_CHECK_MSG(num_ != INT64_MIN && den_ != INT64_MIN,
                  "Rational: INT64_MIN cannot be sign-normalized");
    num_ = -num_;
    den_ = -den_;
  }
  const int64_t g = Gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Result<Rational> Rational::Parse(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty rational literal");
  const auto parse_int = [](const std::string& part,
                            int64_t* out) -> Status {
    if (part.empty()) return Status::ParseError("empty integer part");
    size_t pos = 0;
    try {
      *out = std::stoll(part, &pos);
    } catch (...) {
      return Status::ParseError("invalid integer: '" + part + "'");
    }
    if (pos != part.size()) {
      return Status::ParseError("trailing characters in integer: '" + part +
                                "'");
    }
    return Status::OK();
  };

  const size_t slash = text.find('/');
  if (slash != std::string::npos) {
    int64_t num = 0;
    int64_t den = 0;
    PSC_RETURN_NOT_OK(parse_int(text.substr(0, slash), &num));
    PSC_RETURN_NOT_OK(parse_int(text.substr(slash + 1), &den));
    if (den == 0) return Status::ParseError("zero denominator in '" + text + "'");
    return Rational(num, den);
  }

  const size_t dot = text.find('.');
  if (dot != std::string::npos) {
    const std::string int_part = text.substr(0, dot);
    const std::string frac_part = text.substr(dot + 1);
    if (frac_part.size() > 18) {
      return Status::ParseError("too many fractional digits in '" + text + "'");
    }
    int64_t whole = 0;
    if (!int_part.empty() && int_part != "-") {
      PSC_RETURN_NOT_OK(parse_int(int_part, &whole));
    }
    int64_t frac = 0;
    if (!frac_part.empty()) {
      PSC_RETURN_NOT_OK(parse_int(frac_part, &frac));
      if (frac < 0) return Status::ParseError("invalid decimal: '" + text + "'");
    }
    int64_t scale = 1;
    for (size_t i = 0; i < frac_part.size(); ++i) scale *= 10;
    const bool negative = !text.empty() && text[0] == '-';
    // whole*scale + frac can exceed int64 even though each part parsed
    // (e.g. "9223372036854775807.5"); build the numerator in 128 bits and
    // range-check instead of silently wrapping. 128-bit arithmetic cannot
    // overflow here: |whole| < 2^63 and scale <= 10^18.
    const Int128 magnitude =
        (whole < 0 ? -Int128(whole) : Int128(whole)) * scale + frac;
    const Int128 num = negative ? -magnitude : magnitude;
    if (num > INT64_MAX || num < INT64_MIN) {
      return Status::ParseError("decimal literal overflows int64: '" + text +
                                "'");
    }
    return Rational(static_cast<int64_t>(num), scale);
  }

  int64_t value = 0;
  PSC_RETURN_NOT_OK(parse_int(text, &value));
  return Rational(value);
}

Rational Rational::operator+(const Rational& o) const {
  return MakeFromInt128(Int128(num_) * o.den_ + Int128(o.num_) * den_,
                        Int128(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return MakeFromInt128(Int128(num_) * o.den_ - Int128(o.num_) * den_,
                        Int128(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return MakeFromInt128(Int128(num_) * o.num_, Int128(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  PSC_CHECK_MSG(!o.IsZero(), "Rational: division by zero");
  return MakeFromInt128(Int128(num_) * o.den_, Int128(den_) * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return Int128(num_) * o.den_ < Int128(o.num_) * den_;
}

bool Rational::operator<=(const Rational& o) const {
  return Int128(num_) * o.den_ <= Int128(o.num_) * den_;
}

int64_t Rational::MulCeil(int64_t k) const {
  PSC_CHECK_MSG(k >= 0, "Rational::MulCeil: negative multiplier");
  const Int128 prod = Int128(num_) * k;
  Int128 q = prod / den_;
  if (prod % den_ != 0 && prod > 0) ++q;
  return static_cast<int64_t>(q);
}

int64_t Rational::MulFloor(int64_t k) const {
  PSC_CHECK_MSG(k >= 0, "Rational::MulFloor: negative multiplier");
  const Int128 prod = Int128(num_) * k;
  Int128 q = prod / den_;
  if (prod % den_ != 0 && prod < 0) --q;
  return static_cast<int64_t>(q);
}

int64_t Rational::DivFloor(int64_t k) const {
  PSC_CHECK_MSG(k >= 0, "Rational::DivFloor: negative dividend");
  PSC_CHECK_MSG(num_ > 0, "Rational::DivFloor: non-positive divisor");
  const Int128 scaled = Int128(k) * den_;
  return static_cast<int64_t>(scaled / num_);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace psc
