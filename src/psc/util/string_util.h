#ifndef PSC_UTIL_STRING_UTIL_H_
#define PSC_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace psc {

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Splits `text` on `delimiter`; does not trim or drop empty fields.
std::vector<std::string> Split(const std::string& text, char delimiter);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& text);

namespace internal {
inline void StrCatAppend(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrCatAppend(std::ostringstream& out, const T& value,
                  const Rest&... rest) {
  out << value;
  StrCatAppend(out, rest...);
}
}  // namespace internal

/// \brief Concatenates streamable values into a string
/// (`StrCat("n=", 3, " w=", 0.5)`).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  internal::StrCatAppend(out, args...);
  return out.str();
}

}  // namespace psc

#endif  // PSC_UTIL_STRING_UTIL_H_
