#ifndef PSC_TABLEAU_DATABASE_TEMPLATE_H_
#define PSC_TABLEAU_DATABASE_TEMPLATE_H_

#include <string>
#include <vector>

#include "psc/tableau/constraint.h"
#include "psc/tableau/tableau.h"

namespace psc {

/// \brief A database template 𝒯 = ⟨T₁,…,T_m, C⟩ (Section 4): tableaux plus
/// constraints, compactly representing the set of databases
///
///   rep(𝒯) = { D : some valuation embeds some Tᵢ into D, and D satisfies
///              every constraint in C }.
class DatabaseTemplate {
 public:
  DatabaseTemplate() = default;
  DatabaseTemplate(std::vector<Tableau> tableaux,
                   std::vector<Constraint> constraints)
      : tableaux_(std::move(tableaux)), constraints_(std::move(constraints)) {}

  const std::vector<Tableau>& tableaux() const { return tableaux_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// \brief D ∈ rep(𝒯)? — the membership test of Definition 4.1.
  bool RepContains(const Database& db) const;

  /// \brief Freezes tableau `index` into a concrete database by replacing
  /// each variable with a distinct fresh string constant
  /// ("⊥0", "⊥1", … offset by `fresh_offset`) — the canonical database of
  /// classical tableau theory.
  Database FreezeTableau(size_t index, size_t fresh_offset = 0) const;

  std::string ToString() const;

 private:
  std::vector<Tableau> tableaux_;
  std::vector<Constraint> constraints_;
};

}  // namespace psc

#endif  // PSC_TABLEAU_DATABASE_TEMPLATE_H_
