#ifndef PSC_TABLEAU_TEMPLATE_BUILDER_H_
#define PSC_TABLEAU_TEMPLATE_BUILDER_H_

#include <functional>
#include <optional>
#include <vector>

#include "psc/limits/budget.h"
#include "psc/source/source_collection.h"
#include "psc/tableau/database_template.h"
#include "psc/util/bigint.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A combination U = (u₁,…,uₙ): per source, the subset uᵢ ⊆ vᵢ of
/// extension tuples designated as sound (uᵢ plays the role of φᵢ(D) ∩ vᵢ).
using Combination = std::vector<Relation>;

/// \brief Builds the Theorem 4.1 database templates 𝒯^U(S).
///
/// For a fixed allowable combination U (|uᵢ| ≥ ⌈sᵢ|vᵢ|⌉):
///
///  * the tableau T^U(S) contains, for every source i and fact u ∈ uᵢ, the
///    body of φᵢ instantiated by the head unifier of u, with existential
///    variables renamed apart per (i, u) — forcing uᵢ ⊆ φᵢ(D);
///  * for every source with cᵢ > 0, a constraint (V^U(Sᵢ), Θ^U(Sᵢ)) with
///    mᵢ+1 = ⌊|uᵢ|/cᵢ⌋+1 fresh copies of the body whose substitutions
///    θ_{p,r} force two copies to agree — capping |φᵢ(D)| ≤ mᵢ.
///
/// Theorem 4.1: poss(S) = ⋃_{U allowable} rep(𝒯^U(S)).
///
/// Built-in atoms cannot be expressed inside tableaux; the builder supports
/// views whose built-ins become ground under the head unifier (this always
/// holds for identity views and for views with no built-ins). A ground
/// built-in that evaluates to false makes rep(𝒯^U) empty — reported as
/// std::nullopt. Views with non-ground built-ins are Unimplemented, as the
/// paper's construction (Section 4) is stated for pure conjunctive views.
class TemplateBuilder {
 public:
  /// `collection` must outlive the builder.
  explicit TemplateBuilder(const SourceCollection* collection);

  /// \brief Builds 𝒯^U(S); nullopt when the combination is unrealizable
  /// (rep(𝒯^U) = ∅ because a designated fact contradicts its view).
  ///
  /// Errors: combination size/content invalid; |uᵢ| below the soundness
  /// threshold; non-ground built-ins; a completeness cap needing more than
  /// `max_copies` body copies.
  Result<std::optional<DatabaseTemplate>> Build(
      const Combination& combination, size_t max_copies = 256) const;

  /// \brief Builds only the tableau T^U(S) (no cardinality constraints).
  ///
  /// Useful to consistency search: a candidate database frozen from the
  /// tableau is verified directly against poss(S), so the constraints —
  /// which are what makes built-ins inexpressible — are not needed.
  /// nullopt when the combination is unrealizable.
  Result<std::optional<Tableau>> BuildTableau(
      const Combination& combination) const;

  /// \brief Enumerates every allowable combination
  /// 𝒰 = { (u₁,…,uₙ) : uᵢ ⊆ vᵢ, |uᵢ| ≥ ⌈sᵢ|vᵢ|⌉ }.
  /// `fn` returns false to stop; result is false iff stopped early.
  /// Exponential in Σ|vᵢ| — this is the Theorem 4.1 union, not a fast path.
  /// A tripped builder budget (see SetBudget) fails the enumeration with
  /// `budget.ToStatus()`; one node is charged per combination produced.
  Result<bool> ForEachAllowableCombination(
      const std::function<bool(const Combination&)>& fn) const;

  /// \brief Installs a cooperative deadline / node budget observed by
  /// ForEachAllowableCombination (and through it FamilyContains). Callers
  /// that meter combinations themselves — e.g. the consistency search's
  /// own callbacks — should leave the builder budget unset to avoid
  /// charging each combination twice.
  void SetBudget(limits::Budget budget) { budget_ = std::move(budget); }

  /// |𝒰| = ∏ᵢ Σ_{j ≥ tᵢ} C(kᵢ, j).
  BigInt CountAllowableCombinations() const;

  /// \brief U ∈ 𝒰? — right shape, uᵢ ⊆ vᵢ, and |uᵢ| ≥ ⌈sᵢ|vᵢ|⌉ for all i.
  /// Cheap (no tableau built). Unlike Build, violations return false
  /// rather than an error: the delta engine uses this to test whether a
  /// combination recorded before a mutation is still allowable after the
  /// extensions (and thus the tᵢ thresholds) moved.
  bool IsAllowable(const Combination& combination) const;

  /// \brief Membership in ⋃_U rep(𝒯^U(S)) — the right-hand side of
  /// Theorem 4.1, decided by enumeration over 𝒰.
  Result<bool> FamilyContains(const Database& db) const;

 private:
  const SourceCollection* collection_;
  limits::Budget budget_;
};

}  // namespace psc

#endif  // PSC_TABLEAU_TEMPLATE_BUILDER_H_
