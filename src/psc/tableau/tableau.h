#ifndef PSC_TABLEAU_TABLEAU_H_
#define PSC_TABLEAU_TABLEAU_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "psc/relational/atom.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"

namespace psc {

/// \brief A tableau over a global schema: a finite set of atoms that may
/// contain variables (Section 4 of the paper).
using Tableau = std::set<Atom>;

/// \brief A substitution {x₁/e₁, …, x_p/e_p}: a finite map from variable
/// names to terms (constants or variables).
using Substitution = std::map<std::string, Term>;

/// Applies a substitution to a term (identity on constants and on
/// variables outside the substitution's domain).
Term ApplySubstitution(const Term& term, const Substitution& subst);

/// Applies a substitution to every term of an atom.
Atom ApplySubstitution(const Atom& atom, const Substitution& subst);

/// Applies a substitution to every atom of a tableau.
Tableau ApplySubstitution(const Tableau& tableau, const Substitution& subst);

/// All variable names occurring in a tableau.
std::set<std::string> TableauVariables(const Tableau& tableau);

/// \brief Enumerates every valuation σ embedding `tableau` into `db`
/// (σ(tableau) ⊆ D). `fn` returns false to stop early; the return value is
/// false iff stopped early.
///
/// The embedding search is a backtracking join, the same procedure that
/// evaluates conjunctive-query bodies.
bool ForEachEmbedding(const Tableau& tableau, const Database& db,
                      const std::function<bool(const Valuation&)>& fn);

/// True iff at least one embedding of `tableau` into `db` exists.
bool HasEmbedding(const Tableau& tableau, const Database& db);

/// "{R(a, x), S(b, c)}" rendering in canonical atom order.
std::string TableauToString(const Tableau& tableau);

/// \brief Freezes a tableau into a concrete database by replacing every
/// variable with a distinct fresh string constant ("⊥0", "⊥1", …, offset
/// by `fresh_offset`) — the canonical database of tableau theory.
Database FreezeTableau(const Tableau& tableau, size_t fresh_offset = 0);

/// \brief Freezes after a *ground-merge* pass: while some atom with
/// variables unifies with a ground atom of the same tableau, adopt that
/// unifier (first match), grounding its variables; remaining variables get
/// fresh constants.
///
/// Heuristic: merging can be necessary when another source's completeness
/// claim forbids invented constants (an exact station catalog, say), while
/// pure freezing is necessary when merging would conflate distinct
/// existential witnesses. Consistency search tries both candidates and
/// verifies each directly, so the choice is never trusted blindly.
Database FreezeTableauWithGroundMerge(const Tableau& tableau);

}  // namespace psc

#endif  // PSC_TABLEAU_TABLEAU_H_
