#ifndef PSC_TABLEAU_CONSTRAINT_H_
#define PSC_TABLEAU_CONSTRAINT_H_

#include <string>
#include <vector>

#include "psc/tableau/tableau.h"

namespace psc {

/// \brief A constraint (U, Θ) over a schema (Section 4): a tableau U plus a
/// set of substitutions Θ.
///
/// The constraint is satisfied by a database D when every valuation σ that
/// embeds U into D is *compatible* with some θ ∈ Θ, where compatibility
/// means σ(x) = σ(e) for every binding x/e of θ. In the Theorem 4.1
/// construction these encode the cardinality caps |φᵢ(D)| ≤ mᵢ: U lists
/// mᵢ+1 copies of the view body and each θ_{p,r} forces two copies to
/// produce the same head tuple.
struct Constraint {
  Tableau pattern;                       ///< U
  std::vector<Substitution> options;     ///< Θ
  std::string label;                     ///< diagnostics ("S1:|φ(D)|<=3")

  /// σ(x) = σ(e) for every binding of `theta` (σ treated as identity on
  /// constants; variables of U are all bound in an embedding).
  static bool Compatible(const Valuation& sigma, const Substitution& theta);

  /// True iff `db` satisfies this constraint.
  bool SatisfiedBy(const Database& db) const;

  /// "(U, {θ₁, …})" rendering.
  std::string ToString() const;
};

/// Renders one substitution as "{x/y, z/3}".
std::string SubstitutionToString(const Substitution& subst);

}  // namespace psc

#endif  // PSC_TABLEAU_CONSTRAINT_H_
