#include "psc/tableau/constraint.h"

#include "psc/util/string_util.h"

namespace psc {

bool Constraint::Compatible(const Valuation& sigma,
                            const Substitution& theta) {
  for (const auto& [var, term] : theta) {
    auto var_it = sigma.find(var);
    if (var_it == sigma.end()) return false;  // x unbound: cannot certify
    Value rhs;
    if (term.is_constant()) {
      rhs = term.constant();
    } else {
      auto term_it = sigma.find(term.var_name());
      if (term_it == sigma.end()) return false;
      rhs = term_it->second;
    }
    if (var_it->second != rhs) return false;
  }
  return true;
}

bool Constraint::SatisfiedBy(const Database& db) const {
  // Every embedding of the pattern must be compatible with some option.
  return ForEachEmbedding(pattern, db, [&](const Valuation& sigma) {
    for (const Substitution& theta : options) {
      if (Compatible(sigma, theta)) return true;  // keep checking others
    }
    return false;  // an incompatible embedding: constraint violated
  });
}

std::string SubstitutionToString(const Substitution& subst) {
  std::vector<std::string> parts;
  parts.reserve(subst.size());
  for (const auto& [var, term] : subst) {
    parts.push_back(StrCat(var, "/", term.ToString()));
  }
  return StrCat("{", Join(parts, ", "), "}");
}

std::string Constraint::ToString() const {
  std::vector<std::string> thetas;
  thetas.reserve(options.size());
  for (const Substitution& theta : options) {
    thetas.push_back(SubstitutionToString(theta));
  }
  std::string out = StrCat("(", TableauToString(pattern), ", {",
                           Join(thetas, ", "), "})");
  if (!label.empty()) out += StrCat("  [", label, "]");
  return out;
}

}  // namespace psc
