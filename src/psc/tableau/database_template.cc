#include "psc/tableau/database_template.h"

#include "psc/util/status.h"
#include "psc/util/string_util.h"

namespace psc {

bool DatabaseTemplate::RepContains(const Database& db) const {
  bool embedded = tableaux_.empty();
  for (const Tableau& tableau : tableaux_) {
    if (HasEmbedding(tableau, db)) {
      embedded = true;
      break;
    }
  }
  if (!embedded) return false;
  for (const Constraint& constraint : constraints_) {
    if (!constraint.SatisfiedBy(db)) return false;
  }
  return true;
}

Database DatabaseTemplate::FreezeTableau(size_t index,
                                         size_t fresh_offset) const {
  PSC_CHECK_MSG(index < tableaux_.size(), "FreezeTableau: index out of range");
  return ::psc::FreezeTableau(tableaux_[index], fresh_offset);
}

std::string DatabaseTemplate::ToString() const {
  std::vector<std::string> lines;
  for (size_t i = 0; i < tableaux_.size(); ++i) {
    lines.push_back(StrCat("T", i + 1, " = ", TableauToString(tableaux_[i])));
  }
  for (const Constraint& constraint : constraints_) {
    lines.push_back(StrCat("C: ", constraint.ToString()));
  }
  return Join(lines, "\n");
}

}  // namespace psc
