#include "psc/tableau/tableau.h"

#include <optional>

#include "psc/obs/metrics.h"
#include "psc/util/string_util.h"

namespace psc {

Term ApplySubstitution(const Term& term, const Substitution& subst) {
  if (term.is_constant()) return term;
  auto it = subst.find(term.var_name());
  return it == subst.end() ? term : it->second;
}

Atom ApplySubstitution(const Atom& atom, const Substitution& subst) {
  std::vector<Term> terms;
  terms.reserve(atom.arity());
  for (const Term& term : atom.terms()) {
    terms.push_back(ApplySubstitution(term, subst));
  }
  return Atom(atom.predicate(), std::move(terms));
}

Tableau ApplySubstitution(const Tableau& tableau, const Substitution& subst) {
  Tableau result;
  for (const Atom& atom : tableau) {
    result.insert(ApplySubstitution(atom, subst));
  }
  return result;
}

std::set<std::string> TableauVariables(const Tableau& tableau) {
  std::set<std::string> vars;
  for (const Atom& atom : tableau) {
    for (const std::string& var : atom.Variables()) vars.insert(var);
  }
  return vars;
}

namespace {

bool EmbedFrom(const std::vector<Atom>& atoms, size_t index, Valuation& sigma,
               const Database& db,
               const std::function<bool(const Valuation&)>& fn) {
  if (index == atoms.size()) return fn(sigma);
  const Atom& atom = atoms[index];
  const Relation& relation = db.GetRelation(atom.predicate());
  for (const Tuple& tuple : relation) {
    if (tuple.size() != atom.arity()) continue;
    std::vector<std::string> newly_bound;
    bool ok = true;
    for (size_t pos = 0; pos < tuple.size() && ok; ++pos) {
      const Term& term = atom.terms()[pos];
      if (term.is_constant()) {
        ok = term.constant() == tuple[pos];
        continue;
      }
      auto [it, inserted] = sigma.emplace(term.var_name(), tuple[pos]);
      if (inserted) {
        newly_bound.push_back(term.var_name());
      } else {
        ok = it->second == tuple[pos];
      }
    }
    if (ok && !EmbedFrom(atoms, index + 1, sigma, db, fn)) {
      for (const std::string& name : newly_bound) sigma.erase(name);
      return false;
    }
    for (const std::string& name : newly_bound) sigma.erase(name);
  }
  return true;
}

}  // namespace

bool ForEachEmbedding(const Tableau& tableau, const Database& db,
                      const std::function<bool(const Valuation&)>& fn) {
  PSC_OBS_COUNTER_INC("tableau.embedding_searches");
  const std::vector<Atom> atoms(tableau.begin(), tableau.end());
  Valuation sigma;
  return EmbedFrom(atoms, 0, sigma, db, fn);
}

bool HasEmbedding(const Tableau& tableau, const Database& db) {
  return !ForEachEmbedding(tableau, db,
                           [](const Valuation&) { return false; });
}

Database FreezeTableau(const Tableau& tableau, size_t fresh_offset) {
  PSC_OBS_COUNTER_INC("tableau.freezes");
  Substitution freeze;
  size_t next = fresh_offset;
  for (const std::string& var : TableauVariables(tableau)) {
    freeze[var] = Term::ConstStr(StrCat("\xE2\x8A\xA5", next++));  // "⊥n"
  }
  Database db;
  for (const Atom& atom : ApplySubstitution(tableau, freeze)) {
    Tuple tuple;
    tuple.reserve(atom.arity());
    for (const Term& term : atom.terms()) {
      PSC_CHECK_MSG(term.is_constant(), "frozen atom still has a variable");
      tuple.push_back(term.constant());
    }
    db.AddFact(atom.predicate(), std::move(tuple));
  }
  return db;
}

namespace {

/// Unifier mapping the variables of `pattern` onto the constants of
/// `ground`, or nullopt when they clash.
std::optional<Substitution> UnifyOntoGround(const Atom& pattern,
                                            const Atom& ground) {
  if (pattern.predicate() != ground.predicate() ||
      pattern.arity() != ground.arity()) {
    return std::nullopt;
  }
  Substitution unifier;
  for (size_t pos = 0; pos < pattern.arity(); ++pos) {
    const Term& term = pattern.terms()[pos];
    const Term& target = ground.terms()[pos];
    if (term.is_constant()) {
      if (term != target) return std::nullopt;
      continue;
    }
    auto [it, inserted] = unifier.emplace(term.var_name(), target);
    if (!inserted && it->second != target) return std::nullopt;
  }
  return unifier;
}

}  // namespace

Database FreezeTableauWithGroundMerge(const Tableau& tableau) {
  Tableau current = tableau;
  bool changed = true;
  // Each merge grounds at least one variable, so this terminates.
  while (changed) {
    changed = false;
    for (const Atom& atom : current) {
      if (atom.IsGround()) continue;
      for (const Atom& ground : current) {
        if (!ground.IsGround()) continue;
        const std::optional<Substitution> unifier =
            UnifyOntoGround(atom, ground);
        if (unifier.has_value()) {
          current = ApplySubstitution(current, *unifier);
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }
  return FreezeTableau(current);
}

std::string TableauToString(const Tableau& tableau) {
  std::vector<std::string> parts;
  parts.reserve(tableau.size());
  for (const Atom& atom : tableau) parts.push_back(atom.ToString());
  return StrCat("{", Join(parts, ", "), "}");
}

}  // namespace psc
