#include "psc/tableau/template_builder.h"

#include "psc/obs/metrics.h"
#include "psc/relational/builtin.h"
#include "psc/util/combinatorics.h"
#include "psc/util/string_util.h"

namespace psc {

TemplateBuilder::TemplateBuilder(const SourceCollection* collection)
    : collection_(collection) {
  PSC_CHECK(collection_ != nullptr);
}

namespace {

/// Converts a valuation (var → Value) into a substitution (var → Term).
Substitution ToSubstitution(const Valuation& valuation) {
  Substitution subst;
  for (const auto& [var, value] : valuation) {
    subst[var] = Term::Const(value);
  }
  return subst;
}

/// Evaluates the view's built-ins under `subst`.
/// Returns false (=> rep empty) when a ground built-in fails; Unimplemented
/// when a built-in stays non-ground.
Result<bool> CheckGroundBuiltins(const ConjunctiveQuery& view,
                                 const Substitution& subst) {
  for (const Atom& builtin : view.builtin_body()) {
    const Atom grounded = ApplySubstitution(builtin, subst);
    std::vector<Value> args;
    args.reserve(grounded.arity());
    for (const Term& term : grounded.terms()) {
      if (term.is_variable()) {
        return Status::Unimplemented(
            StrCat("built-in ", builtin.ToString(), " of view ",
                   view.head().ToString(),
                   " is not grounded by the head unifier; the Section 4 "
                   "template construction covers pure conjunctive views"));
      }
      args.push_back(term.constant());
    }
    PSC_ASSIGN_OR_RETURN(const bool holds,
                         EvalBuiltin(grounded.predicate(), args));
    if (!holds) return false;
  }
  return true;
}

}  // namespace

bool TemplateBuilder::IsAllowable(const Combination& combination) const {
  if (combination.size() != collection_->size()) return false;
  for (size_t i = 0; i < collection_->size(); ++i) {
    const SourceDescriptor& source = collection_->source(i);
    const Relation& u_i = combination[i];
    if (static_cast<int64_t>(u_i.size()) < source.MinSoundFacts()) return false;
    for (const Tuple& tuple : u_i) {
      if (source.extension().count(tuple) == 0) return false;
    }
  }
  return true;
}

Result<std::optional<Tableau>> TemplateBuilder::BuildTableau(
    const Combination& combination) const {
  if (combination.size() != collection_->size()) {
    return Status::InvalidArgument(
        StrCat("combination has ", combination.size(), " subsets, expected ",
               collection_->size()));
  }
  PSC_OBS_COUNTER_INC("tableau.templates_built");
  Tableau tableau;
  for (size_t i = 0; i < collection_->size(); ++i) {
    const SourceDescriptor& source = collection_->source(i);
    const ConjunctiveQuery& view = source.view();
    const Relation& u_i = combination[i];

    // Validate uᵢ ⊆ vᵢ and the soundness threshold |uᵢ| ≥ ⌈sᵢ|vᵢ|⌉.
    for (const Tuple& tuple : u_i) {
      if (source.extension().count(tuple) == 0) {
        return Status::InvalidArgument(
            StrCat("subset tuple ", TupleToString(tuple),
                   " is not in the extension of source '", source.name(),
                   "'"));
      }
    }
    if (static_cast<int64_t>(u_i.size()) < source.MinSoundFacts()) {
      return Status::InvalidArgument(
          StrCat("subset for source '", source.name(), "' has ", u_i.size(),
                 " tuples, below the soundness threshold ",
                 source.MinSoundFacts()));
    }

    // T^U(Sᵢ): one instantiated body per designated fact.
    size_t fact_index = 0;
    for (const Tuple& u : u_i) {
      PSC_ASSIGN_OR_RETURN(std::optional<Valuation> unifier,
                           view.UnifyHead(u));
      if (!unifier.has_value()) {
        return std::optional<Tableau>();  // u ∉ φ(D) for any D
      }
      Substitution subst = ToSubstitution(*unifier);
      // Existential variables renamed apart per (source, fact).
      for (const std::string& var : view.Variables()) {
        if (subst.count(var) == 0) {
          subst[var] = Term::Var(StrCat("$e_", i, "_", fact_index, "_", var));
        }
      }
      PSC_ASSIGN_OR_RETURN(const bool builtins_hold,
                           CheckGroundBuiltins(view, subst));
      if (!builtins_hold) return std::optional<Tableau>();
      for (const Atom& atom : view.relational_body()) {
        tableau.insert(ApplySubstitution(atom, subst));
      }
      ++fact_index;
    }
  }
  return std::optional<Tableau>(std::move(tableau));
}

Result<std::optional<DatabaseTemplate>> TemplateBuilder::Build(
    const Combination& combination, size_t max_copies) const {
  PSC_ASSIGN_OR_RETURN(std::optional<Tableau> tableau,
                       BuildTableau(combination));
  if (!tableau.has_value()) return std::optional<DatabaseTemplate>();

  std::vector<Constraint> constraints;
  for (size_t i = 0; i < collection_->size(); ++i) {
    const SourceDescriptor& source = collection_->source(i);
    const ConjunctiveQuery& view = source.view();
    const Relation& u_i = combination[i];

    // C^U(Sᵢ): cardinality cap |φᵢ(D)| ≤ mᵢ = ⌊|uᵢ|/cᵢ⌋, only for cᵢ > 0.
    const Rational& c_i = source.completeness_bound();
    if (c_i.IsZero()) continue;
    if (!view.builtin_body().empty()) {
      return Status::Unimplemented(
          StrCat("view of source '", source.name(),
                 "' has built-ins; the completeness cardinality constraint "
                 "of Section 4 is defined for pure conjunctive views"));
    }
    const int64_t m_i = c_i.DivFloor(static_cast<int64_t>(u_i.size()));
    if (m_i + 1 > static_cast<int64_t>(max_copies)) {
      return Status::ResourceExhausted(
          StrCat("completeness constraint for source '", source.name(),
                 "' needs ", m_i + 1, " body copies, above the limit of ",
                 max_copies));
    }

    Constraint constraint;
    constraint.label = StrCat(source.name(), ":|view(D)|<=", m_i);
    // Per copy s, fresh variables for head variables ($h) and existential
    // variables ($c).
    std::vector<Substitution> copy_substs;
    for (int64_t s = 0; s <= m_i; ++s) {
      Substitution subst;
      const std::set<std::string> head_vars = view.head().Variables();
      for (const std::string& var : view.Variables()) {
        const char* kind = head_vars.count(var) > 0 ? "$h_" : "$c_";
        subst[var] = Term::Var(StrCat(kind, i, "_", s, "_", var));
      }
      for (const Atom& atom : view.relational_body()) {
        constraint.pattern.insert(ApplySubstitution(atom, subst));
      }
      copy_substs.push_back(std::move(subst));
    }
    // θ_{p,r}: copy p's head variables equal copy r's.
    for (int64_t p = 0; p <= m_i; ++p) {
      for (int64_t r = 0; r <= m_i; ++r) {
        if (p == r) continue;
        Substitution theta;
        for (const std::string& var : view.head().Variables()) {
          const Term& from = copy_substs[static_cast<size_t>(p)].at(var);
          const Term& to = copy_substs[static_cast<size_t>(r)].at(var);
          theta[from.var_name()] = to;
        }
        constraint.options.push_back(std::move(theta));
      }
    }
    constraints.push_back(std::move(constraint));
    PSC_OBS_COUNTER_INC("tableau.constraints_emitted");
  }

  return std::optional<DatabaseTemplate>(
      DatabaseTemplate({std::move(*tableau)}, std::move(constraints)));
}

Result<bool> TemplateBuilder::ForEachAllowableCombination(
    const std::function<bool(const Combination&)>& fn) const {
  const size_t n = collection_->size();
  // Materialize extensions as vectors for subset indexing.
  std::vector<std::vector<Tuple>> extensions(n);
  for (size_t i = 0; i < n; ++i) {
    const Relation& v_i = collection_->source(i).extension();
    extensions[i].assign(v_i.begin(), v_i.end());
  }

  // Subsets are generated directly (never scanned out of a 2^k mask
  // space), largest first: the full extension uᵢ = vᵢ is the most likely
  // consistency witness, so callers that stop early see it immediately.
  Combination combination(n);
  bool budget_tripped = false;
  std::function<bool(size_t)> recurse = [&](size_t i) -> bool {
    if (i == n) {
      if (!budget_.Charge()) {
        budget_tripped = true;
        return false;
      }
      PSC_OBS_COUNTER_INC("tableau.combinations_enumerated");
      return fn(combination);
    }
    const int64_t size = static_cast<int64_t>(extensions[i].size());
    const int64_t min_size = collection_->source(i).MinSoundFacts();
    for (int64_t subset_size = size; subset_size >= min_size;
         --subset_size) {
      const bool keep_going = ForEachSubsetOfSize(
          size, subset_size, [&](const std::vector<int64_t>& picks) {
            combination[i].clear();
            for (const int64_t pick : picks) {
              combination[i].insert(extensions[i][static_cast<size_t>(pick)]);
            }
            return recurse(i + 1);
          });
      if (!keep_going) return false;
    }
    return true;
  };
  const bool completed = recurse(0);
  if (budget_tripped) return budget_.ToStatus();
  return completed;
}

BigInt TemplateBuilder::CountAllowableCombinations() const {
  BinomialTable binomials;
  BigInt total(1);
  for (const SourceDescriptor& source : collection_->sources()) {
    const int64_t k = static_cast<int64_t>(source.extension_size());
    BigInt per_source;
    for (int64_t j = source.MinSoundFacts(); j <= k; ++j) {
      per_source += binomials.Choose(k, j);
    }
    total = total * per_source;
  }
  return total;
}

Result<bool> TemplateBuilder::FamilyContains(const Database& db) const {
  bool found = false;
  Status build_error;
  PSC_ASSIGN_OR_RETURN(
      const bool completed,
      ForEachAllowableCombination([&](const Combination& combination) {
        auto built = Build(combination);
        if (!built.ok()) {
          build_error = built.status();
          return false;
        }
        if (built->has_value() && (*built)->RepContains(db)) {
          found = true;
          return false;
        }
        return true;
      }));
  if (!completed && !build_error.ok()) return build_error;
  return found;
}

}  // namespace psc
