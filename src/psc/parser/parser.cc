#include "psc/parser/parser.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "psc/parser/lexer.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// Recursive-descent parser over a token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (Match(kind)) return Status::OK();
    return Error(StrCat("expected ", what, ", found ", Peek().Describe()));
  }

  Status Error(const std::string& message) const {
    const Token& token = Peek();
    return Status::ParseError(
        StrCat(message, " at ", token.line, ":", token.column));
  }

  /// True iff the next token is the contextual keyword `word`.
  bool CheckKeyword(const std::string& word) const {
    return Check(TokenKind::kIdentifier) && Peek().text == word;
  }

  Result<Term> ParseTerm() {
    if (Check(TokenKind::kInteger)) {
      return Term::ConstInt(Advance().int_value);
    }
    if (Check(TokenKind::kString)) {
      return Term::ConstStr(Advance().text);
    }
    if (Check(TokenKind::kIdentifier)) {
      return Term::Var(Advance().text);
    }
    return Error(StrCat("expected a term, found ", Peek().Describe()));
  }

  Result<Atom> ParseAtom() {
    if (!Check(TokenKind::kIdentifier)) {
      return Error(
          StrCat("expected a predicate name, found ", Peek().Describe()));
    }
    const std::string predicate = Advance().text;
    PSC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<Term> terms;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        PSC_ASSIGN_OR_RETURN(Term term, ParseTerm());
        terms.push_back(std::move(term));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    PSC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return Atom(predicate, std::move(terms));
  }

  Result<ConjunctiveQuery> ParseQuery() {
    PSC_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    PSC_RETURN_NOT_OK(Expect(TokenKind::kArrow, "'<-'"));
    std::vector<Atom> body;
    while (true) {
      PSC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      body.push_back(std::move(atom));
      if (!Match(TokenKind::kComma)) break;
    }
    return ConjunctiveQuery::Create(std::move(head), std::move(body));
  }

  Result<Rational> ParseBound() {
    if (Check(TokenKind::kDecimal)) {
      return Rational::Parse(Advance().text);
    }
    if (Check(TokenKind::kInteger)) {
      const int64_t numerator = Advance().int_value;
      if (Match(TokenKind::kSlash)) {
        if (!Check(TokenKind::kInteger)) {
          return Error(StrCat("expected a denominator, found ",
                              Peek().Describe()));
        }
        const int64_t denominator = Advance().int_value;
        if (denominator == 0) return Error("zero denominator");
        return Rational(numerator, denominator);
      }
      return Rational(numerator);
    }
    return Error(StrCat("expected a bound (integer, decimal, or fraction), "
                        "found ",
                        Peek().Describe()));
  }

  /// Parses one fact of a `facts:` list. Accepts `Pred(1, "x")` (checked
  /// against `head_predicate`) or the bare-tuple shorthand `(1, "x")`.
  Result<Tuple> ParseExtensionFact(const std::string& head_predicate) {
    if (Match(TokenKind::kLParen)) {
      Tuple tuple;
      if (!Check(TokenKind::kRParen)) {
        while (true) {
          PSC_ASSIGN_OR_RETURN(Term term, ParseTerm());
          if (term.is_variable()) {
            return Error(StrCat("variable '", term.var_name(),
                                "' not allowed in a fact"));
          }
          tuple.push_back(term.constant());
          if (!Match(TokenKind::kComma)) break;
        }
      }
      PSC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return tuple;
    }
    PSC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (atom.predicate() != head_predicate) {
      return Error(StrCat("fact predicate '", atom.predicate(),
                          "' does not match view head '", head_predicate,
                          "'"));
    }
    Tuple tuple;
    tuple.reserve(atom.arity());
    for (const Term& term : atom.terms()) {
      if (term.is_variable()) {
        return Error(
            StrCat("variable '", term.var_name(), "' not allowed in a fact"));
      }
      tuple.push_back(term.constant());
    }
    return tuple;
  }

  Result<SourceDescriptor> ParseSourceBlock() {
    if (!CheckKeyword("source")) {
      return Error(StrCat("expected 'source', found ", Peek().Describe()));
    }
    Advance();
    if (!Check(TokenKind::kIdentifier)) {
      return Error(StrCat("expected a source name, found ", Peek().Describe()));
    }
    const std::string name = Advance().text;
    PSC_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "'{'"));

    bool have_view = false;
    bool have_completeness = false;
    bool have_soundness = false;
    ConjunctiveQuery view;
    Rational completeness;
    Rational soundness;
    Relation extension;

    while (!Match(TokenKind::kRBrace)) {
      if (!Check(TokenKind::kIdentifier)) {
        return Error(StrCat("expected a field name or '}', found ",
                            Peek().Describe()));
      }
      const std::string field = Advance().text;
      PSC_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
      if (field == "view") {
        if (have_view) return Error("duplicate 'view' field");
        PSC_ASSIGN_OR_RETURN(view, ParseQuery());
        have_view = true;
      } else if (field == "completeness") {
        if (have_completeness) return Error("duplicate 'completeness' field");
        PSC_ASSIGN_OR_RETURN(completeness, ParseBound());
        have_completeness = true;
      } else if (field == "soundness") {
        if (have_soundness) return Error("duplicate 'soundness' field");
        PSC_ASSIGN_OR_RETURN(soundness, ParseBound());
        have_soundness = true;
      } else if (field == "facts") {
        if (!have_view) {
          return Error("'facts' must come after the 'view' field");
        }
        while (true) {
          PSC_ASSIGN_OR_RETURN(Tuple tuple,
                               ParseExtensionFact(view.head().predicate()));
          extension.insert(std::move(tuple));
          if (!Match(TokenKind::kComma)) break;
        }
      } else {
        return Error(StrCat("unknown field '", field, "'"));
      }
    }
    if (!have_view) return Error(StrCat("source '", name, "' missing 'view'"));
    if (!have_completeness) {
      return Error(StrCat("source '", name, "' missing 'completeness'"));
    }
    if (!have_soundness) {
      return Error(StrCat("source '", name, "' missing 'soundness'"));
    }
    return SourceDescriptor::Create(name, std::move(view),
                                    std::move(extension), completeness,
                                    soundness);
  }

  Result<SourceCollection> ParseCollection() {
    std::vector<SourceDescriptor> sources;
    while (!AtEnd()) {
      PSC_ASSIGN_OR_RETURN(SourceDescriptor source, ParseSourceBlock());
      sources.push_back(std::move(source));
    }
    return SourceCollection::Create(std::move(sources));
  }

  Status ExpectEnd() {
    if (AtEnd()) return Status::OK();
    return Error(StrCat("trailing input: ", Peek().Describe()));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Parser> MakeParser(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens));
}

}  // namespace

Result<Atom> ParseAtom(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Parser parser, MakeParser(text));
  PSC_ASSIGN_OR_RETURN(Atom atom, parser.ParseAtom());
  PSC_RETURN_NOT_OK(parser.ExpectEnd());
  return atom;
}

Result<Fact> ParseFact(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Atom atom, ParseAtom(text));
  Tuple tuple;
  tuple.reserve(atom.arity());
  for (const Term& term : atom.terms()) {
    if (term.is_variable()) {
      return Status::ParseError(
          StrCat("variable '", term.var_name(), "' not allowed in a fact"));
    }
    tuple.push_back(term.constant());
  }
  return Fact(atom.predicate(), std::move(tuple));
}

Result<ConjunctiveQuery> ParseQuery(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Parser parser, MakeParser(text));
  PSC_ASSIGN_OR_RETURN(ConjunctiveQuery query, parser.ParseQuery());
  PSC_RETURN_NOT_OK(parser.ExpectEnd());
  return query;
}

Result<Rational> ParseBound(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Parser parser, MakeParser(text));
  PSC_ASSIGN_OR_RETURN(Rational bound, parser.ParseBound());
  PSC_RETURN_NOT_OK(parser.ExpectEnd());
  return bound;
}

Result<SourceDescriptor> ParseSource(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Parser parser, MakeParser(text));
  PSC_ASSIGN_OR_RETURN(SourceDescriptor source, parser.ParseSourceBlock());
  PSC_RETURN_NOT_OK(parser.ExpectEnd());
  return source;
}

Result<SourceCollection> ParseCollection(const std::string& text) {
  PSC_ASSIGN_OR_RETURN(Parser parser, MakeParser(text));
  return parser.ParseCollection();
}

std::vector<Value> ParseDomainList(const std::string& text) {
  std::vector<Value> domain;
  for (const std::string& raw : Split(text, ',')) {
    const std::string token = Trim(raw);
    if (token.empty()) continue;
    char* end = nullptr;
    errno = 0;
    const long long as_int = std::strtoll(token.c_str(), &end, 10);
    // Out-of-range tokens saturate with errno = ERANGE while still
    // consuming every character; they must fall through to the string
    // branch instead of silently becoming INT64_MAX / INT64_MIN.
    if (errno != ERANGE && end != nullptr && *end == '\0' &&
        end != token.c_str()) {
      domain.push_back(Value(static_cast<int64_t>(as_int)));
    } else {
      domain.push_back(Value(token));
    }
  }
  return domain;
}

}  // namespace psc
