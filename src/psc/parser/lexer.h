#ifndef PSC_PARSER_LEXER_H_
#define PSC_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psc/util/result.h"

namespace psc {

/// \brief Token kinds of the source-description language.
enum class TokenKind {
  kIdentifier,  // Temperature, V1, x, source, view, …
  kInteger,     // 1900, -3
  kDecimal,     // 0.75 (kept as text; parsed into a Rational)
  kString,      // "Canada" (text holds the unescaped payload)
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kSlash,       // rational bounds: 3/4
  kArrow,       // <-
  kEnd,
};

/// \brief One lexed token with its 1-based source position.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // raw or unescaped payload
  int64_t int_value = 0;   // valid when kind == kInteger
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

/// \brief Tokenizes `input`.
///
/// Comments run from '#' or '//' to end of line. Strings support the
/// escapes \" \\ \n \t. Integers may carry a leading '-'. Errors report
/// line:column.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace psc

#endif  // PSC_PARSER_LEXER_H_
