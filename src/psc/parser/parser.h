#ifndef PSC_PARSER_PARSER_H_
#define PSC_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "psc/relational/atom.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/source/source_collection.h"
#include "psc/source/source_descriptor.h"
#include "psc/util/rational.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Text syntax for the paper's objects.
///
/// The paper writes view definitions in conjunctive-query notation; this
/// module gives that notation a concrete grammar:
///
///   atom    := Name '(' term (',' term)* ')'
///   term    := integer | "string" | identifier        (identifier = variable)
///   query   := atom '<-' atom (',' atom)*
///   fact    := ground atom
///   bound   := integer | decimal | integer '/' integer
///   source  := 'source' Name '{'
///                 'view' ':' query
///                 'completeness' ':' bound
///                 'soundness' ':' bound
///                 [ 'facts' ':' fact (',' fact)* ]
///              '}'
///   collection := source*
///
/// Facts inside a `source` block must use the view's head predicate (or the
/// shorthand bare tuple `(1, 2)`), and `#`/`//` start comments.
///
/// Example:
///
///   source S1 {
///     view: V1(s, y, m, v) <- Temperature(s, y, m, v),
///                             Station(s, lat, lon, "Canada"), After(y, 1900)
///     completeness: 0.8
///     soundness: 3/4
///     facts: V1(438432, 1990, 1, 125), V1(438432, 1990, 2, 130)
///   }
///
/// All entry points report errors with 1-based line:column positions.

/// Parses a single (possibly non-ground) atom.
Result<Atom> ParseAtom(const std::string& text);

/// Parses a ground atom into a Fact; errors if any term is a variable.
Result<Fact> ParseFact(const std::string& text);

/// Parses "Head(…) <- b₁(…), …, bₙ(…)" into a validated ConjunctiveQuery.
Result<ConjunctiveQuery> ParseQuery(const std::string& text);

/// Parses "3", "0.75" or "3/4" into a Rational.
Result<Rational> ParseBound(const std::string& text);

/// Parses one `source Name { … }` block.
Result<SourceDescriptor> ParseSource(const std::string& text);

/// Parses a whole collection: a sequence of `source` blocks.
Result<SourceCollection> ParseCollection(const std::string& text);

/// Parses a comma-separated domain list ("1, 2, x") into Values: tokens
/// that read as int64 integers become integer values, everything else —
/// including integers too large for int64, which strtoll would silently
/// saturate — becomes a string value. Empty tokens are dropped.
std::vector<Value> ParseDomainList(const std::string& text);

}  // namespace psc

#endif  // PSC_PARSER_PARSER_H_
