#include "psc/parser/lexer.h"

#include <cctype>

#include "psc/util/string_util.h"

namespace psc {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return StrCat("identifier '", text, "'");
    case TokenKind::kInteger:
      return StrCat("integer ", int_value);
    case TokenKind::kDecimal:
      return StrCat("decimal ", text);
    case TokenKind::kString:
      return StrCat("string \"", text, "\"");
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kArrow:
      return "'<-'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown token";
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(token);
        return tokens;
      }
      const char c = Peek();
      if (c == '(') {
        token.kind = TokenKind::kLParen;
        Advance();
      } else if (c == ')') {
        token.kind = TokenKind::kRParen;
        Advance();
      } else if (c == '{') {
        token.kind = TokenKind::kLBrace;
        Advance();
      } else if (c == '}') {
        token.kind = TokenKind::kRBrace;
        Advance();
      } else if (c == ',') {
        token.kind = TokenKind::kComma;
        Advance();
      } else if (c == ':') {
        token.kind = TokenKind::kColon;
        Advance();
      } else if (c == '<') {
        Advance();
        if (AtEnd() || Peek() != '-') {
          return Error("expected '-' after '<'");
        }
        Advance();
        token.kind = TokenKind::kArrow;
      } else if (c == '"') {
        PSC_RETURN_NOT_OK(LexString(&token));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && HasDigitAfterMinus())) {
        PSC_RETURN_NOT_OK(LexNumber(&token));
      } else if (c == '/') {
        // '//' comments were consumed above, so this is the rational slash.
        token.kind = TokenKind::kSlash;
        Advance();
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdentifier(&token);
      } else {
        return Error(StrCat("unexpected character '", std::string(1, c), "'"));
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool HasDigitAfterMinus() const {
    return std::isdigit(static_cast<unsigned char>(PeekAt(1)));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '/' && PeekAt(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status LexString(Token* token) {
    Advance();  // opening quote
    std::string payload;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      const char c = Peek();
      if (c == '"') {
        Advance();
        token->kind = TokenKind::kString;
        token->text = std::move(payload);
        return Status::OK();
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Error("dangling escape in string literal");
        const char esc = Peek();
        switch (esc) {
          case '"':
            payload += '"';
            break;
          case '\\':
            payload += '\\';
            break;
          case 'n':
            payload += '\n';
            break;
          case 't':
            payload += '\t';
            break;
          default:
            return Error(StrCat("unknown escape '\\", std::string(1, esc),
                                "' in string literal"));
        }
        Advance();
      } else {
        payload += c;
        Advance();
      }
    }
  }

  Status LexNumber(Token* token) {
    std::string digits;
    if (Peek() == '-') {
      digits += '-';
      Advance();
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Peek();
      Advance();
    }
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      digits += '.';
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Peek();
        Advance();
      }
      token->kind = TokenKind::kDecimal;
      token->text = std::move(digits);
      return Status::OK();
    }
    token->kind = TokenKind::kInteger;
    token->text = digits;
    try {
      token->int_value = std::stoll(digits);
    } catch (...) {
      return Error(StrCat("integer literal '", digits, "' out of range"));
    }
    return Status::OK();
  }

  void LexIdentifier(Token* token) {
    std::string name;
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        name += c;
        Advance();
      } else {
        break;
      }
    }
    token->kind = TokenKind::kIdentifier;
    token->text = std::move(name);
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrCat(message, " at ", line_, ":", column_));
  }

  const std::string& input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  Lexer lexer(input);
  return lexer.Run();
}

}  // namespace psc
