#include "psc/counting/confidence.h"

#include "psc/obs/trace.h"
#include "psc/relational/value.h"
#include "psc/util/string_util.h"

namespace psc {

Result<double> ConfidenceTable::ConfidenceOf(const Tuple& tuple) const {
  for (const TupleConfidence& entry : entries) {
    if (entry.tuple == tuple) return entry.confidence;
  }
  return Status::NotFound(
      StrCat("tuple ", TupleToString(tuple), " not in the fact universe"));
}

std::vector<Tuple> ConfidenceTable::CertainFacts() const {
  std::vector<Tuple> certain;
  for (const TupleConfidence& entry : entries) {
    if (entry.numerator == world_count) certain.push_back(entry.tuple);
  }
  return certain;
}

std::vector<Tuple> ConfidenceTable::PossibleFacts() const {
  std::vector<Tuple> possible;
  for (const TupleConfidence& entry : entries) {
    if (!entry.numerator.IsZero()) possible.push_back(entry.tuple);
  }
  return possible;
}

Result<ConfidenceTable> ComputeBaseFactConfidences(
    const IdentityInstance& instance, uint64_t max_shapes,
    exec::ThreadPool* pool, const limits::Budget& budget) {
  PSC_OBS_SPAN("counting.base_confidences");
  BinomialTable binomials;
  SignatureCounter counter(&instance, &binomials);
  PSC_ASSIGN_OR_RETURN(const CountingOutcome outcome,
                       counter.Count(max_shapes, pool, budget));
  if (outcome.world_count.IsZero()) {
    return Status::Inconsistent(
        "poss(S) is empty: tuple confidence is undefined for inconsistent "
        "source collections");
  }
  ConfidenceTable table;
  table.world_count = outcome.world_count;
  table.entries.reserve(instance.universe().size());
  for (size_t idx = 0; idx < instance.universe().size(); ++idx) {
    const Tuple& tuple = instance.universe()[idx];
    PSC_ASSIGN_OR_RETURN(const size_t group, instance.GroupIndexOf(tuple));
    TupleConfidence entry;
    entry.tuple = tuple;
    entry.numerator = outcome.worlds_containing[group];
    entry.confidence =
        BigInt::RatioToDouble(entry.numerator, table.world_count);
    table.entries.push_back(std::move(entry));
  }
  return table;
}

}  // namespace psc
