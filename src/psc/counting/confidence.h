#ifndef PSC_COUNTING_CONFIDENCE_H_
#define PSC_COUNTING_CONFIDENCE_H_

#include <vector>

#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/limits/budget.h"
#include "psc/util/bigint.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Exact confidence of one base fact:
/// confidence(t_p) = Pr(t_p ∈ D | D ∈ poss(S)) = numerator / world_count.
struct TupleConfidence {
  Tuple tuple;
  /// N_sol(Γ[x_p/1]) — worlds containing the tuple.
  BigInt numerator;
  /// numerator / world_count as a double, for display.
  double confidence = 0.0;
};

/// \brief Exact confidences for every tuple in an instance's universe.
struct ConfidenceTable {
  /// N_sol(Γ) = |poss(S)|. Zero iff the collection is inconsistent.
  BigInt world_count;
  /// One entry per universe tuple, in universe order.
  std::vector<TupleConfidence> entries;

  /// Exact confidence of `tuple`; NotFound for tuples outside the universe.
  Result<double> ConfidenceOf(const Tuple& tuple) const;

  /// Tuples with confidence exactly 1 — the certain base facts.
  std::vector<Tuple> CertainFacts() const;

  /// Tuples with confidence > 0 — the possible base facts.
  std::vector<Tuple> PossibleFacts() const;
};

/// \brief Computes the Section 5.1 confidence table for an identity-view
/// instance using the signature counter.
///
/// Fails with Inconsistent when poss(S) = ∅ (the paper's confidence ratio
/// is only defined for consistent collections).
///
/// With a multi-worker `pool` the underlying count is sharded across
/// workers; the resulting table is bit-identical for any worker count.
/// A tripped cooperative `budget` fails with `budget.ToStatus()`.
Result<ConfidenceTable> ComputeBaseFactConfidences(
    const IdentityInstance& instance,
    uint64_t max_shapes = uint64_t{1} << 26, exec::ThreadPool* pool = nullptr,
    const limits::Budget& budget = limits::Budget());

}  // namespace psc

#endif  // PSC_COUNTING_CONFIDENCE_H_
