#include "psc/counting/world_sampler.h"

#include <algorithm>

#include "psc/obs/metrics.h"
#include "psc/util/combinatorics.h"

namespace psc {

Result<WorldSampler> WorldSampler::Create(const IdentityInstance* instance,
                                          uint64_t max_shapes) {
  PSC_CHECK(instance != nullptr);
  BinomialTable binomials;
  SignatureCounter counter(instance, &binomials);
  PSC_ASSIGN_OR_RETURN(std::vector<WorldShape> shapes,
                       counter.FeasibleShapes(max_shapes));
  std::vector<BigInt> cumulative;
  cumulative.reserve(shapes.size());
  BigInt total;
  for (const WorldShape& shape : shapes) {
    total += shape.weight;
    cumulative.push_back(total);
  }
  if (total.IsZero()) {
    return Status::Inconsistent(
        "poss(S) is empty: cannot sample possible worlds");
  }
  return WorldSampler(instance, std::move(shapes), std::move(cumulative),
                      std::move(total));
}

Database WorldSampler::Sample(Rng* rng) const {
  PSC_CHECK(rng != nullptr);
  PSC_OBS_COUNTER_INC("counting.sampler_draws");
  const BigInt target = BigInt::RandomBelow(total_, rng->engine());
  // First shape whose cumulative weight exceeds `target`.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                   target);
  PSC_CHECK(it != cumulative_.end());
  const WorldShape& shape =
      shapes_[static_cast<size_t>(it - cumulative_.begin())];

  Database world;
  const auto& groups = instance_->groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    const int64_t k = shape.counts[g];
    if (k == 0) continue;
    const std::vector<int64_t> picks =
        rng->SampleWithoutReplacement(groups[g].size, k);
    for (const int64_t pick : picks) {
      const size_t member = groups[g].members[static_cast<size_t>(pick)];
      world.AddFact(instance_->relation(), instance_->universe()[member]);
    }
  }
  return world;
}

}  // namespace psc
