#include "psc/counting/linear_system.h"

#include "psc/util/string_util.h"

namespace psc {

Result<LinearSystem> LinearSystem::FromIdentityInstance(
    const IdentityInstance& instance) {
  LinearSystem system;
  const size_t n_vars = instance.universe().size();
  system.num_variables_ = n_vars;

  // membership[i][j]: is universe tuple j in source i's extension?
  const size_t n_sources = instance.num_sources();
  std::vector<std::vector<bool>> membership(
      n_sources, std::vector<bool>(n_vars, false));
  for (const IdentityInstance::Group& group : instance.groups()) {
    for (size_t i = 0; i < n_sources; ++i) {
      if ((group.signature & (uint64_t{1} << i)) == 0) continue;
      for (const size_t j : group.members) membership[i][j] = true;
    }
  }

  for (size_t i = 0; i < n_sources; ++i) {
    const IdentityInstance::SourceConstraint& constraint =
        instance.constraints()[i];
    LinearInequality completeness;
    completeness.coefficients.resize(n_vars);
    completeness.rhs = 0;
    completeness.label = StrCat(constraint.name, ":completeness>=",
                                constraint.completeness.ToString());
    const int64_t num = constraint.completeness.numerator();
    const int64_t den = constraint.completeness.denominator();
    LinearInequality soundness;
    soundness.coefficients.resize(n_vars);
    soundness.rhs = constraint.min_sound;
    soundness.label = StrCat(constraint.name, ":soundness>=",
                             constraint.soundness.ToString());
    for (size_t j = 0; j < n_vars; ++j) {
      if (membership[i][j]) {
        completeness.coefficients[j] = den - num;
        soundness.coefficients[j] = 1;
      } else {
        completeness.coefficients[j] = -num;
        soundness.coefficients[j] = 0;
      }
    }
    system.rows_.push_back(std::move(completeness));
    system.rows_.push_back(std::move(soundness));
  }
  return system;
}

bool LinearSystem::IsSatisfiedBy(uint64_t mask) const {
  for (const LinearInequality& row : rows_) {
    int64_t lhs = 0;
    for (size_t j = 0; j < row.coefficients.size(); ++j) {
      if ((mask >> j) & 1) lhs += row.coefficients[j];
    }
    if (lhs < row.rhs) return false;
  }
  return true;
}

Result<BigInt> LinearSystem::CountSolutionsBruteForce(size_t max_vars) const {
  if (num_variables_ > max_vars) {
    return Status::ResourceExhausted(
        StrCat("brute-force counting over ", num_variables_,
               " variables exceeds the limit of ", max_vars));
  }
  BigInt count;
  const uint64_t limit = uint64_t{1} << num_variables_;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (IsSatisfiedBy(mask)) count += BigInt(1);
  }
  return count;
}

Result<BigInt> LinearSystem::CountSolutionsWithFixed(size_t var, bool value,
                                                     size_t max_vars) const {
  if (var >= num_variables_) {
    return Status::InvalidArgument(
        StrCat("variable index ", var, " out of range (N=", num_variables_,
               ")"));
  }
  if (num_variables_ > max_vars) {
    return Status::ResourceExhausted(
        StrCat("brute-force counting over ", num_variables_,
               " variables exceeds the limit of ", max_vars));
  }
  BigInt count;
  const uint64_t limit = uint64_t{1} << num_variables_;
  const uint64_t bit = uint64_t{1} << var;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (((mask & bit) != 0) != value) continue;
    if (IsSatisfiedBy(mask)) count += BigInt(1);
  }
  return count;
}

std::string LinearSystem::ToString() const {
  std::vector<std::string> lines;
  for (const LinearInequality& row : rows_) {
    std::string lhs;
    bool first = true;
    for (size_t j = 0; j < row.coefficients.size(); ++j) {
      const int64_t c = row.coefficients[j];
      if (c == 0) continue;
      if (!first) lhs += c > 0 ? " + " : " - ";
      if (first && c < 0) lhs += "-";
      const int64_t abs_c = c < 0 ? -c : c;
      if (abs_c != 1) lhs += StrCat(abs_c, "·");
      lhs += StrCat("x", j + 1);
      first = false;
    }
    if (first) lhs = "0";
    lines.push_back(StrCat(lhs, " >= ", row.rhs, "    [", row.label, "]"));
  }
  return Join(lines, "\n");
}

}  // namespace psc
