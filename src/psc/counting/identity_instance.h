#ifndef PSC_COUNTING_IDENTITY_INSTANCE_H_
#define PSC_COUNTING_IDENTITY_INSTANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "psc/source/source_collection.h"
#include "psc/util/rational.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A compiled instance of the Section 5.1 special case: every view is
/// the identity over one global relation R and the domain is finite.
///
/// A global database is then just a subset D of a finite *fact universe*
/// (all tuples over R with constants in dom, in the paper's enumeration
/// t₁,…,t_N), and D ∈ poss(S) iff for every source i
///
///   |D ∩ vᵢ| ≥ ⌈sᵢ·|vᵢ|⌉      (soundness)
///   |D ∩ vᵢ| ≥ cᵢ·|D|          (completeness; φᵢ(D) = D for identities)
///
/// The key structural observation (used by SignatureCounter): two universe
/// tuples belong to exactly the same extensions — have the same *signature*
/// bitmask over the sources — are exchangeable: every constraint depends
/// only on *how many* tuples are picked from each signature group, not on
/// which ones. Grouping reduces the 2^N search space to count vectors.
class IdentityInstance {
 public:
  /// Per-source constraint data, precomputed with exact arithmetic.
  struct SourceConstraint {
    std::string name;
    int64_t extension_size = 0;  ///< kᵢ = |vᵢ|
    int64_t min_sound = 0;       ///< tᵢ ≥ ⌈sᵢ·kᵢ⌉
    Rational completeness;       ///< cᵢ
    Rational soundness;          ///< sᵢ
  };

  /// A signature group: the universe tuples contained in exactly the
  /// sources set in `signature`.
  struct Group {
    uint64_t signature = 0;       ///< bit i set ⟺ member of source i's vᵢ
    int64_t size = 0;             ///< n_g
    std::vector<size_t> members;  ///< indices into universe()
  };

  /// Empty, invalid instance; use a factory.
  IdentityInstance() = default;

  /// \brief Compiles `collection` over the full universe dom^arity.
  ///
  /// `domain` must contain every constant mentioned in the extensions.
  /// Fails if a view is not an identity, sources > 63, or the universe
  /// exceeds `max_universe`.
  static Result<IdentityInstance> Create(const SourceCollection& collection,
                                         const std::vector<Value>& domain,
                                         size_t max_universe = 1u << 22);

  /// \brief Compiles over the universe ⋃ᵢ vᵢ only.
  ///
  /// Sufficient for deciding consistency: facts outside every extension
  /// can only lower each completeness ratio and never help soundness, so
  /// poss(S) ≠ ∅ iff a witness exists inside ⋃ᵢ vᵢ.
  static Result<IdentityInstance> CreateOverExtensions(
      const SourceCollection& collection);

  /// \brief Compiles over an explicit universe (must cover every vᵢ).
  static Result<IdentityInstance> CreateWithUniverse(
      const SourceCollection& collection, std::vector<Tuple> universe);

  /// The common global relation name R.
  const std::string& relation() const { return relation_; }
  size_t arity() const { return arity_; }

  /// The fact universe t₁,…,t_N (deterministic order, no duplicates).
  const std::vector<Tuple>& universe() const { return universe_; }

  /// Signature groups, in increasing signature order. Every universe tuple
  /// belongs to exactly one group; the signature-0 group (if present) holds
  /// the tuples outside every extension.
  const std::vector<Group>& groups() const { return groups_; }

  const std::vector<SourceConstraint>& constraints() const {
    return constraints_;
  }
  size_t num_sources() const { return constraints_.size(); }

  /// Group index of a universe tuple; NotFound for tuples outside.
  Result<size_t> GroupIndexOf(const Tuple& tuple) const;

  /// \brief Checks a per-group count vector against every source constraint
  /// (the Γ system evaluated on the group abstraction). `counts[g]` is the
  /// number of tuples picked from group g; requires 0 ≤ counts[g] ≤ n_g.
  bool CheckCounts(const std::vector<int64_t>& counts) const;

 private:
  std::string relation_;
  size_t arity_ = 0;
  std::vector<Tuple> universe_;
  std::vector<Group> groups_;
  std::vector<SourceConstraint> constraints_;
  std::map<Tuple, size_t> group_of_tuple_;
};

}  // namespace psc

#endif  // PSC_COUNTING_IDENTITY_INSTANCE_H_
