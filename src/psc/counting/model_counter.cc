#include "psc/counting/model_counter.h"

#include <functional>

#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/string_util.h"

namespace psc {

SignatureCounter::SignatureCounter(const IdentityInstance* instance,
                                   BinomialTable* binomials)
    : instance_(instance), binomials_(binomials) {
  PSC_CHECK(instance_ != nullptr && binomials_ != nullptr);
  BuildSuffixCapacity();
}

void SignatureCounter::BuildSuffixCapacity() {
  const auto& groups = instance_->groups();
  const size_t n = instance_->num_sources();
  suffix_max_.assign(n, std::vector<int64_t>(groups.size() + 1, 0));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = uint64_t{1} << i;
    for (size_t g = groups.size(); g-- > 0;) {
      suffix_max_[i][g] = suffix_max_[i][g + 1] +
                          ((groups[g].signature & bit) != 0 ? groups[g].size
                                                            : 0);
    }
  }
}

namespace {

/// Shared DFS over per-group count vectors with soundness pruning.
/// `visit(counts, weight)` is called for every feasible leaf and returns
/// false to stop the whole enumeration.
class ShapeEnumerator {
 public:
  ShapeEnumerator(const IdentityInstance& instance, BinomialTable& binomials,
                  const std::vector<std::vector<int64_t>>& suffix_max,
                  uint64_t max_shapes)
      : instance_(instance),
        binomials_(binomials),
        suffix_max_(suffix_max),
        max_shapes_(max_shapes) {}

  /// Returns false iff the visitor requested an early stop.
  Result<bool> Run(const std::function<bool(const std::vector<int64_t>&,
                                            const BigInt&)>& visit) {
    visit_ = &visit;
    counts_.assign(instance_.groups().size(), 0);
    partial_in_extension_.assign(instance_.num_sources(), 0);
    visited_ = 0;
    return Recurse(0, BigInt(1));
  }

  uint64_t visited() const { return visited_; }

 private:
  Result<bool> Recurse(size_t g, const BigInt& weight) {
    // Soundness pruning: some source can no longer reach its minimum.
    for (size_t i = 0; i < instance_.num_sources(); ++i) {
      if (partial_in_extension_[i] + suffix_max_[i][g] <
          instance_.constraints()[i].min_sound) {
        return true;
      }
    }
    if (g == instance_.groups().size()) {
      if (++visited_ > max_shapes_) {
        return Status::ResourceExhausted(
            StrCat("shape enumeration exceeded ", max_shapes_,
                   " count vectors"));
      }
      if (instance_.CheckCounts(counts_)) {
        return (*visit_)(counts_, weight);
      }
      return true;
    }
    const IdentityInstance::Group& group = instance_.groups()[g];
    for (int64_t k = 0; k <= group.size; ++k) {
      counts_[g] = k;
      for (size_t i = 0; i < instance_.num_sources(); ++i) {
        if ((group.signature & (uint64_t{1} << i)) != 0) {
          partial_in_extension_[i] += k;
        }
      }
      BigInt child_weight = weight * binomials_.Choose(group.size, k);
      auto deeper = Recurse(g + 1, child_weight);
      for (size_t i = 0; i < instance_.num_sources(); ++i) {
        if ((group.signature & (uint64_t{1} << i)) != 0) {
          partial_in_extension_[i] -= k;
        }
      }
      if (!deeper.ok()) return deeper.status();
      if (!*deeper) {
        counts_[g] = 0;
        return false;
      }
    }
    counts_[g] = 0;
    return true;
  }

  const IdentityInstance& instance_;
  BinomialTable& binomials_;
  const std::vector<std::vector<int64_t>>& suffix_max_;
  const uint64_t max_shapes_;
  const std::function<bool(const std::vector<int64_t>&, const BigInt&)>*
      visit_ = nullptr;
  std::vector<int64_t> counts_;
  std::vector<int64_t> partial_in_extension_;
  uint64_t visited_ = 0;
};

}  // namespace

Result<CountingOutcome> SignatureCounter::Count(uint64_t max_shapes) {
  PSC_OBS_SPAN("counting.count");
  CountingOutcome outcome;
  const auto& groups = instance_->groups();
  // Σ over feasible shapes of weight·k_g, later divided by n_g.
  std::vector<BigInt> marked_sums(groups.size());

  ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_, max_shapes);
  PSC_RETURN_NOT_OK(
      enumerator
          .Run([&](const std::vector<int64_t>& counts, const BigInt& weight) {
            ++outcome.feasible_shapes;
            outcome.world_count += weight;
            for (size_t g = 0; g < groups.size(); ++g) {
              if (counts[g] == 0) continue;
              BigInt term = weight;
              term.MulU32(static_cast<uint32_t>(counts[g]));
              marked_sums[g] += term;
            }
            return true;
          })
          .status());
  outcome.visited_shapes = enumerator.visited();
  PSC_OBS_COUNTER_ADD("counting.shapes_visited", outcome.visited_shapes);
  PSC_OBS_COUNTER_ADD("counting.feasible_shapes", outcome.feasible_shapes);

  outcome.worlds_containing.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    if (marked_sums[g].IsZero()) continue;
    // C(n,k)·k = n·C(n−1,k−1), so the sum is divisible by n_g termwise.
    outcome.worlds_containing[g] =
        marked_sums[g].DivExactU32(static_cast<uint32_t>(groups[g].size));
  }
  return outcome;
}

Result<std::vector<WorldShape>> SignatureCounter::FeasibleShapes(
    uint64_t max_shapes) {
  std::vector<WorldShape> shapes;
  ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_, max_shapes);
  PSC_RETURN_NOT_OK(
      enumerator
          .Run([&](const std::vector<int64_t>& counts, const BigInt& weight) {
            shapes.push_back(WorldShape{counts, weight});
            return true;
          })
          .status());
  return shapes;
}

Result<std::optional<WorldShape>> SignatureCounter::FirstFeasibleShape(
    uint64_t max_shapes, uint64_t* visited) {
  std::optional<WorldShape> first;
  ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_, max_shapes);
  PSC_RETURN_NOT_OK(
      enumerator
          .Run([&](const std::vector<int64_t>& counts, const BigInt& weight) {
            first = WorldShape{counts, weight};
            return false;
          })
          .status());
  if (visited != nullptr) *visited = enumerator.visited();
  PSC_OBS_COUNTER_ADD("counting.shapes_visited", enumerator.visited());
  return first;
}

}  // namespace psc
