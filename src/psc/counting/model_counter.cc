#include "psc/counting/model_counter.h"

#include <atomic>
#include <functional>
#include <utility>

#include "psc/exec/parallel.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/string_util.h"

namespace psc {

SignatureCounter::SignatureCounter(const IdentityInstance* instance,
                                   BinomialTable* binomials)
    : instance_(instance), binomials_(binomials) {
  PSC_CHECK(instance_ != nullptr && binomials_ != nullptr);
  BuildSuffixCapacity();
}

void SignatureCounter::BuildSuffixCapacity() {
  const auto& groups = instance_->groups();
  const size_t n = instance_->num_sources();
  suffix_max_.assign(n, std::vector<int64_t>(groups.size() + 1, 0));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = uint64_t{1} << i;
    for (size_t g = groups.size(); g-- > 0;) {
      suffix_max_[i][g] = suffix_max_[i][g + 1] +
                          ((groups[g].signature & bit) != 0 ? groups[g].size
                                                            : 0);
    }
  }
}

namespace {

/// Shared DFS over per-group count vectors with soundness pruning.
/// `visit(counts, weight)` is called for every feasible leaf and returns
/// false to stop the whole enumeration.
///
/// The per-depth prune condition partial[i] + suffix_max[i][g] < tᵢ is
/// precomputed once per depth as partial[i] < needᵢ(g) with
/// needᵢ(g) = tᵢ − suffix_max[i][g]; only sources with a positive need can
/// ever prune (partials are non-negative), so each node scans the short
/// per-depth `active_` list instead of all sources.
class ShapeEnumerator {
 public:
  ShapeEnumerator(const IdentityInstance& instance, BinomialTable& binomials,
                  const std::vector<std::vector<int64_t>>& suffix_max,
                  uint64_t max_shapes,
                  std::atomic<uint64_t>* shared_visited = nullptr,
                  limits::Budget budget = limits::Budget())
      : instance_(instance),
        binomials_(binomials),
        max_shapes_(max_shapes),
        shared_visited_(shared_visited),
        budget_(std::move(budget)) {
    const size_t depths = instance_.groups().size() + 1;
    active_.resize(depths);
    for (size_t g = 0; g < depths; ++g) {
      for (size_t i = 0; i < instance_.num_sources(); ++i) {
        const int64_t need =
            instance_.constraints()[i].min_sound - suffix_max[i][g];
        if (need > 0) active_[g].emplace_back(i, need);
      }
    }
  }

  /// Returns false iff the visitor requested an early stop.
  Result<bool> Run(const std::function<bool(const std::vector<int64_t>&,
                                            const BigInt&)>& visit) {
    return RunWithFirstGroup(-1, visit);
  }

  /// \brief Runs the DFS with the first group's count pinned to
  /// `first_count` (or unpinned when negative).
  ///
  /// The pinned form enumerates exactly the subtree the unpinned DFS
  /// explores under counts[0] == first_count, which is what makes the
  /// parallel counter's shard union identical to the sequential
  /// enumeration, leaf for leaf.
  Result<bool> RunWithFirstGroup(
      int64_t first_count,
      const std::function<bool(const std::vector<int64_t>&, const BigInt&)>&
          visit) {
    visit_ = &visit;
    counts_.assign(instance_.groups().size(), 0);
    partial_in_extension_.assign(instance_.num_sources(), 0);
    visited_ = 0;
    if (first_count < 0) return Recurse(0, BigInt(1));
    // Seed depth 0: counts_[0] = k, partials and weight follow.
    PSC_CHECK(!instance_.groups().empty() &&
              first_count <= instance_.groups()[0].size);
    const IdentityInstance::Group& group = instance_.groups()[0];
    counts_[0] = first_count;
    for (size_t i = 0; i < instance_.num_sources(); ++i) {
      if ((group.signature & (uint64_t{1} << i)) != 0) {
        partial_in_extension_[i] += first_count;
      }
    }
    return Recurse(1, binomials_.Choose(group.size, first_count));
  }

  uint64_t visited() const { return visited_; }

 private:
  Result<bool> Recurse(size_t g, const BigInt& weight) {
    // Cooperative limits: one budget node per DFS tree node. Workers of a
    // sharded count share the budget, so the first shard to trip it stops
    // every other shard at its next node.
    if (!budget_.Charge()) return budget_.ToStatus();
    // Soundness pruning: some source can no longer reach its minimum.
    for (const auto& [i, need] : active_[g]) {
      if (partial_in_extension_[i] < need) return true;
    }
    if (g == instance_.groups().size()) {
      ++visited_;
      const uint64_t total =
          shared_visited_ == nullptr
              ? visited_
              : shared_visited_->fetch_add(1, std::memory_order_relaxed) + 1;
      if (total > max_shapes_) {
        return Status::ResourceExhausted(
            StrCat("shape enumeration exceeded ", max_shapes_,
                   " count vectors"));
      }
      if (instance_.CheckCounts(counts_)) {
        return (*visit_)(counts_, weight);
      }
      return true;
    }
    const IdentityInstance::Group& group = instance_.groups()[g];
    for (int64_t k = 0; k <= group.size; ++k) {
      counts_[g] = k;
      for (size_t i = 0; i < instance_.num_sources(); ++i) {
        if ((group.signature & (uint64_t{1} << i)) != 0) {
          partial_in_extension_[i] += k;
        }
      }
      BigInt child_weight = weight * binomials_.Choose(group.size, k);
      auto deeper = Recurse(g + 1, child_weight);
      for (size_t i = 0; i < instance_.num_sources(); ++i) {
        if ((group.signature & (uint64_t{1} << i)) != 0) {
          partial_in_extension_[i] -= k;
        }
      }
      if (!deeper.ok()) return deeper.status();
      if (!*deeper) {
        counts_[g] = 0;
        return false;
      }
    }
    counts_[g] = 0;
    return true;
  }

  const IdentityInstance& instance_;
  BinomialTable& binomials_;
  const uint64_t max_shapes_;
  /// Shape-count cap shared across parallel shards (the sequential path
  /// uses the local `visited_`).
  std::atomic<uint64_t>* shared_visited_;
  /// Cooperative deadline / work budget (shared state across copies).
  limits::Budget budget_;
  /// active_[g]: (source, need) pairs that can actually prune at depth g.
  std::vector<std::vector<std::pair<size_t, int64_t>>> active_;
  const std::function<bool(const std::vector<int64_t>&, const BigInt&)>*
      visit_ = nullptr;
  std::vector<int64_t> counts_;
  std::vector<int64_t> partial_in_extension_;
  uint64_t visited_ = 0;
};

/// Per-shard accumulator for the parallel count: the k-th shard owns the
/// counts[0] == k subtree.
struct CountShard {
  BigInt world_count;
  std::vector<BigInt> marked_sums;
  uint64_t feasible_shapes = 0;
  uint64_t visited_shapes = 0;
  Status error;
};

}  // namespace

Result<CountingOutcome> SignatureCounter::Count(uint64_t max_shapes,
                                                exec::ThreadPool* pool,
                                                const limits::Budget& budget) {
  PSC_OBS_SPAN("counting.count");
  CountingOutcome outcome;
  const auto& groups = instance_->groups();
  // Σ over feasible shapes of weight·k_g, later divided by n_g.
  std::vector<BigInt> marked_sums(groups.size());

  const bool parallel =
      pool != nullptr && pool->size() > 1 && !groups.empty();
  if (!parallel) {
    ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_,
                               max_shapes, nullptr, budget);
    PSC_RETURN_NOT_OK(
        enumerator
            .Run([&](const std::vector<int64_t>& counts,
                     const BigInt& weight) {
              ++outcome.feasible_shapes;
              outcome.world_count += weight;
              for (size_t g = 0; g < groups.size(); ++g) {
                if (counts[g] == 0) continue;
                BigInt term = weight;
                term.MulU32(static_cast<uint32_t>(counts[g]));
                marked_sums[g] += term;
              }
              return true;
            })
            .status());
    outcome.visited_shapes = enumerator.visited();
  } else {
    // One shard per value of counts[0]; per-shard partials merge in shard
    // order, so the BigInt totals equal the sequential fold bit for bit.
    // Every binomial row a shard can touch is materialized up front: the
    // shards then only read the shared table, instead of each rebuilding
    // the (potentially huge) first-group row from scratch.
    for (const auto& group : groups) binomials_->Warm(group.size);
    const size_t shards = static_cast<size_t>(groups[0].size) + 1;
    std::atomic<uint64_t> shared_visited{0};
    // A tripped budget cancels shards still queued on the pool; shards
    // skipped this way merge as empty-and-error-free, which is safe
    // because the shard that tripped the budget always carries the error.
    const limits::CancelToken cancel_token = budget.token();
    const limits::CancelToken* cancel =
        budget.active() ? &cancel_token : nullptr;
    CountShard merged;
    merged.marked_sums.resize(groups.size());
    merged = exec::ParallelReduce<CountShard>(
        pool, shards, std::move(merged),
        [&](size_t k) {
          CountShard shard;
          shard.marked_sums.resize(groups.size());
          ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_,
                                     max_shapes, &shared_visited, budget);
          auto run = enumerator.RunWithFirstGroup(
              static_cast<int64_t>(k),
              [&](const std::vector<int64_t>& counts, const BigInt& weight) {
                ++shard.feasible_shapes;
                shard.world_count += weight;
                for (size_t g = 0; g < groups.size(); ++g) {
                  if (counts[g] == 0) continue;
                  BigInt term = weight;
                  term.MulU32(static_cast<uint32_t>(counts[g]));
                  shard.marked_sums[g] += term;
                }
                return true;
              });
          if (!run.ok()) shard.error = run.status();
          shard.visited_shapes = enumerator.visited();
          return shard;
        },
        [](CountShard& acc, CountShard part) {
          if (!acc.error.ok()) return;
          if (!part.error.ok()) {
            acc.error = part.error;
            return;
          }
          acc.world_count += part.world_count;
          for (size_t g = 0; g < acc.marked_sums.size(); ++g) {
            acc.marked_sums[g] += part.marked_sums[g];
          }
          acc.feasible_shapes += part.feasible_shapes;
          acc.visited_shapes += part.visited_shapes;
        },
        cancel);
    PSC_RETURN_NOT_OK(merged.error);
    // All-shards-skipped corner (e.g. an external Cancel before any shard
    // ran): no shard recorded an error, but the count is not complete.
    if (budget.reason() != limits::StopReason::kNone) {
      return budget.ToStatus();
    }
    outcome.world_count = std::move(merged.world_count);
    marked_sums = std::move(merged.marked_sums);
    outcome.feasible_shapes = merged.feasible_shapes;
    outcome.visited_shapes = merged.visited_shapes;
  }
  PSC_OBS_COUNTER_ADD("counting.shapes_visited", outcome.visited_shapes);
  PSC_OBS_COUNTER_ADD("counting.feasible_shapes", outcome.feasible_shapes);

  outcome.worlds_containing.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    if (marked_sums[g].IsZero()) continue;
    // C(n,k)·k = n·C(n−1,k−1), so the sum is divisible by n_g termwise.
    outcome.worlds_containing[g] =
        marked_sums[g].DivExactU32(static_cast<uint32_t>(groups[g].size));
  }
  return outcome;
}

Result<std::vector<WorldShape>> SignatureCounter::FeasibleShapes(
    uint64_t max_shapes, const limits::Budget& budget) {
  std::vector<WorldShape> shapes;
  ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_, max_shapes,
                             nullptr, budget);
  PSC_RETURN_NOT_OK(
      enumerator
          .Run([&](const std::vector<int64_t>& counts, const BigInt& weight) {
            shapes.push_back(WorldShape{counts, weight});
            return true;
          })
          .status());
  return shapes;
}

Result<std::optional<WorldShape>> SignatureCounter::FirstFeasibleShape(
    uint64_t max_shapes, uint64_t* visited, const limits::Budget& budget) {
  std::optional<WorldShape> first;
  ShapeEnumerator enumerator(*instance_, *binomials_, suffix_max_, max_shapes,
                             nullptr, budget);
  PSC_RETURN_NOT_OK(
      enumerator
          .Run([&](const std::vector<int64_t>& counts, const BigInt& weight) {
            first = WorldShape{counts, weight};
            return false;
          })
          .status());
  if (visited != nullptr) *visited = enumerator.visited();
  PSC_OBS_COUNTER_ADD("counting.shapes_visited", enumerator.visited());
  return first;
}

}  // namespace psc
