#include "psc/counting/dp_counter.h"

#include <algorithm>
#include <map>

#include "psc/exec/parallel.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/combinatorics.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

using Int128 = __int128;

/// DP state: (T₁, …, Tₙ, |D|).
using State = std::vector<int64_t>;
using StateMap = std::map<State, BigInt>;

/// One DP pass. When `marked_group` is non-negative, one designated fact
/// of that group is forced into every world: its group contributes
/// C(n_g−1, k−1) for k ≥ 1 instead of C(n_g, k).
Result<BigInt> RunPass(const IdentityInstance& instance,
                       BinomialTable& binomials, int64_t marked_group,
                       uint64_t max_states, const limits::Budget& budget,
                       uint64_t* peak_states, uint64_t* feasible_states) {
  const size_t n = instance.num_sources();
  /// Rough per-state footprint for the advisory memory budget: the key
  /// vector of n+1 int64 sums plus map-node and BigInt overhead.
  const uint64_t state_bytes = (n + 1) * sizeof(int64_t) + 96;
  StateMap states;
  states.emplace(State(n + 1, 0), BigInt(1));

  uint64_t reserved_bytes = 0;
  for (size_t g = 0; g < instance.groups().size(); ++g) {
    const IdentityInstance::Group& group = instance.groups()[g];
    const bool marked = static_cast<int64_t>(g) == marked_group;
    StateMap next;
    for (const auto& [state, weight] : states) {
      // One budget node per expanded state; all concurrent passes share
      // the budget, so the first pass to trip it stops the others too.
      if (!budget.Charge()) {
        budget.ReleaseMemory(reserved_bytes);
        return budget.ToStatus();
      }
      const int64_t k_min = marked ? 1 : 0;
      for (int64_t k = k_min; k <= group.size; ++k) {
        const BigInt& combinations =
            marked ? binomials.Choose(group.size - 1, k - 1)
                   : binomials.Choose(group.size, k);
        if (combinations.IsZero()) continue;
        State successor = state;
        for (size_t i = 0; i < n; ++i) {
          if ((group.signature & (uint64_t{1} << i)) != 0) {
            successor[i] += k;
          }
        }
        successor[n] += k;
        next[std::move(successor)] += weight * combinations;
      }
    }
    states = std::move(next);
    PSC_OBS_COUNTER_ADD("counting.dp_cells", states.size());
    *peak_states = std::max<uint64_t>(*peak_states, states.size());
    if (states.size() > max_states) {
      budget.ReleaseMemory(reserved_bytes);
      return Status::ResourceExhausted(
          StrCat("DP state count ", states.size(), " exceeds the budget of ",
                 max_states));
    }
    // Advisory memory budget: track the live state map's footprint.
    const uint64_t layer_bytes = states.size() * state_bytes;
    budget.ReleaseMemory(reserved_bytes);
    reserved_bytes = layer_bytes;
    if (!budget.ChargeMemory(reserved_bytes)) {
      budget.ReleaseMemory(reserved_bytes);
      return budget.ToStatus();
    }
  }
  budget.ReleaseMemory(reserved_bytes);

  BigInt total;
  for (const auto& [state, weight] : states) {
    const int64_t world_size = state[n];
    bool feasible = true;
    for (size_t i = 0; i < n && feasible; ++i) {
      const IdentityInstance::SourceConstraint& constraint =
          instance.constraints()[i];
      if (state[i] < constraint.min_sound) {
        feasible = false;
        break;
      }
      const Int128 lhs =
          Int128(constraint.completeness.numerator()) * world_size;
      const Int128 rhs =
          Int128(constraint.completeness.denominator()) * state[i];
      feasible = lhs <= rhs;
    }
    if (feasible) {
      total += weight;
      if (feasible_states != nullptr) ++*feasible_states;
    }
  }
  return total;
}

}  // namespace

DpCounter::DpCounter(const IdentityInstance* instance) : instance_(instance) {
  PSC_CHECK(instance_ != nullptr);
}

Result<CountingOutcome> DpCounter::Count(uint64_t max_states,
                                         exec::ThreadPool* pool,
                                         const limits::Budget& budget) {
  PSC_OBS_SPAN("counting.dp_count");
  CountingOutcome outcome;
  const size_t num_groups = instance_->groups().size();
  outcome.worlds_containing.resize(num_groups);

  // Pass list: -1 counts all worlds, g >= 0 counts worlds containing a
  // designated fact of group g. Passes are independent DPs writing into
  // fixed per-pass slots, so the outcome is scheduling-independent (with
  // a null/single-worker pool this runs sequentially in pass order).
  std::vector<int64_t> passes;
  passes.push_back(-1);
  for (size_t g = 0; g < num_groups; ++g) {
    if (instance_->groups()[g].size > 0) {
      passes.push_back(static_cast<int64_t>(g));
    }
  }

  struct PassResult {
    BigInt total;
    uint64_t peak = 0;
    uint64_t feasible = 0;
    Status error;
  };
  std::vector<PassResult> slots(passes.size());
  // One shared table: every row a pass can touch (C(n_g, ·) and the
  // marked C(n_g−1, ·)) is materialized up front, so concurrent passes
  // only read it and no pass rebuilds the large rows.
  BinomialTable binomials;
  for (const auto& group : instance_->groups()) {
    binomials.Warm(group.size);
    if (group.size > 0) binomials.Warm(group.size - 1);
  }
  const limits::CancelToken cancel_token = budget.token();
  exec::ParallelFor(
      pool, passes.size(),
      [&](size_t p) {
        PassResult& slot = slots[p];  // disjoint per-pass slot
        auto total = RunPass(*instance_, binomials, passes[p], max_states,
                             budget, &slot.peak,
                             passes[p] < 0 ? &slot.feasible : nullptr);
        if (total.ok()) {
          slot.total = std::move(*total);
        } else {
          slot.error = total.status();
        }
        PSC_OBS_COUNTER_INC("counting.dp_passes");
      },
      budget.active() ? &cancel_token : nullptr);

  uint64_t peak = 0;
  for (size_t p = 0; p < passes.size(); ++p) {
    const PassResult& slot = slots[p];
    PSC_RETURN_NOT_OK(slot.error);
    peak = std::max(peak, slot.peak);
    if (passes[p] < 0) {
      outcome.world_count = slot.total;
      outcome.feasible_shapes = slot.feasible;
    } else {
      outcome.worlds_containing[static_cast<size_t>(passes[p])] = slot.total;
    }
  }
  outcome.visited_shapes = peak;
  return outcome;
}

}  // namespace psc
