#include "psc/counting/dp_counter.h"

#include <map>

#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/combinatorics.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

using Int128 = __int128;

/// DP state: (T₁, …, Tₙ, |D|).
using State = std::vector<int64_t>;
using StateMap = std::map<State, BigInt>;

/// One DP pass. When `marked_group` is non-negative, one designated fact
/// of that group is forced into every world: its group contributes
/// C(n_g−1, k−1) for k ≥ 1 instead of C(n_g, k).
Result<BigInt> RunPass(const IdentityInstance& instance,
                       BinomialTable& binomials, int64_t marked_group,
                       uint64_t max_states, uint64_t* peak_states,
                       uint64_t* feasible_states) {
  const size_t n = instance.num_sources();
  StateMap states;
  states.emplace(State(n + 1, 0), BigInt(1));

  for (size_t g = 0; g < instance.groups().size(); ++g) {
    const IdentityInstance::Group& group = instance.groups()[g];
    const bool marked = static_cast<int64_t>(g) == marked_group;
    StateMap next;
    for (const auto& [state, weight] : states) {
      const int64_t k_min = marked ? 1 : 0;
      for (int64_t k = k_min; k <= group.size; ++k) {
        const BigInt& combinations =
            marked ? binomials.Choose(group.size - 1, k - 1)
                   : binomials.Choose(group.size, k);
        if (combinations.IsZero()) continue;
        State successor = state;
        for (size_t i = 0; i < n; ++i) {
          if ((group.signature & (uint64_t{1} << i)) != 0) {
            successor[i] += k;
          }
        }
        successor[n] += k;
        next[std::move(successor)] += weight * combinations;
      }
    }
    states = std::move(next);
    PSC_OBS_COUNTER_ADD("counting.dp_cells", states.size());
    *peak_states = std::max<uint64_t>(*peak_states, states.size());
    if (states.size() > max_states) {
      return Status::ResourceExhausted(
          StrCat("DP state count ", states.size(), " exceeds the budget of ",
                 max_states));
    }
  }

  BigInt total;
  for (const auto& [state, weight] : states) {
    const int64_t world_size = state[n];
    bool feasible = true;
    for (size_t i = 0; i < n && feasible; ++i) {
      const IdentityInstance::SourceConstraint& constraint =
          instance.constraints()[i];
      if (state[i] < constraint.min_sound) {
        feasible = false;
        break;
      }
      const Int128 lhs =
          Int128(constraint.completeness.numerator()) * world_size;
      const Int128 rhs =
          Int128(constraint.completeness.denominator()) * state[i];
      feasible = lhs <= rhs;
    }
    if (feasible) {
      total += weight;
      if (feasible_states != nullptr) ++*feasible_states;
    }
  }
  return total;
}

}  // namespace

DpCounter::DpCounter(const IdentityInstance* instance) : instance_(instance) {
  PSC_CHECK(instance_ != nullptr);
}

Result<CountingOutcome> DpCounter::Count(uint64_t max_states) {
  PSC_OBS_SPAN("counting.dp_count");
  BinomialTable binomials;
  CountingOutcome outcome;
  uint64_t peak = 0;
  uint64_t feasible = 0;
  PSC_ASSIGN_OR_RETURN(outcome.world_count,
                       RunPass(*instance_, binomials, /*marked_group=*/-1,
                               max_states, &peak, &feasible));
  PSC_OBS_COUNTER_INC("counting.dp_passes");
  outcome.feasible_shapes = feasible;
  const size_t num_groups = instance_->groups().size();
  outcome.worlds_containing.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    if (instance_->groups()[g].size == 0) continue;
    PSC_ASSIGN_OR_RETURN(outcome.worlds_containing[g],
                         RunPass(*instance_, binomials,
                                 static_cast<int64_t>(g), max_states, &peak,
                                 nullptr));
    PSC_OBS_COUNTER_INC("counting.dp_passes");
  }
  outcome.visited_shapes = peak;
  return outcome;
}

}  // namespace psc
