#include "psc/counting/consensus.h"

#include <algorithm>

#include "psc/counting/model_counter.h"
#include "psc/util/combinatorics.h"

namespace psc {

namespace {

/// Tᵢ for one shape: tuples picked from groups inside source i.
int64_t InExtension(const IdentityInstance& instance,
                    const WorldShape& shape, size_t source) {
  int64_t in_extension = 0;
  for (size_t g = 0; g < shape.counts.size(); ++g) {
    if ((instance.groups()[g].signature & (uint64_t{1} << source)) != 0) {
      in_extension += shape.counts[g];
    }
  }
  return in_extension;
}

}  // namespace

Result<std::vector<SourceConsensus>> ComputeSourceConsensus(
    const IdentityInstance& instance, uint64_t max_shapes) {
  BinomialTable binomials;
  SignatureCounter counter(&instance, &binomials);
  PSC_ASSIGN_OR_RETURN(const std::vector<WorldShape> shapes,
                       counter.FeasibleShapes(max_shapes));

  BigInt total;
  for (const WorldShape& shape : shapes) total += shape.weight;
  if (total.IsZero()) {
    return Status::Inconsistent(
        "poss(S) is empty: consensus measures are undefined");
  }

  const size_t n = instance.num_sources();
  // Σ weight·Tᵢ — exact; divided by |vᵢ|·|poss| at the end.
  std::vector<BigInt> weighted_sound(n);
  // Σ weight·Tᵢ / (|D|·|poss|) — each term an exact BigInt ratio rendered
  // to double (numerically safe even when |poss| overflows double).
  std::vector<double> expected_completeness(n, 0.0);

  for (const WorldShape& shape : shapes) {
    int64_t world_size = 0;
    for (const int64_t count : shape.counts) world_size += count;
    for (size_t i = 0; i < n; ++i) {
      const int64_t in_extension = InExtension(instance, shape, i);
      if (in_extension > 0) {
        BigInt term = shape.weight;
        term.MulU32(static_cast<uint32_t>(in_extension));
        weighted_sound[i] += term;
        BigInt denominator = total;
        denominator.MulU32(static_cast<uint32_t>(world_size));
        expected_completeness[i] += BigInt::RatioToDouble(term, denominator);
      } else if (world_size == 0) {
        // φᵢ(D) = ∅: vacuously complete in this world.
        expected_completeness[i] += BigInt::RatioToDouble(shape.weight,
                                                          total);
      }
    }
  }

  std::vector<SourceConsensus> consensus;
  consensus.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const IdentityInstance::SourceConstraint& constraint =
        instance.constraints()[i];
    SourceConsensus entry;
    entry.name = constraint.name;
    entry.claimed_soundness = constraint.soundness.ToDouble();
    entry.claimed_completeness = constraint.completeness.ToDouble();
    if (constraint.extension_size > 0) {
      BigInt denominator = total;
      denominator.MulU32(static_cast<uint32_t>(constraint.extension_size));
      entry.expected_soundness =
          BigInt::RatioToDouble(weighted_sound[i], denominator);
    }
    entry.expected_completeness =
        std::clamp(expected_completeness[i], 0.0, 1.0);
    entry.soundness_slack =
        entry.expected_soundness - entry.claimed_soundness;
    consensus.push_back(std::move(entry));
  }
  return consensus;
}

}  // namespace psc
