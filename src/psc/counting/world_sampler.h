#ifndef PSC_COUNTING_WORLD_SAMPLER_H_
#define PSC_COUNTING_WORLD_SAMPLER_H_

#include <vector>

#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/relational/database.h"
#include "psc/util/bigint.h"
#include "psc/util/random.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Exact uniform sampler over poss(S) for identity-view instances.
///
/// Built from the enumerated feasible world shapes: a shape is drawn with
/// probability proportional to its exact BigInt weight (via rejection-free
/// prefix search on a uniformly random BigInt), then within each group a
/// uniformly random k_g-subset of the group's tuples is chosen. The result
/// is an exactly uniform draw from poss(S) — the substrate for Monte-Carlo
/// estimation of query confidences (experiments E5/E8) when exact
/// per-query computation is infeasible.
class WorldSampler {
 public:
  /// Enumerates feasible shapes (bounded by `max_shapes`) and prepares
  /// cumulative weights. Fails with Inconsistent when poss(S) is empty.
  static Result<WorldSampler> Create(const IdentityInstance* instance,
                                     uint64_t max_shapes = uint64_t{1} << 22);

  /// Exact-uniform sample from poss(S), as a database over the instance's
  /// relation.
  Database Sample(Rng* rng) const;

  /// |poss(S)| over the instance's universe.
  const BigInt& world_count() const { return total_; }
  size_t num_shapes() const { return shapes_.size(); }

 private:
  WorldSampler(const IdentityInstance* instance,
               std::vector<WorldShape> shapes,
               std::vector<BigInt> cumulative, BigInt total)
      : instance_(instance),
        shapes_(std::move(shapes)),
        cumulative_(std::move(cumulative)),
        total_(std::move(total)) {}

  const IdentityInstance* instance_;
  std::vector<WorldShape> shapes_;
  /// cumulative_[i] = Σ_{j ≤ i} shapes_[j].weight.
  std::vector<BigInt> cumulative_;
  BigInt total_;
};

}  // namespace psc

#endif  // PSC_COUNTING_WORLD_SAMPLER_H_
