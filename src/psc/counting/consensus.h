#ifndef PSC_COUNTING_CONSENSUS_H_
#define PSC_COUNTING_CONSENSUS_H_

#include <string>
#include <vector>

#include "psc/counting/identity_instance.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Posterior quality estimates for one source under the uniform
/// distribution on poss(S).
struct SourceConsensus {
  std::string name;
  /// E[s_D(vᵢ)] — expected actual soundness of the source over a random
  /// possible world.
  double expected_soundness = 1.0;
  /// E[c_D(vᵢ)] — expected actual completeness (1 when φᵢ(D) = ∅).
  double expected_completeness = 1.0;
  /// The claimed lower bounds, for comparison.
  double claimed_soundness = 0.0;
  double claimed_completeness = 0.0;
  /// expected − claimed soundness: how much better than its own claim the
  /// consensus of the federation says this source is. Sources whose slack
  /// is much smaller than their peers' are the least corroborated — the
  /// paper's Section 6 "detect the most trustworthy sources" direction,
  /// made concrete as an exact computation. Extension beyond the paper.
  double soundness_slack = 0.0;
};

/// \brief Computes exact expected soundness/completeness for every source
/// of an identity-view instance, by weighting each feasible world shape
/// with its exact BigInt world count:
///
///   E[s_D(vᵢ)] = Σ_shapes weight·Tᵢ / (|vᵢ|·|poss|)        (exact ratio)
///   E[c_D(vᵢ)] = Σ_shapes weight·(Tᵢ/|D|) / |poss|          (per-shape)
///
/// Fails with Inconsistent when poss(S) is empty.
Result<std::vector<SourceConsensus>> ComputeSourceConsensus(
    const IdentityInstance& instance,
    uint64_t max_shapes = uint64_t{1} << 26);

}  // namespace psc

#endif  // PSC_COUNTING_CONSENSUS_H_
