#include "psc/counting/identity_instance.h"

#include <set>

#include "psc/relational/database.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

using Int128 = __int128;

Result<std::string> CommonIdentityRelation(const SourceCollection& collection) {
  if (collection.size() == 0) {
    return Status::InvalidArgument("empty source collection");
  }
  if (collection.size() > 63) {
    return Status::InvalidArgument(
        StrCat("identity-instance compilation supports at most 63 sources, "
               "got ",
               collection.size()));
  }
  std::string relation;
  if (!collection.AllIdentityViews(&relation)) {
    return Status::InvalidArgument(
        "not all views are identities over a common relation");
  }
  return relation;
}

}  // namespace

Result<IdentityInstance> IdentityInstance::CreateWithUniverse(
    const SourceCollection& collection, std::vector<Tuple> universe) {
  PSC_ASSIGN_OR_RETURN(const std::string relation,
                       CommonIdentityRelation(collection));
  IdentityInstance instance;
  instance.relation_ = relation;
  PSC_ASSIGN_OR_RETURN(instance.arity_,
                       collection.schema().Arity(relation));

  // Deduplicate the universe while preserving first-seen order.
  std::set<Tuple> seen;
  for (Tuple& tuple : universe) {
    if (tuple.size() != instance.arity_) {
      return Status::InvalidArgument(
          StrCat("universe tuple ", TupleToString(tuple), " has arity ",
                 tuple.size(), ", expected ", instance.arity_));
    }
    if (seen.insert(tuple).second) {
      instance.universe_.push_back(std::move(tuple));
    }
  }

  // Signatures.
  std::map<Tuple, uint64_t> signature_of;
  for (const Tuple& tuple : instance.universe_) signature_of[tuple] = 0;
  for (size_t i = 0; i < collection.size(); ++i) {
    const SourceDescriptor& source = collection.source(i);
    SourceConstraint constraint;
    constraint.name = source.name();
    constraint.extension_size =
        static_cast<int64_t>(source.extension_size());
    constraint.min_sound = source.MinSoundFacts();
    constraint.completeness = source.completeness_bound();
    constraint.soundness = source.soundness_bound();
    instance.constraints_.push_back(std::move(constraint));
    for (const Tuple& tuple : source.extension()) {
      auto it = signature_of.find(tuple);
      if (it == signature_of.end()) {
        return Status::InvalidArgument(
            StrCat("extension tuple ", TupleToString(tuple), " of source '",
                   source.name(), "' missing from the universe"));
      }
      it->second |= uint64_t{1} << i;
    }
  }

  // Group by signature, in increasing signature order.
  std::map<uint64_t, Group> group_map;
  for (size_t idx = 0; idx < instance.universe_.size(); ++idx) {
    const uint64_t signature = signature_of[instance.universe_[idx]];
    Group& group = group_map[signature];
    group.signature = signature;
    group.members.push_back(idx);
  }
  for (auto& [signature, group] : group_map) {
    group.size = static_cast<int64_t>(group.members.size());
    const size_t group_index = instance.groups_.size();
    for (const size_t member : group.members) {
      instance.group_of_tuple_[instance.universe_[member]] = group_index;
    }
    instance.groups_.push_back(std::move(group));
  }
  return instance;
}

Result<IdentityInstance> IdentityInstance::Create(
    const SourceCollection& collection, const std::vector<Value>& domain,
    size_t max_universe) {
  PSC_ASSIGN_OR_RETURN(const std::string relation,
                       CommonIdentityRelation(collection));
  PSC_ASSIGN_OR_RETURN(const std::vector<Fact> facts,
                       EnumerateFactUniverse(collection.schema(), domain,
                                             max_universe));
  std::vector<Tuple> universe;
  universe.reserve(facts.size());
  for (const Fact& fact : facts) {
    if (fact.relation() == relation) universe.push_back(fact.tuple());
  }
  // Verify coverage of extensions (constants outside `domain` would
  // otherwise vanish silently).
  return CreateWithUniverse(collection, std::move(universe));
}

Result<IdentityInstance> IdentityInstance::CreateOverExtensions(
    const SourceCollection& collection) {
  std::vector<Tuple> universe;
  std::set<Tuple> seen;
  for (const SourceDescriptor& source : collection.sources()) {
    for (const Tuple& tuple : source.extension()) {
      if (seen.insert(tuple).second) universe.push_back(tuple);
    }
  }
  return CreateWithUniverse(collection, std::move(universe));
}

Result<size_t> IdentityInstance::GroupIndexOf(const Tuple& tuple) const {
  auto it = group_of_tuple_.find(tuple);
  if (it == group_of_tuple_.end()) {
    return Status::NotFound(
        StrCat("tuple ", TupleToString(tuple), " not in the fact universe"));
  }
  return it->second;
}

bool IdentityInstance::CheckCounts(const std::vector<int64_t>& counts) const {
  PSC_CHECK_MSG(counts.size() == groups_.size(),
                "CheckCounts: count vector size mismatch");
  int64_t total = 0;
  for (size_t g = 0; g < counts.size(); ++g) {
    PSC_CHECK_MSG(counts[g] >= 0 && counts[g] <= groups_[g].size,
                  "CheckCounts: count out of range");
    total += counts[g];
  }
  for (size_t i = 0; i < constraints_.size(); ++i) {
    const uint64_t bit = uint64_t{1} << i;
    int64_t in_extension = 0;
    for (size_t g = 0; g < counts.size(); ++g) {
      if ((groups_[g].signature & bit) != 0) in_extension += counts[g];
    }
    const SourceConstraint& constraint = constraints_[i];
    if (in_extension < constraint.min_sound) return false;
    // completeness: in_extension / total ≥ cᵢ  ⟺  cᵢ.num·total ≤ cᵢ.den·in.
    // total == 0 makes the constraint vacuous (φᵢ(D) = ∅).
    const Int128 lhs =
        Int128(constraint.completeness.numerator()) * total;
    const Int128 rhs =
        Int128(constraint.completeness.denominator()) * in_extension;
    if (lhs > rhs) return false;
  }
  return true;
}

}  // namespace psc
