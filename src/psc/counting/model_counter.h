#ifndef PSC_COUNTING_MODEL_COUNTER_H_
#define PSC_COUNTING_MODEL_COUNTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "psc/counting/identity_instance.h"
#include "psc/limits/budget.h"
#include "psc/util/bigint.h"
#include "psc/util/combinatorics.h"
#include "psc/util/result.h"

namespace psc {

namespace exec {
class ThreadPool;
}  // namespace exec

/// \brief A feasible "world shape": how many tuples each signature group
/// contributes, together with the number of concrete worlds of that shape,
/// weight = ∏_g C(n_g, counts[g]).
struct WorldShape {
  std::vector<int64_t> counts;
  BigInt weight;
};

/// \brief The result of an exact count of poss(S).
struct CountingOutcome {
  /// N_sol(Γ) = |poss(S)| over the instance's universe.
  BigInt world_count;
  /// Per group g: the number of possible worlds containing any designated
  /// tuple of group g — i.e. N_sol(Γ[x_p/1]) for every p in group g.
  /// confidence(t_p) = worlds_containing[group(p)] / world_count.
  std::vector<BigInt> worlds_containing;
  /// Number of feasible count vectors (shapes).
  uint64_t feasible_shapes = 0;
  /// Number of count vectors visited by the enumeration (pruning metric).
  uint64_t visited_shapes = 0;
};

/// \brief Exact model counter for the Section 5.1 linear system Γ, using
/// signature-group symmetry.
///
/// Instead of the paper's "generate all possible global databases (in
/// exponential time)", the counter enumerates per-group count vectors
/// (k_g)_g — feasibility depends only on counts — and weighs each feasible
/// vector by ∏ C(n_g, k_g) concrete worlds. For the marked counts it uses
/// C(n_g−1, k_g−1) = C(n_g, k_g)·k_g/n_g, accumulating Σ weight·k_g and
/// dividing by n_g at the end (exact: each term is divisible).
///
/// A soundness-based branch-and-bound prunes count prefixes that cannot
/// reach tᵢ = ⌈sᵢkᵢ⌉ for some source i.
class SignatureCounter {
 public:
  /// `instance` and `binomials` must outlive the counter.
  SignatureCounter(const IdentityInstance* instance, BinomialTable* binomials);

  /// \brief Counts all worlds and per-group containment counts.
  ///
  /// Fails with ResourceExhausted after visiting `max_shapes` count
  /// vectors, and with `budget.ToStatus()` (DeadlineExceeded /
  /// ResourceExhausted) when the cooperative budget trips — the DFS
  /// charges one budget node per count-vector tree node, on every worker.
  ///
  /// With a multi-worker `pool` the count-vector DFS is sharded on the
  /// first group's count value; the shared `BinomialTable` is pre-warmed
  /// so shards only read it, and per-shard BigInt accumulators are merged
  /// in shard order, so the outcome is bit-identical to the sequential
  /// run for any worker count. A tripped budget also cancels shards still
  /// queued on the pool.
  Result<CountingOutcome> Count(uint64_t max_shapes = uint64_t{1} << 26,
                                exec::ThreadPool* pool = nullptr,
                                const limits::Budget& budget =
                                    limits::Budget());

  /// \brief Enumerates the feasible shapes themselves (for world sampling
  /// and world enumeration). Fails if more than `max_shapes` are feasible.
  Result<std::vector<WorldShape>> FeasibleShapes(
      uint64_t max_shapes = uint64_t{1} << 22,
      const limits::Budget& budget = limits::Budget());

  /// \brief Stops at the first feasible shape — a constructive consistency
  /// check. nullopt when poss(S) is empty over the instance's universe.
  Result<std::optional<WorldShape>> FirstFeasibleShape(
      uint64_t max_shapes = uint64_t{1} << 26, uint64_t* visited = nullptr,
      const limits::Budget& budget = limits::Budget());

 private:
  /// suffix_max_[i][g] = max tuples sources i can still gain from groups ≥ g.
  void BuildSuffixCapacity();

  const IdentityInstance* instance_;
  BinomialTable* binomials_;
  std::vector<std::vector<int64_t>> suffix_max_;
};

}  // namespace psc

#endif  // PSC_COUNTING_MODEL_COUNTER_H_
