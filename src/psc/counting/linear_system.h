#ifndef PSC_COUNTING_LINEAR_SYSTEM_H_
#define PSC_COUNTING_LINEAR_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psc/counting/identity_instance.h"
#include "psc/util/bigint.h"
#include "psc/util/result.h"

namespace psc {

/// \brief One inequality Σ_j coefficients[j]·x_j ≥ rhs over 0/1 variables.
struct LinearInequality {
  std::vector<int64_t> coefficients;
  int64_t rhs = 0;
  /// Which source and which bound produced this row (for diagnostics).
  std::string label;
};

/// \brief The explicit Section 5.1 system Γ over 0/1 variables x₁,…,x_N,
/// one per universe fact, with two rows per source:
///
///   completeness:  Σ_{tⱼ∈vᵢ} (denᵢ−numᵢ)·xⱼ − Σ_{tⱼ∉vᵢ} numᵢ·xⱼ ≥ 0
///                  (cᵢ = numᵢ/denᵢ scaled to integers)
///   soundness:     Σ_{tⱼ∈vᵢ} xⱼ ≥ ⌈sᵢ·|vᵢ|⌉
///
/// The 0 ≤ xⱼ ≤ 1 rows of the paper are implicit in the Boolean variables.
/// `CountSolutionsBruteForce` realizes the paper's "generate all the
/// possible global databases (in exponential time)" remark literally; it is
/// the ground truth the SignatureCounter is validated against (and the
/// baseline of the E6 ablation).
class LinearSystem {
 public:
  LinearSystem() = default;

  /// Builds Γ from a compiled identity instance.
  static Result<LinearSystem> FromIdentityInstance(
      const IdentityInstance& instance);

  size_t num_variables() const { return num_variables_; }
  const std::vector<LinearInequality>& rows() const { return rows_; }

  /// Evaluates every row on a 0/1 assignment (bit j of `mask` is x_j).
  bool IsSatisfiedBy(uint64_t mask) const;

  /// \brief Counts solutions by enumerating all 2^N assignments.
  /// Fails when N > `max_vars` (default 30).
  Result<BigInt> CountSolutionsBruteForce(size_t max_vars = 30) const;

  /// \brief Counts solutions with x_var fixed to `value` (Γ[x_p/1]).
  Result<BigInt> CountSolutionsWithFixed(size_t var, bool value,
                                         size_t max_vars = 30) const;

  /// Multi-line rendering of all rows.
  std::string ToString() const;

 private:
  size_t num_variables_ = 0;
  std::vector<LinearInequality> rows_;
};

}  // namespace psc

#endif  // PSC_COUNTING_LINEAR_SYSTEM_H_
