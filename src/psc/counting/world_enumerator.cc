#include "psc/counting/world_enumerator.h"

#include "psc/counting/model_counter.h"
#include "psc/obs/metrics.h"
#include "psc/util/combinatorics.h"
#include "psc/util/string_util.h"

namespace psc {

Result<bool> IdentityWorldEnumerator::ForEachWorld(
    const std::function<bool(const Database&)>& fn, uint64_t max_worlds,
    uint64_t max_shapes, const limits::Budget& budget) const {
  BinomialTable binomials;
  SignatureCounter counter(instance_, &binomials);
  PSC_ASSIGN_OR_RETURN(const std::vector<WorldShape> shapes,
                       counter.FeasibleShapes(max_shapes, budget));

  const auto& groups = instance_->groups();
  uint64_t produced = 0;

  for (const WorldShape& shape : shapes) {
    // Odometer of per-group subset selections.
    std::vector<std::vector<int64_t>> picks(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      picks[g].resize(static_cast<size_t>(shape.counts[g]));
      for (size_t j = 0; j < picks[g].size(); ++j) {
        picks[g][j] = static_cast<int64_t>(j);
      }
    }
    while (true) {
      if (++produced > max_worlds) {
        return Status::ResourceExhausted(
            StrCat("world enumeration exceeded ", max_worlds, " worlds"));
      }
      if (!budget.Charge()) return budget.ToStatus();
      PSC_OBS_COUNTER_INC("counting.worlds_enumerated");
      Database world;
      for (size_t g = 0; g < groups.size(); ++g) {
        for (const int64_t pick : picks[g]) {
          const size_t member = groups[g].members[static_cast<size_t>(pick)];
          world.AddFact(instance_->relation(), instance_->universe()[member]);
        }
      }
      if (!fn(world)) return false;

      // Advance: find the last group whose combination can advance.
      size_t g = groups.size();
      bool advanced = false;
      while (g-- > 0 && !advanced) {
        std::vector<int64_t>& combo = picks[g];
        const int64_t n = groups[g].size;
        const int64_t k = static_cast<int64_t>(combo.size());
        // Next k-combination of {0..n-1} in lexicographic order.
        int64_t i = k - 1;
        while (i >= 0 && combo[static_cast<size_t>(i)] == n - k + i) --i;
        if (i >= 0) {
          ++combo[static_cast<size_t>(i)];
          for (int64_t j = i + 1; j < k; ++j) {
            combo[static_cast<size_t>(j)] = combo[static_cast<size_t>(j - 1)] + 1;
          }
          advanced = true;
          // Reset all later groups to their first combination.
          for (size_t h = g + 1; h < groups.size(); ++h) {
            for (size_t j = 0; j < picks[h].size(); ++j) {
              picks[h][j] = static_cast<int64_t>(j);
            }
          }
        }
      }
      if (!advanced) break;  // this shape is exhausted
    }
  }
  return true;
}

}  // namespace psc
