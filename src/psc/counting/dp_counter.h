#ifndef PSC_COUNTING_DP_COUNTER_H_
#define PSC_COUNTING_DP_COUNTER_H_

#include <cstdint>

#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Exact model counter by dynamic programming over aggregate sums.
///
/// Feasibility of a world depends only on the per-source sound counts
/// Tᵢ = |D ∩ vᵢ| and the world size |D| — not on which count vector
/// produced them. The DP processes signature groups one at a time,
/// aggregating the weight ∏ C(n_g, k_g) into states
///
///   (T₁, …, Tₙ, |D|)  →  number of worlds reaching these sums,
///
/// and sums the feasible states at the end. Since Tᵢ ≤ |vᵢ| and distinct
/// |D| values per state are bounded by the enumeration, the state space is
/// O(∏ᵢ(|vᵢ|+1) · N): *polynomial in the domain size* for a fixed
/// collection, where the shape enumeration of SignatureCounter is
/// exponential in the number of groups' sizes. The two counters are
/// cross-validated in the test suite; E6 compares all three algorithms.
///
/// Worst case is still exponential in the number of sources (Theorem 3.2
/// guarantees no free lunch): the reduction instances have singleton
/// extensions, making ∏(|vᵢ|+1) = 2ⁿ.
class DpCounter {
 public:
  /// `instance` must outlive the counter.
  explicit DpCounter(const IdentityInstance* instance);

  /// \brief Counts all worlds and per-group containment counts, exactly as
  /// SignatureCounter::Count. Fails with ResourceExhausted when the live
  /// state count exceeds `max_states`.
  ///
  /// The 1 + G passes (unmarked, then one per non-empty group) are
  /// independent; with a multi-worker `pool` they run concurrently, each
  /// with its own `BinomialTable`, and the per-pass results land in fixed
  /// slots — the outcome is bit-identical for any worker count.
  /// A tripped cooperative `budget` (deadline / node budget, one node
  /// charged per expanded DP state; the advisory memory budget is charged
  /// with the live state-map footprint) fails with `budget.ToStatus()`
  /// and cancels passes still queued on the pool.
  Result<CountingOutcome> Count(uint64_t max_states = uint64_t{1} << 22,
                                exec::ThreadPool* pool = nullptr,
                                const limits::Budget& budget =
                                    limits::Budget());

 private:
  const IdentityInstance* instance_;
};

}  // namespace psc

#endif  // PSC_COUNTING_DP_COUNTER_H_
