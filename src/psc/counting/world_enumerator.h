#ifndef PSC_COUNTING_WORLD_ENUMERATOR_H_
#define PSC_COUNTING_WORLD_ENUMERATOR_H_

#include <functional>

#include "psc/counting/identity_instance.h"
#include "psc/limits/budget.h"
#include "psc/relational/database.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Enumerates every concrete possible world of an identity-view
/// instance, by expanding each feasible world shape into all its
/// ∏ C(n_g, k_g) subset choices.
///
/// Exponential in general; `max_worlds` bounds the number of worlds
/// visited. Deterministic order (shapes in DFS order, subsets
/// lexicographic).
class IdentityWorldEnumerator {
 public:
  /// `instance` must outlive the enumerator.
  explicit IdentityWorldEnumerator(const IdentityInstance* instance)
      : instance_(instance) {}

  /// \brief Calls `fn` for every world D ∈ poss(S) over the instance's
  /// universe; `fn` returns false to stop early. Result is false iff
  /// stopped early. Fails with ResourceExhausted past `max_worlds` worlds
  /// or `max_shapes` shapes, and with `budget.ToStatus()` when the
  /// cooperative budget trips (one node charged per world produced).
  Result<bool> ForEachWorld(const std::function<bool(const Database&)>& fn,
                            uint64_t max_worlds = uint64_t{1} << 22,
                            uint64_t max_shapes = uint64_t{1} << 22,
                            const limits::Budget& budget =
                                limits::Budget()) const;

 private:
  const IdentityInstance* instance_;
};

}  // namespace psc

#endif  // PSC_COUNTING_WORLD_ENUMERATOR_H_
