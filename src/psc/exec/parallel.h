#ifndef PSC_EXEC_PARALLEL_H_
#define PSC_EXEC_PARALLEL_H_

/// \file
/// Deterministic fork-join facade over `ThreadPool`.
///
/// `ParallelFor` runs an index space on the pool and blocks until every
/// index completed. `ParallelReduce` additionally collects one partial
/// result per shard and merges them **in shard order** on the calling
/// thread, so reductions over non-commutative structures (witness
/// selection, error precedence, BigInt totals that must match the
/// sequential fold bit-for-bit) are reproducible regardless of how many
/// workers ran or how the OS scheduled them.
///
/// Both degrade to a plain sequential loop when `pool` is null, the pool
/// has one worker, or the index space is trivial — the sequential path
/// executes the exact same shard bodies in the exact same order, which is
/// what makes `--threads 1` byte-identical to the pre-parallel code.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "psc/exec/thread_pool.h"
#include "psc/limits/budget.h"

namespace psc {
namespace exec {

/// \brief Runs `body(i)` for every i in [0, n), potentially in parallel.
///
/// Blocks until all invocations returned. `body` must be safe to call
/// concurrently from different workers for different indices. With a null
/// or single-worker pool the loop runs inline, in index order.
///
/// When `cancel` is non-null, workers observe the token **between
/// shards**: an index whose turn comes after the token was cancelled is
/// skipped entirely (its `body` is never entered), so a tripped deadline
/// cancels queued work instead of draining it. In-flight bodies are never
/// interrupted — cancellation inside a shard stays the shard's own
/// (cooperative) responsibility. Skipped indices leave whatever state the
/// caller preallocated untouched; callers that merge partial results must
/// make "never ran" distinguishable or benign.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 const limits::CancelToken* cancel = nullptr);

/// \brief Shard-and-merge reduction with a deterministic merge order.
///
/// `shard(i)` produces the i-th partial result (concurrently); `merge`
/// folds partials into `acc` strictly in shard order 0,1,…,n−1 on the
/// calling thread. The result therefore equals the sequential fold for
/// any pool size.
///
/// With a non-null `cancel`, shards queued behind a cancellation are
/// skipped and contribute a value-initialized `T` to the merge (see
/// ParallelFor); a shard that observed the trip from the inside should
/// carry that fact in its `T` so the merged result is not silently
/// partial.
template <typename T, typename ShardFn, typename MergeFn>
T ParallelReduce(ThreadPool* pool, size_t n, T init, const ShardFn& shard,
                 const MergeFn& merge,
                 const limits::CancelToken* cancel = nullptr) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    T acc = std::move(init);
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) break;
      merge(acc, shard(i));
    }
    return acc;
  }
  std::vector<T> parts(n);
  ParallelFor(
      pool, n, [&](size_t i) { parts[i] = shard(i); }, cancel);
  T acc = std::move(init);
  for (size_t i = 0; i < n; ++i) {
    merge(acc, std::move(parts[i]));
  }
  return acc;
}

}  // namespace exec
}  // namespace psc

#endif  // PSC_EXEC_PARALLEL_H_
