#ifndef PSC_EXEC_THREAD_POOL_H_
#define PSC_EXEC_THREAD_POOL_H_

/// \file
/// Work-stealing execution runtime for the solver stack.
///
/// The paper's hard kernels are embarrassingly parallel at the top level:
/// the Theorem 3.2 consistency search fans out over the allowable
/// combinations U of Theorem 4.1, the signature/shape counters enumerate
/// independent count-vector subtrees, and Monte-Carlo estimation shards
/// trivially. `ThreadPool` gives them a shared substrate:
///
///  * a fixed worker set (no dynamic growth; sized once at construction),
///  * one task deque per worker — owners pop from the front, idle workers
///    steal from the back of a victim's deque,
///  * cooperative cancellation via `CancellationToken` (tasks poll; nothing
///    is ever killed mid-flight),
///  * metrics through `psc::obs`: pool gauge, task/steal counters and a
///    task-latency histogram.
///
/// Determinism contract: the pool itself makes no ordering promises; the
/// `ParallelFor` / `ParallelReduce` facade (parallel.h) layers a
/// deterministic shard-order merge on top so solver results are
/// reproducible regardless of thread count.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "psc/sync/mutex.h"

namespace psc {
namespace exec {

/// Number of hardware threads, never 0.
size_t HardwareThreads();

/// \brief Resolves a requested worker count to a concrete one.
///
/// `requested == 0` means "auto": the `PSC_THREADS` environment variable
/// when set to a positive integer, otherwise `HardwareThreads()`. Any
/// positive `requested` is returned unchanged.
size_t ResolveThreadCount(size_t requested);

/// \brief Shared cooperative cancellation flag.
///
/// Copies observe the same underlying state; `Cancel()` is sticky. Workers
/// poll `cancelled()` between units of work — a relaxed atomic load — and
/// wind down at the next check.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { state_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief Fixed-size work-stealing thread pool.
///
/// Tasks are arbitrary `std::function<void()>`; error propagation happens
/// through whatever state the task closes over (the library is
/// exception-free). Submission from worker threads lands on the
/// submitter's own deque; external submissions are spread round-robin.
///
/// Destruction drains nothing: the destructor waits for every already
/// submitted task to finish, then joins the workers. Do not submit from a
/// task racing the destructor.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  size_t size() const { return queues_.size(); }

  /// Enqueues `task` for execution. Thread-safe.
  void Submit(std::function<void()> task);

 private:
  struct Queue {
    sync::Mutex mutex{"exec.pool.queue", sync::kRankExecQueue};
    std::deque<std::function<void()>> tasks PSC_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t index);
  /// Pops from the front of the worker's own deque.
  bool TryPopOwn(size_t index, std::function<void()>* task);
  /// Steals from the back of another worker's deque.
  bool TrySteal(size_t thief, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  sync::Mutex wake_mutex_{"exec.pool.wake", sync::kRankExecWake};
  sync::CondVar wake_cv_;
  /// Tasks submitted but not yet claimed by a worker.
  std::atomic<uint64_t> unclaimed_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace exec
}  // namespace psc

#endif  // PSC_EXEC_THREAD_POOL_H_
