#include "psc/exec/parallel.h"

#include <condition_variable>
#include <memory>
#include <mutex>

namespace psc {
namespace exec {

namespace {

/// Countdown latch for fork-join completion (C++20 std::latch is not yet
/// universally available on the supported toolchains).
struct Latch {
  std::mutex mutex;
  std::condition_variable cv;
  size_t remaining;

  explicit Latch(size_t count) : remaining(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--remaining == 0) cv.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const auto latch = std::make_shared<Latch>(n);
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&body, latch, i] {
      body(i);
      latch->CountDown();
    });
  }
  latch->Wait();
}

}  // namespace exec
}  // namespace psc
