#include "psc/exec/parallel.h"

#include <condition_variable>
#include <memory>
#include <mutex>

#include "psc/obs/metrics.h"

namespace psc {
namespace exec {

namespace {

/// Countdown latch for fork-join completion (C++20 std::latch is not yet
/// universally available on the supported toolchains).
struct Latch {
  std::mutex mutex;
  std::condition_variable cv;
  size_t remaining;

  explicit Latch(size_t count) : remaining(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--remaining == 0) cv.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 const limits::CancelToken* cancel) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        PSC_OBS_COUNTER_ADD("exec.shards_cancelled", n - i);
        return;
      }
      body(i);
    }
    return;
  }
  const auto latch = std::make_shared<Latch>(n);
  // The token is copied into the closure (copies share state) so the
  // caller's `cancel` pointer need not outlive late-running shards.
  const limits::CancelToken token =
      cancel != nullptr ? *cancel : limits::CancelToken();
  const bool cancellable = cancel != nullptr;
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&body, latch, token, cancellable, i] {
      if (cancellable && token.cancelled()) {
        PSC_OBS_COUNTER_INC("exec.shards_cancelled");
      } else {
        body(i);
      }
      latch->CountDown();
    });
  }
  latch->Wait();
}

}  // namespace exec
}  // namespace psc
