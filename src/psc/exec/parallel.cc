#include "psc/exec/parallel.h"

#include <memory>

#include "psc/obs/metrics.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "psc/sync/mutex.h"

namespace psc {
namespace exec {

namespace {

/// Countdown latch for fork-join completion (C++20 std::latch is not yet
/// universally available on the supported toolchains).
struct Latch {
  sync::Mutex mutex{"exec.parallel.latch", sync::kRankExecLatch};
  sync::CondVar cv;
  size_t remaining PSC_GUARDED_BY(mutex);

  explicit Latch(size_t count) : remaining(count) {}

  void CountDown() {
    sync::MutexLock lock(&mutex);
    if (--remaining == 0) cv.NotifyAll();
  }

  void Wait() {
    sync::MutexLock lock(&mutex);
    while (remaining != 0) cv.Wait(mutex);
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 const limits::CancelToken* cancel) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        PSC_OBS_COUNTER_ADD("exec.shards_cancelled", n - i);
        return;
      }
      body(i);
    }
    return;
  }
  const auto latch = std::make_shared<Latch>(n);
  // The token is copied into the closure (copies share state) so the
  // caller's `cancel` pointer need not outlive late-running shards.
  const limits::CancelToken token =
      cancel != nullptr ? *cancel : limits::CancelToken();
  const bool cancellable = cancel != nullptr;
  // The submitting thread's telemetry context (active obs::Scope +
  // innermost open span) travels with every shard, so the query's metric
  // attribution and span tree survive work-stealing onto other threads.
  const obs::TraceContext trace_context = obs::CaptureTraceContext();
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&body, latch, token, cancellable, trace_context, i] {
      const obs::TraceContextGuard trace_guard(trace_context);
      if (cancellable && token.cancelled()) {
        PSC_OBS_COUNTER_INC("exec.shards_cancelled");
      } else {
        PSC_OBS_SPAN("exec.shard");
        body(i);
      }
      latch->CountDown();
    });
  }
  latch->Wait();
}

}  // namespace exec
}  // namespace psc
