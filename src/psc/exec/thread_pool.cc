#include "psc/exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "psc/obs/log.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/string_util.h"

namespace psc {
namespace exec {

namespace {

/// Worker index of the current thread inside *some* pool, or SIZE_MAX.
/// Used to route nested submissions onto the submitter's own deque. A
/// thread only ever belongs to one pool, so a plain thread-local suffices.
thread_local size_t tls_worker_index = SIZE_MAX;
thread_local const void* tls_worker_pool = nullptr;

}  // namespace

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const char* env = std::getenv("PSC_THREADS");
  if (env == nullptr || env[0] == '\0') return HardwareThreads();
  constexpr unsigned long long kMaxThreads = 1024;
  if (env[0] != '-') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    // Bounded: "-1" (rejected above) or an absurd count would otherwise
    // wrap into a request for ~2^64 workers. Out-of-range values fall
    // back to the hardware count like any other unparsable setting.
    if (end != nullptr && *end == '\0' && parsed > 0 &&
        parsed <= kMaxThreads) {
      return static_cast<size_t>(parsed);
    }
  }
  // The fallback used to be silent, which made typos ("0", "-1", "abc",
  // "1025") indistinguishable from a deliberate auto setting. Warn once
  // per distinct junk value so repeated pool construction stays quiet.
  obs::LogWarningOnce(
      StrCat("ignoring invalid PSC_THREADS value '", env,
             "' (expected an integer in [1, ", kMaxThreads,
             "]); using hardware concurrency ", HardwareThreads()));
  return HardwareThreads();
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  PSC_OBS_COUNTER_INC("exec.pools_created");
  PSC_OBS_GAUGE_SET("exec.pool_threads", n);
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(&wake_mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_worker_pool == this) {
    target = tls_worker_index;  // nested spawn: stay local
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    sync::MutexLock lock(&queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  unclaimed_.fetch_add(1, std::memory_order_release);
  {
    // Taking the wake mutex orders this notify against the predicate
    // check inside the workers' wait, preventing lost wakeups.
    sync::MutexLock lock(&wake_mutex_);
  }
  wake_cv_.NotifyOne();
  PSC_OBS_COUNTER_INC("exec.tasks_submitted");
}

bool ThreadPool::TryPopOwn(size_t index, std::function<void()>* task) {
  Queue& queue = *queues_[index];
  sync::MutexLock lock(&queue.mutex);
  if (queue.tasks.empty()) return false;
  *task = std::move(queue.tasks.front());
  queue.tasks.pop_front();
  return true;
}

bool ThreadPool::TrySteal(size_t thief, std::function<void()>* task) {
  const size_t n = queues_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    Queue& victim = *queues_[(thief + offset) % n];
    sync::MutexLock lock(&victim.mutex);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    PSC_OBS_COUNTER_INC("exec.steals");
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_index = index;
  tls_worker_pool = this;
  std::function<void()> task;
  while (true) {
    if (TryPopOwn(index, &task) || TrySteal(index, &task)) {
      unclaimed_.fetch_sub(1, std::memory_order_acquire);
      const uint64_t started = obs::TraceNowMicros();
      task();
      task = nullptr;  // release captured state promptly
      PSC_OBS_HISTOGRAM_RECORD("exec.task_micros",
                               obs::TraceNowMicros() - started);
      PSC_OBS_COUNTER_INC("exec.tasks_executed");
      continue;
    }
    sync::MutexLock lock(&wake_mutex_);
    while (!stopping_.load(std::memory_order_relaxed) &&
           unclaimed_.load(std::memory_order_acquire) == 0) {
      wake_cv_.Wait(wake_mutex_);
    }
    if (stopping_.load(std::memory_order_relaxed) &&
        unclaimed_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace exec
}  // namespace psc
