#ifndef PSC_EXEC_MEMO_CACHE_H_
#define PSC_EXEC_MEMO_CACHE_H_

/// \file
/// Sharded-lock memoization cache.
///
/// A string-keyed concurrent map split over independently locked shards so
/// hot read-mostly workloads (repeated containment tests during rewriting
/// and query minimization) scale across pool workers. Entries are
/// immutable once inserted: the first writer wins and later inserts of the
/// same key are no-ops, which keeps lookups of deterministic computations
/// (same key ⟹ same value) race-free by construction.

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace psc {
namespace exec {

template <typename Value>
class ShardedMemoCache {
 public:
  /// `num_shards` is rounded up to at least 1; 16 suits the solver stack
  /// (lock hold times are a hash map probe).
  explicit ShardedMemoCache(size_t num_shards = 16) {
    const size_t n = num_shards == 0 ? 1 : num_shards;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedMemoCache(const ShardedMemoCache&) = delete;
  ShardedMemoCache& operator=(const ShardedMemoCache&) = delete;

  std::optional<Value> Lookup(const std::string& key) const {
    const Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// First writer wins; concurrent inserts of one key are benign because
  /// cached computations are deterministic functions of the key.
  void Insert(const std::string& key, Value value) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(key, std::move(value));
  }

  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->map.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Value> map;
  };

  Shard& ShardOf(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace exec
}  // namespace psc

#endif  // PSC_EXEC_MEMO_CACHE_H_
