#ifndef PSC_EXEC_MEMO_CACHE_H_
#define PSC_EXEC_MEMO_CACHE_H_

/// \file
/// Sharded-lock memoization cache with an optional size cap.
///
/// A string-keyed concurrent map split over independently locked shards so
/// hot read-mostly workloads (repeated containment tests during rewriting
/// and query minimization, compiled query plans) scale across pool
/// workers. Entries are immutable once inserted: the first writer wins and
/// later inserts of the same key are no-ops, which keeps lookups of
/// deterministic computations (same key ⟹ same value) race-free by
/// construction.
///
/// Long-lived processes (the pscd service) must not let these caches grow
/// without bound, so a cache can be capped with `SetCapacity`: each shard
/// keeps its entries in insertion order and evicts the oldest ones once it
/// exceeds its share of the cap. FIFO rather than LRU keeps the hot lookup
/// path lock-held time at a single hash probe — no recency bookkeeping —
/// and is a fine fit for memoized *computations*, where any evicted entry
/// is recomputable at a bounded, known cost. `Insert` reports how many
/// entries it evicted so call sites can feed their own eviction counters.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/sync/mutex.h"

namespace psc {
namespace exec {

template <typename Value>
class ShardedMemoCache {
 public:
  /// `num_shards` is rounded up to at least 1; 16 suits the solver stack
  /// (lock hold times are a hash map probe). `capacity` caps the total
  /// entry count across shards; 0 means unbounded.
  explicit ShardedMemoCache(size_t num_shards = 16, size_t capacity = 0) {
    const size_t n = num_shards == 0 ? 1 : num_shards;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    SetCapacity(capacity);
  }

  ShardedMemoCache(const ShardedMemoCache&) = delete;
  ShardedMemoCache& operator=(const ShardedMemoCache&) = delete;

  std::optional<Value> Lookup(const std::string& key) const {
    Shard& shard = ShardOf(key);
    sync::MutexLock lock(&shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// First writer wins; concurrent inserts of one key are benign because
  /// cached computations are deterministic functions of the key. Returns
  /// the number of entries evicted to stay within the capacity (0 when
  /// uncapped or the insert was a duplicate no-op).
  size_t Insert(const std::string& key, Value value) {
    Shard& shard = ShardOf(key);
    sync::MutexLock lock(&shard.mutex);
    const auto [it, inserted] = shard.map.emplace(key, std::move(value));
    if (!inserted) return 0;
    shard.order.push_back(it->first);
    return TrimLocked(shard);
  }

  /// Caps the total entry count (0 = unbounded) and evicts immediately if
  /// shards already exceed their share. Returns the entries evicted by the
  /// resize itself. Thread-safe; concurrent inserts see the new cap on
  /// their next trim.
  size_t SetCapacity(size_t capacity) {
    // Ceil-divide so `capacity` total entries always fit; a tiny nonzero
    // cap keeps at least one entry per shard.
    const size_t per_shard =
        capacity == 0 ? 0 : (capacity + shards_.size() - 1) / shards_.size();
    per_shard_capacity_.store(per_shard, std::memory_order_relaxed);
    size_t evicted = 0;
    for (const auto& shard : shards_) {
      sync::MutexLock lock(&shard->mutex);
      evicted += TrimLocked(*shard);
    }
    return evicted;
  }

  /// The configured total cap (0 = unbounded), as rounded up to a whole
  /// number of per-shard entries.
  size_t capacity() const {
    return per_shard_capacity_.load(std::memory_order_relaxed) *
           shards_.size();
  }

  void Clear() {
    for (const auto& shard : shards_) {
      sync::MutexLock lock(&shard->mutex);
      shard->map.clear();
      shard->order.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      sync::MutexLock lock(&shard->mutex);
      total += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    sync::Mutex mutex{"exec.memo_shard", sync::kRankMemoShard};
    std::unordered_map<std::string, Value> map PSC_GUARDED_BY(mutex);
    /// Keys in insertion order; front() is the next eviction victim.
    /// Stores copies: unordered_map references stay valid under erase of
    /// *other* keys, but the deque must outlive its map entry anyway when
    /// that entry is the one being evicted.
    std::deque<std::string> order PSC_GUARDED_BY(mutex);
  };

  /// Evicts oldest entries until the shard respects the per-shard cap.
  size_t TrimLocked(Shard& shard) PSC_REQUIRES(shard.mutex) {
    const size_t cap = per_shard_capacity_.load(std::memory_order_relaxed);
    if (cap == 0) return 0;
    size_t evicted = 0;
    while (shard.map.size() > cap && !shard.order.empty()) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      ++evicted;
    }
    return evicted;
  }

  Shard& ShardOf(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard entry cap derived from the total capacity; 0 = unbounded.
  std::atomic<size_t> per_shard_capacity_{0};
};

}  // namespace exec
}  // namespace psc

#endif  // PSC_EXEC_MEMO_CACHE_H_
