#include "psc/rewriting/bucket_rewriter.h"

#include <map>
#include <set>

#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/rewriting/containment.h"
#include "psc/tableau/tableau.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// One bucket entry: source `source` can cover the subgoal through body
/// atom `body_atom`, with view variables bound to query terms by `psi`.
struct Usage {
  size_t source = 0;
  Substitution psi;  // view variable → query term
};

/// Query variables that must be exposed through view heads: head
/// variables plus variables occurring in more than one relational subgoal
/// (join variables) plus variables used by built-ins.
std::set<std::string> SharedQueryVariables(const ConjunctiveQuery& query) {
  std::set<std::string> shared = query.head().Variables();
  std::map<std::string, int> subgoal_counts;
  for (const Atom& atom : query.relational_body()) {
    for (const std::string& var : atom.Variables()) {
      ++subgoal_counts[var];
    }
  }
  for (const auto& [var, count] : subgoal_counts) {
    if (count > 1) shared.insert(var);
  }
  for (const Atom& builtin : query.builtin_body()) {
    for (const std::string& var : builtin.Variables()) shared.insert(var);
  }
  return shared;
}

/// Tries to cover query subgoal `goal` with `body_atom` of `view`.
std::optional<Usage> TryCover(const ConjunctiveQuery& query,
                              const Atom& goal, size_t source_index,
                              const ConjunctiveQuery& view,
                              const Atom& body_atom,
                              const std::set<std::string>& shared) {
  if (body_atom.predicate() != goal.predicate() ||
      body_atom.arity() != goal.arity()) {
    return std::nullopt;
  }
  const std::set<std::string> distinguished = view.head().Variables();
  Usage usage;
  usage.source = source_index;
  for (size_t pos = 0; pos < goal.arity(); ++pos) {
    const Term& query_term = goal.terms()[pos];
    const Term& view_term = body_atom.terms()[pos];
    if (view_term.is_constant()) {
      // The view fixes this column; a differing query constant can never
      // match. A query variable is fine (the expansion is more specific,
      // which containment checking will confirm).
      if (query_term.is_constant() &&
          query_term.constant() != view_term.constant()) {
        return std::nullopt;
      }
      continue;
    }
    const bool exposed = distinguished.count(view_term.var_name()) > 0;
    if (!exposed) {
      // An existential view variable can only absorb a query variable
      // that is local to this subgoal (not joined, projected or
      // filtered) — otherwise the binding is lost behind the view head.
      if (query_term.is_constant() ||
          shared.count(query_term.var_name()) > 0) {
        return std::nullopt;
      }
    }
    auto [it, inserted] = usage.psi.emplace(view_term.var_name(), query_term);
    if (!inserted && it->second != query_term) return std::nullopt;
  }
  (void)query;
  return usage;
}

}  // namespace

BucketRewriter::BucketRewriter(const SourceCollection* collection)
    : collection_(collection) {
  PSC_CHECK(collection_ != nullptr);
}

Result<std::vector<Rewriting>> BucketRewriter::Rewrite(
    const ConjunctiveQuery& query, uint64_t max_candidates) const {
  PSC_OBS_SPAN("rewriting.rewrite");
  const std::set<std::string> shared = SharedQueryVariables(query);
  const std::vector<Atom>& subgoals = query.relational_body();
  if (subgoals.empty()) {
    return Status::Unimplemented(
        "rewriting requires at least one relational subgoal");
  }

  // Build the buckets.
  std::vector<std::vector<Usage>> buckets(subgoals.size());
  for (size_t g = 0; g < subgoals.size(); ++g) {
    for (size_t i = 0; i < collection_->size(); ++i) {
      const ConjunctiveQuery& view = collection_->source(i).view();
      for (const Atom& body_atom : view.relational_body()) {
        std::optional<Usage> usage =
            TryCover(query, subgoals[g], i, view, body_atom, shared);
        if (usage.has_value()) {
          PSC_OBS_COUNTER_INC("rewriting.buckets_filled");
          buckets[g].push_back(std::move(*usage));
        }
      }
    }
    if (buckets[g].empty()) return std::vector<Rewriting>{};  // uncoverable
  }

  // Combine one usage per bucket.
  std::vector<Rewriting> rewritings;
  std::set<std::set<Atom>> seen_bodies;
  std::vector<size_t> choice(subgoals.size(), 0);
  uint64_t visited = 0;
  while (true) {
    if (++visited > max_candidates) break;
    PSC_OBS_COUNTER_INC("rewriting.candidates_tried");

    // Assemble the candidate's body atoms (one per usage, deduplicated)
    // and its expansion.
    std::vector<Atom> body;
    std::vector<size_t> sources_used;
    std::vector<Atom> expansion_body;
    std::set<Atom> body_set;
    bool viable = true;
    for (size_t g = 0; g < subgoals.size() && viable; ++g) {
      const Usage& usage = buckets[g][choice[g]];
      const SourceDescriptor& source = collection_->source(usage.source);
      const ConjunctiveQuery& view = source.view();
      // Head atom over the (unique) source name; unmapped head variables
      // become fresh variables scoped per (subgoal, source).
      Substitution head_subst = usage.psi;
      for (const std::string& var : view.Variables()) {
        if (head_subst.count(var) == 0) {
          head_subst[var] =
              Term::Var(StrCat("$r", g, "_", usage.source, "_", var));
        }
      }
      const Atom head_atom =
          ApplySubstitution(Atom(source.name(), view.head().terms()),
                            head_subst);
      if (body_set.insert(head_atom).second) {
        body.push_back(head_atom);
        sources_used.push_back(usage.source);
        // The expansion inlines the view body under the same renaming.
        for (const Atom& atom : view.body()) {
          expansion_body.push_back(ApplySubstitution(atom, head_subst));
        }
      }
    }

    if (viable) {
      auto over_views = ConjunctiveQuery::Create(query.head(), body);
      auto expansion =
          ConjunctiveQuery::Create(query.head(), expansion_body);
      if (over_views.ok() && expansion.ok() &&
          seen_bodies.insert(body_set).second) {
        auto contained = IsContainedIn(*expansion, query);
        if (!contained.ok()) return contained.status();
        if (*contained) {
          PSC_OBS_COUNTER_INC("rewriting.rewritings_emitted");
          rewritings.push_back(Rewriting{std::move(*over_views),
                                         std::move(*expansion),
                                         std::move(sources_used)});
        }
      }
    }

    // Advance the odometer over bucket choices.
    size_t g = subgoals.size();
    bool advanced = false;
    while (g-- > 0) {
      if (++choice[g] < buckets[g].size()) {
        advanced = true;
        break;
      }
      choice[g] = 0;
    }
    if (!advanced) break;
  }
  return rewritings;
}

Result<Relation> BucketRewriter::EvaluateOverExtensions(
    const Rewriting& rewriting) const {
  Database views_db;
  for (const size_t index : rewriting.sources) {
    const SourceDescriptor& source = collection_->source(index);
    for (const Tuple& tuple : source.extension()) {
      views_db.AddFact(source.name(), tuple);
    }
  }
  return rewriting.over_views.Evaluate(views_db);
}

Result<Relation> BucketRewriter::AnswerUsingViews(
    const ConjunctiveQuery& query, uint64_t max_candidates) const {
  PSC_ASSIGN_OR_RETURN(const std::vector<Rewriting> rewritings,
                       Rewrite(query, max_candidates));
  Relation answer;
  for (const Rewriting& rewriting : rewritings) {
    PSC_ASSIGN_OR_RETURN(const Relation partial,
                         EvaluateOverExtensions(rewriting));
    answer.insert(partial.begin(), partial.end());
  }
  return answer;
}

}  // namespace psc
