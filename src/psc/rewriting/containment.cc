#include "psc/rewriting/containment.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/exec/memo_cache.h"
#include "psc/obs/metrics.h"
#include "psc/relational/builtin.h"
#include "psc/tableau/tableau.h"
#include "psc/util/string_util.h"

namespace psc {

namespace {

/// Backtracking search for a homomorphism from `from` (Q₂) into `into`
/// (Q₁): a substitution on Q₂'s variables such that the head maps onto
/// Q₁'s head, every relational atom maps onto some relational atom of Q₁,
/// and every built-in is certified ground-true or verbatim-present.
class HomomorphismSearch {
 public:
  HomomorphismSearch(const ConjunctiveQuery& into,
                     const ConjunctiveQuery& from)
      : into_(into), from_(from) {}

  Result<bool> Run() {
    // Head alignment: h(head(from)) must equal head(into) positionally.
    if (from_.head().arity() != into_.head().arity()) {
      return Status::InvalidArgument(
          "containment requires equal head arities");
    }
    mapping_.clear();
    for (size_t pos = 0; pos < from_.head().arity(); ++pos) {
      if (!Bind(from_.head().terms()[pos], into_.head().terms()[pos])) {
        return false;
      }
    }
    return MatchAtom(0);
  }

 private:
  /// Binds a Q₂ term to a Q₁ term; false on clash.
  bool Bind(const Term& from_term, const Term& into_term) {
    if (from_term.is_constant()) {
      // Constants are fixed points of homomorphisms.
      return into_term.is_constant() &&
             from_term.constant() == into_term.constant();
    }
    auto [it, inserted] = mapping_.emplace(from_term.var_name(), into_term);
    return inserted || it->second == into_term;
  }

  Result<bool> MatchAtom(size_t index) {
    if (index == from_.relational_body().size()) return CheckBuiltins();
    const Atom& atom = from_.relational_body()[index];
    for (const Atom& target : into_.relational_body()) {
      if (target.predicate() != atom.predicate() ||
          target.arity() != atom.arity()) {
        continue;
      }
      const Substitution saved = mapping_;
      bool ok = true;
      for (size_t pos = 0; pos < atom.arity() && ok; ++pos) {
        ok = Bind(atom.terms()[pos], target.terms()[pos]);
      }
      if (ok) {
        PSC_ASSIGN_OR_RETURN(const bool found, MatchAtom(index + 1));
        if (found) return true;
      }
      mapping_ = saved;
    }
    return false;
  }

  Result<bool> CheckBuiltins() {
    for (const Atom& builtin : from_.builtin_body()) {
      const Atom mapped = ApplySubstitution(builtin, mapping_);
      if (mapped.IsGround()) {
        std::vector<Value> args;
        for (const Term& term : mapped.terms()) {
          args.push_back(term.constant());
        }
        PSC_ASSIGN_OR_RETURN(const bool holds,
                             EvalBuiltin(mapped.predicate(), args));
        if (holds) continue;
        return false;
      }
      // Not ground: accept only a verbatim occurrence among Q₁'s
      // built-ins (sound; see header).
      bool found = false;
      for (const Atom& candidate : into_.builtin_body()) {
        if (candidate == mapped) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  const ConjunctiveQuery& into_;
  const ConjunctiveQuery& from_;
  Substitution mapping_;
};

/// Appends a canonical rendering of `query`: variables are renamed v0,v1,…
/// in first-occurrence order over head, relational body, then built-ins.
/// Renaming is a bijection on variables, so two queries with equal
/// canonical forms are alpha-equivalent and containment verdicts transfer
/// verbatim — which is what makes the canonical pair a sound cache key.
void AppendCanonicalQuery(const ConjunctiveQuery& query, std::string* out) {
  std::unordered_map<std::string, std::string> names;
  auto append_term = [&](const Term& term) {
    if (term.is_constant()) {
      out->append("c:");
      out->append(term.constant().ToString());
    } else {
      const auto [it, inserted] =
          names.emplace(term.var_name(), StrCat("v", names.size()));
      out->append(it->second);
    }
  };
  auto append_atom = [&](const Atom& atom) {
    out->append(atom.predicate());
    out->push_back('(');
    for (const Term& term : atom.terms()) {
      append_term(term);
      out->push_back(',');
    }
    out->push_back(')');
  };
  append_atom(query.head());
  out->append(":-");
  for (const Atom& atom : query.relational_body()) append_atom(atom);
  out->push_back('|');
  for (const Atom& atom : query.builtin_body()) append_atom(atom);
}

std::string ContainmentKey(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  std::string key;
  AppendCanonicalQuery(q1, &key);
  key.append("\xE2\x8A\x91");  // "⊑"
  AppendCanonicalQuery(q2, &key);
  return key;
}

exec::ShardedMemoCache<bool>& ContainmentCache() {
  static exec::ShardedMemoCache<bool>* cache =
      new exec::ShardedMemoCache<bool>(16);
  return *cache;
}

}  // namespace

Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  PSC_OBS_COUNTER_INC("rewriting.containment_checks");
  const std::string key = ContainmentKey(q1, q2);
  if (const std::optional<bool> hit = ContainmentCache().Lookup(key);
      hit.has_value()) {
    PSC_OBS_COUNTER_INC("rewriting.containment_cache_hits");
    return *hit;
  }
  PSC_OBS_COUNTER_INC("rewriting.containment_cache_misses");
  HomomorphismSearch search(q1, q2);
  Result<bool> verdict = search.Run();
  // Only ok verdicts are cached: error statuses (e.g. arity mismatch)
  // stay cheap to recompute and keep the cache value type trivial.
  if (verdict.ok()) {
    const size_t evicted = ContainmentCache().Insert(key, *verdict);
    if (evicted > 0) {
      PSC_OBS_COUNTER_ADD("rewriting.memo_evictions", evicted);
    }
  }
  return verdict;
}

void ClearContainmentCache() { ContainmentCache().Clear(); }

size_t ContainmentCacheSize() { return ContainmentCache().size(); }

void SetContainmentCacheCapacity(size_t capacity) {
  const size_t evicted = ContainmentCache().SetCapacity(capacity);
  if (evicted > 0) {
    PSC_OBS_COUNTER_ADD("rewriting.memo_evictions", evicted);
  }
}

size_t ContainmentCacheCapacity() { return ContainmentCache().capacity(); }

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  PSC_ASSIGN_OR_RETURN(const bool forward, IsContainedIn(q1, q2));
  if (!forward) return false;
  return IsContainedIn(q2, q1);
}

Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query) {
  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Atom>& relational = current.relational_body();
    for (size_t drop = 0; drop < relational.size(); ++drop) {
      std::vector<Atom> body;
      for (size_t i = 0; i < relational.size(); ++i) {
        if (i != drop) body.push_back(relational[i]);
      }
      for (const Atom& builtin : current.builtin_body()) {
        body.push_back(builtin);
      }
      auto candidate = ConjunctiveQuery::Create(current.head(), body);
      if (!candidate.ok()) continue;  // dropping breaks safety
      // Dropping an atom only weakens the query (candidate ⊒ current);
      // adopt when the reverse containment also holds.
      PSC_ASSIGN_OR_RETURN(const bool contained,
                           IsContainedIn(*candidate, current));
      if (contained) {
        current = std::move(*candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace psc
