#ifndef PSC_REWRITING_CONTAINMENT_H_
#define PSC_REWRITING_CONTAINMENT_H_

#include <cstddef>

#include "psc/relational/conjunctive_query.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Conjunctive-query containment Q₁ ⊑ Q₂ (every database D has
/// Q₁(D) ⊆ Q₂(D)), decided by the classic Chandra–Merlin homomorphism
/// criterion: Q₁ ⊑ Q₂ iff there is a homomorphism from Q₂ into Q₁ that
/// maps head(Q₂) onto head(Q₁).
///
/// This is the foundation of view-based query answering (the Information
/// Manifold line of work the paper builds on): a rewriting over sound
/// views is usable exactly when its expansion is contained in the query.
///
/// Built-ins make containment Π₂ᵖ-hard in general; this test stays sound
/// by accepting a Q₂ built-in only when, under the homomorphism, it
/// either (a) becomes ground and evaluates to true, or (b) appears
/// verbatim among Q₁'s built-ins. A `false` answer with built-ins
/// therefore means "not provably contained", never "provably not".
/// For built-in-free queries the test is exact.
///
/// Verdicts are memoized in a process-wide sharded cache keyed by the
/// *canonical* form of the pair (variables renamed by first occurrence),
/// so alpha-equivalent pairs — the common case during bucket rewriting,
/// where the same view expansion is tested against many candidates — hit
/// the cache. The cache is thread-safe and bounded only by the queries a
/// process actually poses; `ClearContainmentCache` resets it. Because a
/// verdict depends only on the two query bodies — never on any database
/// or view extension — the memo needs *no* invalidation when sources
/// drift: `delta::IncrementalSystem` leaves it untouched across every
/// `ApplyDelta` (see psc/delta/incremental.h).
Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

/// Drops every memoized containment verdict (mainly for tests/benchmarks).
void ClearContainmentCache();

/// Number of memoized containment verdicts currently cached.
size_t ContainmentCacheSize();

/// \brief Caps the containment memo entry count (0 = unbounded, the
/// default). A resident pscd re-poses containment tests for as long as it
/// lives, so the memo must be boundable; over the cap the oldest verdicts
/// are evicted FIFO (and recomputed on next use — verdicts are pure
/// functions of the canonical query pair). Every eviction increments the
/// `rewriting.memo_evictions` counter. Thread-safe.
void SetContainmentCacheCapacity(size_t capacity);
size_t ContainmentCacheCapacity();

/// Q₁ ≡ Q₂: containment in both directions.
Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

/// \brief Minimizes a query by removing redundant relational body atoms
/// (computes a core): repeatedly drops an atom when the smaller query is
/// provably equivalent and still safe. With built-ins the result may not
/// be a true core (the containment test is conservative), but it is
/// always equivalent to the input.
Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query);

}  // namespace psc

#endif  // PSC_REWRITING_CONTAINMENT_H_
