#ifndef PSC_REWRITING_BUCKET_REWRITER_H_
#define PSC_REWRITING_BUCKET_REWRITER_H_

#include <cstdint>
#include <vector>

#include "psc/relational/conjunctive_query.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A sound rewriting of a global-schema query over source views.
struct Rewriting {
  /// The rewriting itself: head(Q) ← S_{i₁}(…), …, S_{i_k}(…), with one
  /// body atom per used source, named by the *source* (names are unique
  /// in a collection; view-head names need not be).
  ConjunctiveQuery over_views;
  /// Its unfolding over the global schema (view bodies substituted in,
  /// existentials renamed apart). Guaranteed contained in the query.
  ConjunctiveQuery expansion;
  /// Indexes of the sources used, parallel to over_views' body atoms.
  std::vector<size_t> sources;
};

/// \brief View-based query rewriting in the style of the Information
/// Manifold's bucket algorithm — the LAV machinery the paper's framework
/// builds upon (Related Work: "the answer computed by the Information
/// Manifold algorithm coincides with the certain answer" for sound
/// views).
///
/// For each relational subgoal of the query, a *bucket* collects the view
/// atoms that can cover it (unifiable, with every distinguished-or-shared
/// query variable exposed through the view head). One usage per subgoal
/// is combined into a candidate, which is kept iff its expansion is
/// provably contained in the query (see containment.h; conservative with
/// built-ins).
///
/// Semantics under the paper's model: evaluating a rewriting over the
/// view *extensions* returns, for every possible world D in which each
/// used source is sound (vᵢ ⊆ φᵢ(D)), a subset of Q(D). With sᵢ = 1 for
/// the used sources these are certain answers; with partial soundness
/// they are answers "supported by the sources' claims" and their
/// confidence can be assessed with the Section 5 machinery.
class BucketRewriter {
 public:
  /// `collection` must outlive the rewriter.
  explicit BucketRewriter(const SourceCollection* collection);

  /// \brief Generates all sound rewritings (deduplicated), visiting at
  /// most `max_candidates` bucket combinations.
  Result<std::vector<Rewriting>> Rewrite(const ConjunctiveQuery& query,
                                         uint64_t max_candidates = 4096) const;

  /// \brief Evaluates a rewriting over the sources' current extensions.
  Result<Relation> EvaluateOverExtensions(const Rewriting& rewriting) const;

  /// \brief Union of all rewritings' answers over the extensions — the
  /// view-based answer to `query`.
  Result<Relation> AnswerUsingViews(const ConjunctiveQuery& query,
                                    uint64_t max_candidates = 4096) const;

 private:
  const SourceCollection* collection_;
};

}  // namespace psc

#endif  // PSC_REWRITING_BUCKET_REWRITER_H_
