#include "psc/consistency/identity_consistency.h"

#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/combinatorics.h"

namespace psc {

Result<IdentityConsistencyReport> CheckIdentityConsistency(
    const SourceCollection& collection, uint64_t max_shapes,
    const limits::Budget& budget) {
  PSC_OBS_SPAN("consistency.identity_check");
  PSC_ASSIGN_OR_RETURN(const IdentityInstance instance,
                       IdentityInstance::CreateOverExtensions(collection));
  BinomialTable binomials;
  SignatureCounter counter(&instance, &binomials);
  IdentityConsistencyReport report;
  PSC_ASSIGN_OR_RETURN(
      const std::optional<WorldShape> shape,
      counter.FirstFeasibleShape(max_shapes, &report.visited_shapes, budget));
  PSC_OBS_COUNTER_ADD("consistency.nodes_expanded", report.visited_shapes);
  if (!shape.has_value()) {
    report.consistent = false;
    return report;
  }
  report.consistent = true;
  // Materialize a witness: the lexicographically first members per group.
  Database witness;
  const auto& groups = instance.groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int64_t j = 0; j < shape->counts[g]; ++j) {
      const size_t member = groups[g].members[static_cast<size_t>(j)];
      witness.AddFact(instance.relation(), instance.universe()[member]);
    }
  }
  report.witness = std::move(witness);
  return report;
}

}  // namespace psc
