#include "psc/consistency/possible_worlds.h"

#include "psc/obs/metrics.h"
#include "psc/util/string_util.h"

namespace psc {

BruteForceWorldEnumerator::BruteForceWorldEnumerator(
    const SourceCollection* collection, std::vector<Value> domain)
    : BruteForceWorldEnumerator(collection, std::move(domain), Options()) {}

BruteForceWorldEnumerator::BruteForceWorldEnumerator(
    const SourceCollection* collection, std::vector<Value> domain,
    Options options)
    : collection_(collection), domain_(std::move(domain)), options_(options) {
  PSC_CHECK(collection_ != nullptr);
}

Result<std::vector<Fact>> BruteForceWorldEnumerator::Universe() const {
  // The subset enumeration is 2^N, so the universe itself must stay below
  // max_universe_bits facts.
  PSC_ASSIGN_OR_RETURN(std::vector<Fact> universe,
                       EnumerateFactUniverse(collection_->schema(), domain_,
                                             options_.max_universe_bits));
  return universe;
}

Result<bool> BruteForceWorldEnumerator::ForEachPossibleWorld(
    const std::function<bool(const Database&)>& fn) const {
  PSC_ASSIGN_OR_RETURN(const std::vector<Fact> universe, Universe());
  const uint64_t limit = uint64_t{1} << universe.size();
  const limits::Budget& budget = options_.budget;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (!budget.Charge()) return budget.ToStatus();
    Database db;
    for (size_t j = 0; j < universe.size(); ++j) {
      if ((mask >> j) & 1) db.AddFact(universe[j]);
    }
    PSC_OBS_COUNTER_INC("brute_force.worlds_checked");
    PSC_ASSIGN_OR_RETURN(const bool possible,
                         collection_->IsPossibleWorld(db));
    if (possible) PSC_OBS_COUNTER_INC("brute_force.possible_worlds");
    if (possible && !fn(db)) return false;
  }
  return true;
}

Result<std::vector<Database>> BruteForceWorldEnumerator::CollectPossibleWorlds(
    size_t max_worlds) const {
  // The materialization cap is a node budget over collected worlds — the
  // same cooperative mechanism callers use for deadlines, so a tripped
  // budget and a tripped cap surface through one code path.
  const limits::Budget cap = limits::Budget::WithNodeBudget(max_worlds);
  std::vector<Database> worlds;
  PSC_ASSIGN_OR_RETURN(const bool completed,
                       ForEachPossibleWorld([&](const Database& db) {
                         if (!cap.Charge()) return false;
                         worlds.push_back(db);
                         return true;
                       }));
  if (!completed && cap.reason() != limits::StopReason::kNone) {
    return Status::ResourceExhausted(
        StrCat("more than ", max_worlds, " possible worlds"));
  }
  return worlds;
}

Result<uint64_t> BruteForceWorldEnumerator::CountPossibleWorlds() const {
  uint64_t count = 0;
  PSC_RETURN_NOT_OK(ForEachPossibleWorld([&](const Database&) {
                      ++count;
                      return true;
                    }).status());
  return count;
}

}  // namespace psc
