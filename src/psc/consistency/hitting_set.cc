#include "psc/consistency/hitting_set.h"

#include <algorithm>
#include <set>

#include "psc/consistency/identity_consistency.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/string_util.h"

namespace psc {

Status HittingSetInstance::Validate() const {
  if (universe_size < 0) return Status::InvalidArgument("negative universe");
  if (budget < 0) return Status::InvalidArgument("negative budget");
  for (size_t i = 0; i < subsets.size(); ++i) {
    if (subsets[i].empty()) {
      return Status::InvalidArgument(
          StrCat("subset A", i + 1, " is empty and can never be hit"));
    }
    std::set<int64_t> seen;
    for (const int64_t element : subsets[i]) {
      if (element < 0 || element >= universe_size) {
        return Status::InvalidArgument(
            StrCat("element ", element, " of subset A", i + 1,
                   " outside the universe [0, ", universe_size, ")"));
      }
      if (!seen.insert(element).second) {
        return Status::InvalidArgument(
            StrCat("duplicate element ", element, " in subset A", i + 1));
      }
    }
  }
  return Status::OK();
}

bool HittingSetInstance::IsHsStar() const {
  return !subsets.empty() && subsets.back().size() == 1;
}

std::string HittingSetInstance::ToString() const {
  std::vector<std::string> parts;
  for (const std::vector<int64_t>& subset : subsets) {
    std::vector<std::string> elements;
    elements.reserve(subset.size());
    for (const int64_t element : subset) {
      elements.push_back(std::to_string(element));
    }
    parts.push_back(StrCat("{", Join(elements, ","), "}"));
  }
  return StrCat("HS(|S|=", universe_size, ", K=", budget, ", C=[",
                Join(parts, ", "), "])");
}

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const HittingSetInstance& instance, uint64_t max_nodes)
      : instance_(instance), max_nodes_(max_nodes) {}

  Result<HittingSetSolution> Run() {
    HittingSetSolution solution;
    PSC_ASSIGN_OR_RETURN(solution.solvable, Recurse());
    if (solution.solvable) {
      solution.hitting_set.assign(chosen_.begin(), chosen_.end());
    }
    solution.nodes_expanded = nodes_;
    return solution;
  }

 private:
  Result<bool> Recurse() {
    if (++nodes_ > max_nodes_) {
      return Status::ResourceExhausted(
          StrCat("branch-and-bound exceeded ", max_nodes_, " nodes"));
    }
    // Pick the smallest subset not yet hit (fail-first branching).
    const std::vector<int64_t>* target = nullptr;
    for (const std::vector<int64_t>& subset : instance_.subsets) {
      bool hit = false;
      for (const int64_t element : subset) {
        if (chosen_.count(element) > 0) {
          hit = true;
          break;
        }
      }
      if (hit) continue;
      if (target == nullptr || subset.size() < target->size()) {
        target = &subset;
      }
    }
    if (target == nullptr) return true;  // everything hit
    if (static_cast<int64_t>(chosen_.size()) >= instance_.budget) {
      return false;  // cannot afford another element
    }
    for (const int64_t element : *target) {
      chosen_.insert(element);
      PSC_ASSIGN_OR_RETURN(const bool solved, Recurse());
      if (solved) return true;
      chosen_.erase(element);
    }
    return false;
  }

  const HittingSetInstance& instance_;
  const uint64_t max_nodes_;
  std::set<int64_t> chosen_;
  uint64_t nodes_ = 0;
};

}  // namespace

Result<HittingSetSolution> SolveHittingSet(const HittingSetInstance& instance,
                                           uint64_t max_nodes) {
  PSC_OBS_SPAN("hitting_set.solve");
  PSC_RETURN_NOT_OK(instance.Validate());
  BranchAndBound solver(instance, max_nodes);
  PSC_ASSIGN_OR_RETURN(HittingSetSolution solution, solver.Run());
  PSC_OBS_COUNTER_ADD("hitting_set.nodes_expanded", solution.nodes_expanded);
  return solution;
}

HittingSetInstance ReduceHsToHsStar(const HittingSetInstance& instance) {
  HittingSetInstance star = instance;
  const int64_t fresh = star.universe_size;
  star.universe_size += 1;
  star.subsets.push_back({fresh});
  star.budget += 1;
  return star;
}

Result<SourceCollection> ReduceHsStarToConsistency(
    const HittingSetInstance& instance) {
  PSC_OBS_SPAN("hitting_set.reduce");
  PSC_OBS_COUNTER_INC("hitting_set.reductions");
  PSC_RETURN_NOT_OK(instance.Validate());
  if (!instance.IsHsStar()) {
    return Status::InvalidArgument(
        "instance does not satisfy the HS* promise (last subset must be a "
        "singleton)");
  }
  if (instance.budget < 1) {
    return Status::InvalidArgument(
        "HS* instances need budget K >= 1 (the singleton subset must be "
        "hit)");
  }
  std::vector<SourceDescriptor> sources;
  sources.reserve(instance.subsets.size());
  for (size_t i = 0; i < instance.subsets.size(); ++i) {
    const std::vector<int64_t>& subset = instance.subsets[i];
    Relation extension;
    for (const int64_t element : subset) {
      extension.insert(Tuple{Value(element)});
    }
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor source,
        SourceDescriptor::Create(
            StrCat("S", i + 1), ConjunctiveQuery::Identity("R", 1),
            std::move(extension),
            /*completeness=*/Rational(1, instance.budget),
            /*soundness=*/Rational(1, static_cast<int64_t>(subset.size()))));
    sources.push_back(std::move(source));
  }
  return SourceCollection::Create(std::move(sources));
}

Result<HittingSetSolution> SolveHittingSetViaConsistency(
    const HittingSetInstance& instance, uint64_t max_shapes) {
  PSC_RETURN_NOT_OK(instance.Validate());
  const HittingSetInstance star = ReduceHsToHsStar(instance);
  PSC_ASSIGN_OR_RETURN(const SourceCollection collection,
                       ReduceHsStarToConsistency(star));
  PSC_ASSIGN_OR_RETURN(const IdentityConsistencyReport report,
                       CheckIdentityConsistency(collection, max_shapes));
  HittingSetSolution solution;
  solution.nodes_expanded = report.visited_shapes;
  solution.solvable = report.consistent;
  PSC_OBS_COUNTER_ADD("hitting_set.nodes_expanded", solution.nodes_expanded);
  if (!report.consistent) return solution;

  // Map the witness world back: A = {a : R(a) ∈ D}, minus the fresh element
  // introduced by the HS → HS* step (Lemma 3.3).
  PSC_CHECK(report.witness.has_value());
  const int64_t fresh = instance.universe_size;
  for (const Fact& fact : report.witness->AllFacts()) {
    const int64_t element = fact.tuple()[0].AsInt();
    if (element != fresh) solution.hitting_set.push_back(element);
  }
  std::sort(solution.hitting_set.begin(), solution.hitting_set.end());
  return solution;
}

}  // namespace psc
