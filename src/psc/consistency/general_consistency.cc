#include "psc/consistency/general_consistency.h"

#include <algorithm>

#include "psc/consistency/identity_consistency.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/tableau/template_builder.h"
#include "psc/util/string_util.h"

namespace psc {

const char* ConsistencyVerdictToString(ConsistencyVerdict verdict) {
  switch (verdict) {
    case ConsistencyVerdict::kConsistent:
      return "CONSISTENT";
    case ConsistencyVerdict::kInconsistent:
      return "INCONSISTENT";
    case ConsistencyVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

namespace {

/// Canonical-freeze pass: try every allowable combination's frozen tableau
/// as a concrete witness. Sound for acceptance only.
Result<std::optional<Database>> TryCanonicalFreeze(
    const SourceCollection& collection,
    const GeneralConsistencyChecker::Options& options,
    ConsistencyReport* report, bool* hit_limits) {
  TemplateBuilder builder(&collection);
  std::optional<Database> witness;
  Status deferred_error;
  PSC_ASSIGN_OR_RETURN(
      const bool completed,
      builder.ForEachAllowableCombination([&](const Combination& combination) {
        if (report->combinations_tried >= options.max_combinations) {
          *hit_limits = true;
          return false;
        }
        ++report->combinations_tried;
        PSC_OBS_COUNTER_INC("consistency.combinations_tried");
        auto built = builder.BuildTableau(combination);
        if (!built.ok()) {
          if (built.status().code() == StatusCode::kUnimplemented) {
            // A built-in constrains an existential variable; this
            // combination cannot be frozen faithfully.
            *hit_limits = true;
            return true;
          }
          deferred_error = built.status();
          return false;
        }
        if (!built->has_value()) return true;  // rep(𝒯^U) = ∅

        // Two candidates: merged freezing reuses constants already forced
        // by other sources (needed under exact catalogs), fresh freezing
        // keeps existential witnesses distinct. Acceptance is verified, so
        // trying both is sound.
        Database candidates[2] = {FreezeTableauWithGroundMerge(**built),
                                  FreezeTableau(**built)};
        const size_t tries = candidates[0] == candidates[1] ? 1 : 2;
        for (size_t t = 0; t < tries; ++t) {
          ++report->candidates_checked;
          PSC_OBS_COUNTER_INC("consistency.candidates_checked");
          auto possible = collection.IsPossibleWorld(candidates[t]);
          if (!possible.ok()) {
            deferred_error = possible.status();
            return false;
          }
          if (*possible) {
            witness = std::move(candidates[t]);
            return false;
          }
        }
        return true;
      }));
  if (!completed && !deferred_error.ok()) return deferred_error;
  return witness;
}

}  // namespace

Result<ConsistencyReport> GeneralConsistencyChecker::Check(
    const SourceCollection& collection) const {
  PSC_OBS_SPAN("consistency.check");
  PSC_OBS_COUNTER_INC("consistency.checks");
  ConsistencyReport report;

  if (collection.size() == 0) {
    // No constraints: every database (e.g. the empty one) is possible.
    report.verdict = ConsistencyVerdict::kConsistent;
    report.witness = Database();
    report.method = "trivial";
    return report;
  }

  // Strategy 1: exact identity-view decision procedure.
  if (collection.AllIdentityViews()) {
    auto identity = CheckIdentityConsistency(collection, options_.max_shapes);
    if (identity.ok()) {
      report.method = "identity-counter";
      report.verdict = identity->consistent ? ConsistencyVerdict::kConsistent
                                            : ConsistencyVerdict::kInconsistent;
      report.witness = identity->witness;
      if (report.witness.has_value()) {
        PSC_OBS_GAUGE_SET("consistency.witness_facts",
                          report.witness->AllFacts().size());
      }
      return report;
    }
    if (identity.status().code() != StatusCode::kResourceExhausted) {
      return identity.status();
    }
    report.unknown_reason = identity.status().message();
    return report;
  }

  // Strategy 2: canonical freezing of Theorem 4.1 templates.
  bool hit_limits = false;
  PSC_ASSIGN_OR_RETURN(
      std::optional<Database> witness,
      TryCanonicalFreeze(collection, options_, &report, &hit_limits));
  if (witness.has_value()) {
    report.verdict = ConsistencyVerdict::kConsistent;
    report.witness = std::move(witness);
    report.method = "canonical-freeze";
    PSC_OBS_GAUGE_SET("consistency.witness_facts",
                      report.witness->AllFacts().size());
    return report;
  }

  // Strategy 3: exhaustive search over the canonical domain within the
  // Lemma 3.1 bound.
  if (options_.enable_exhaustive) {
    std::vector<Value> domain = collection.MentionedConstants();
    // The Theorem 3.2 NP procedure fixes m·p·k constants; we add fresh ones
    // up to the configured cap and remember whether we reached the bound.
    size_t max_body = 0;
    size_t max_arity = 1;
    for (const SourceDescriptor& source : collection.sources()) {
      max_body = std::max(max_body, source.view().RelationalBodySize());
    }
    for (const std::string& name : collection.schema().RelationNames()) {
      auto arity = collection.schema().Arity(name);
      if (arity.ok()) max_arity = std::max(max_arity, *arity);
    }
    const size_t constants_needed =
        max_body * collection.TotalExtensionSize() * max_arity;
    const size_t fresh_needed =
        constants_needed > domain.size() ? constants_needed - domain.size()
                                         : 0;
    const size_t fresh_added =
        std::min(fresh_needed, options_.max_fresh_constants);
    for (size_t i = 0; i < fresh_added; ++i) {
      domain.push_back(Value(StrCat("\xE2\x8A\xA5", i)));  // "⊥i"
    }
    const bool domain_complete = fresh_added == fresh_needed;

    BruteForceWorldEnumerator::Options brute_options;
    brute_options.max_universe_bits = options_.max_exhaustive_bits;
    BruteForceWorldEnumerator enumerator(&collection, domain, brute_options);
    std::optional<Database> found;
    auto completed = enumerator.ForEachPossibleWorld([&](const Database& db) {
      ++report.candidates_checked;
      found = db;
      return false;
    });
    if (completed.ok()) {
      if (found.has_value()) {
        report.verdict = ConsistencyVerdict::kConsistent;
        report.witness = std::move(found);
        report.method = "exhaustive";
        PSC_OBS_GAUGE_SET("consistency.witness_facts",
                          report.witness->AllFacts().size());
        return report;
      }
      if (domain_complete) {
        report.verdict = ConsistencyVerdict::kInconsistent;
        report.method = "exhaustive";
        return report;
      }
      report.unknown_reason = StrCat(
          "no witness over a truncated canonical domain (needed ",
          fresh_needed, " fresh constants, searched with ", fresh_added, ")");
      return report;
    }
    if (completed.status().code() != StatusCode::kResourceExhausted) {
      return completed.status();
    }
    report.unknown_reason = completed.status().message();
    return report;
  }

  report.unknown_reason =
      hit_limits ? "canonical-freeze pass hit resource limits"
                 : "canonical-freeze found no witness and the exhaustive "
                   "fallback is disabled";
  return report;
}

}  // namespace psc
