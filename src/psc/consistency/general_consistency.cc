#include "psc/consistency/general_consistency.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "psc/consistency/identity_consistency.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/exec/thread_pool.h"
#include "psc/obs/metrics.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "psc/source/measures.h"
#include "psc/sync/mutex.h"
#include "psc/tableau/template_builder.h"
#include "psc/util/string_util.h"

namespace psc {

const char* ConsistencyVerdictToString(ConsistencyVerdict verdict) {
  switch (verdict) {
    case ConsistencyVerdict::kConsistent:
      return "CONSISTENT";
    case ConsistencyVerdict::kInconsistent:
      return "INCONSISTENT";
    case ConsistencyVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

Result<bool> WitnessSatisfiesSources(
    const SourceCollection& collection, const Database& witness,
    const std::vector<size_t>& source_indices) {
  for (const size_t index : source_indices) {
    if (index >= collection.size()) {
      return Status::InvalidArgument(
          StrCat("source index ", index, " out of range (collection has ",
                 collection.size(), " sources)"));
    }
    PSC_ASSIGN_OR_RETURN(const bool satisfied,
                         SatisfiesBounds(collection.source(index), witness));
    if (!satisfied) return false;
  }
  return true;
}

namespace {

/// Canonical-freeze pass: try every allowable combination's frozen tableau
/// as a concrete witness. Sound for acceptance only.
Result<std::optional<Database>> TryCanonicalFreeze(
    const SourceCollection& collection,
    const GeneralConsistencyChecker::Options& options,
    ConsistencyReport* report, bool* hit_limits) {
  TemplateBuilder builder(&collection);
  std::optional<Database> witness;
  Status deferred_error;
  PSC_ASSIGN_OR_RETURN(
      const bool completed,
      builder.ForEachAllowableCombination([&](const Combination& combination) {
        if (report->combinations_tried >= options.max_combinations) {
          *hit_limits = true;
          return false;
        }
        // One budget node per combination; on a trip the caller reads the
        // reason off the shared budget and degrades to kUnknown.
        if (!options.budget.Charge()) {
          *hit_limits = true;
          return false;
        }
        ++report->combinations_tried;
        PSC_OBS_COUNTER_INC("consistency.combinations_tried");
        auto built = builder.BuildTableau(combination);
        if (!built.ok()) {
          if (built.status().code() == StatusCode::kUnimplemented) {
            // A built-in constrains an existential variable; this
            // combination cannot be frozen faithfully.
            *hit_limits = true;
            return true;
          }
          deferred_error = built.status();
          return false;
        }
        if (!built->has_value()) return true;  // rep(𝒯^U) = ∅

        // Two candidates: merged freezing reuses constants already forced
        // by other sources (needed under exact catalogs), fresh freezing
        // keeps existential witnesses distinct. Acceptance is verified, so
        // trying both is sound.
        Database candidates[2] = {FreezeTableauWithGroundMerge(**built),
                                  FreezeTableau(**built)};
        const size_t tries = candidates[0] == candidates[1] ? 1 : 2;
        for (size_t t = 0; t < tries; ++t) {
          ++report->candidates_checked;
          PSC_OBS_COUNTER_INC("consistency.candidates_checked");
          auto possible = collection.IsPossibleWorld(candidates[t]);
          if (!possible.ok()) {
            deferred_error = possible.status();
            return false;
          }
          if (*possible) {
            witness = std::move(candidates[t]);
            return false;
          }
        }
        return true;
      }));
  if (!completed && !deferred_error.ok()) return deferred_error;
  return witness;
}

/// Parallel canonical-freeze pass. Combinations are streamed from the
/// enumerator in blocks onto the pool; each worker evaluates its block's
/// combinations exactly as the sequential pass would (build, freeze both
/// candidates in order, verify). The winning outcome is the one with the
/// *minimal* global combination index — the very combination the
/// sequential scan would have stopped at — so the returned witness (or
/// error) is bit-identical for every worker count. An atomic `bound` set
/// to the current best index lets workers and the producer skip indices
/// that can no longer win, which is what cancels the search early once a
/// witness is found.
Result<std::optional<Database>> TryCanonicalFreezeParallel(
    const SourceCollection& collection,
    const GeneralConsistencyChecker::Options& options, exec::ThreadPool* pool,
    ConsistencyReport* report, bool* hit_limits) {
  TemplateBuilder builder(&collection);
  constexpr size_t kBlockSize = 16;
  constexpr uint64_t kNoIndex = ~uint64_t{0};
  const size_t max_outstanding = 4 * pool->size();

  struct SearchState {
    sync::Mutex mu{"consistency.search", sync::kRankSearchOutcome};
    /// Index of the best (minimal) decided combination; its outcome.
    uint64_t best_index PSC_GUARDED_BY(mu);
    Status error PSC_GUARDED_BY(mu);
    std::optional<Database> witness PSC_GUARDED_BY(mu);
    /// Combinations with index >= bound cannot win; they may be skipped.
    std::atomic<uint64_t> bound;
    std::atomic<uint64_t> combinations_tried{0};
    std::atomic<uint64_t> candidates_checked{0};
    std::atomic<bool> hit_limits{false};
    /// Outstanding-block throttle and completion latch.
    sync::Mutex blocks_mu{"consistency.blocks", sync::kRankSearchBlocks};
    sync::CondVar blocks_cv;
    size_t outstanding_blocks PSC_GUARDED_BY(blocks_mu) = 0;
  };
  SearchState state;
  state.best_index = kNoIndex;
  state.bound.store(kNoIndex, std::memory_order_relaxed);

  // Records a decided combination; the minimal index wins.
  auto record = [&state](uint64_t index, Status error,
                         std::optional<Database> witness) {
    sync::MutexLock lock(&state.mu);
    if (index >= state.best_index) return;
    state.best_index = index;
    state.error = std::move(error);
    state.witness = std::move(witness);
    state.bound.store(index, std::memory_order_release);
  };

  // Evaluates one combination, mirroring the sequential pass body.
  auto evaluate = [&](uint64_t index, const Combination& combination) {
    if (index >= state.bound.load(std::memory_order_acquire)) return;
    // The producer charges the budget per enqueued combination; workers
    // only observe the trip so already-queued blocks drain quickly.
    if (options.budget.reason() != limits::StopReason::kNone) return;
    state.combinations_tried.fetch_add(1, std::memory_order_relaxed);
    PSC_OBS_COUNTER_INC("consistency.combinations_tried");
    auto built = builder.BuildTableau(combination);
    if (!built.ok()) {
      if (built.status().code() == StatusCode::kUnimplemented) {
        state.hit_limits.store(true, std::memory_order_relaxed);
        return;
      }
      record(index, built.status(), std::nullopt);
      return;
    }
    if (!built->has_value()) return;  // rep(𝒯^U) = ∅
    Database candidates[2] = {FreezeTableauWithGroundMerge(**built),
                              FreezeTableau(**built)};
    const size_t tries = candidates[0] == candidates[1] ? 1 : 2;
    for (size_t t = 0; t < tries; ++t) {
      state.candidates_checked.fetch_add(1, std::memory_order_relaxed);
      PSC_OBS_COUNTER_INC("consistency.candidates_checked");
      auto possible = collection.IsPossibleWorld(candidates[t]);
      if (!possible.ok()) {
        record(index, possible.status(), std::nullopt);
        return;
      }
      if (*possible) {
        record(index, Status(), std::move(candidates[t]));
        return;
      }
    }
  };

  using Block = std::vector<std::pair<uint64_t, Combination>>;
  Block block;
  block.reserve(kBlockSize);
  // Captured once: every shipped block reinstalls the producer's scope
  // and parents its spans under the enclosing consistency.check span.
  const obs::TraceContext trace_context = obs::CaptureTraceContext();
  auto flush = [&] {
    if (block.empty()) return;
    {
      sync::MutexLock lock(&state.blocks_mu);
      while (state.outstanding_blocks >= max_outstanding) {
        state.blocks_cv.Wait(state.blocks_mu);
      }
      ++state.outstanding_blocks;
    }
    auto shipped = std::make_shared<Block>(std::move(block));
    block.clear();
    block.reserve(kBlockSize);
    pool->Submit([&state, &evaluate, &trace_context, shipped] {
      const obs::TraceContextGuard trace_guard(trace_context);
      {
        PSC_OBS_SPAN("consistency.freeze_block");
        for (const auto& [index, combination] : *shipped) {
          evaluate(index, combination);
        }
      }
      {
        sync::MutexLock lock(&state.blocks_mu);
        --state.outstanding_blocks;
        // Notify while holding the lock: once the producer observes the
        // decrement it may destroy `state`, so the cv must not be
        // touched after the unlock.
        state.blocks_cv.NotifyAll();
      }
    });
  };

  uint64_t next_index = 0;
  auto enumerated =
      builder.ForEachAllowableCombination([&](const Combination& combination) {
        if (next_index >= state.bound.load(std::memory_order_acquire)) {
          return false;  // a lower index already decided the search
        }
        if (next_index >= options.max_combinations) {
          state.hit_limits.store(true, std::memory_order_relaxed);
          return false;
        }
        if (!options.budget.Charge()) {
          state.hit_limits.store(true, std::memory_order_relaxed);
          return false;
        }
        block.emplace_back(next_index++, combination);  // copy: reused ref
        if (block.size() >= kBlockSize) flush();
        return true;
      });
  flush();
  {
    // All blocks reference this frame; drain them before returning.
    sync::MutexLock lock(&state.blocks_mu);
    while (state.outstanding_blocks != 0) state.blocks_cv.Wait(state.blocks_mu);
  }
  PSC_RETURN_NOT_OK(enumerated.status());

  report->combinations_tried =
      state.combinations_tried.load(std::memory_order_relaxed);
  report->candidates_checked =
      state.candidates_checked.load(std::memory_order_relaxed);
  if (state.hit_limits.load(std::memory_order_relaxed)) *hit_limits = true;
  sync::MutexLock lock(&state.mu);
  PSC_RETURN_NOT_OK(state.error);
  return std::move(state.witness);
}

}  // namespace

Result<ConsistencyReport> GeneralConsistencyChecker::Check(
    const SourceCollection& collection) const {
  PSC_OBS_SPAN("consistency.check");
  PSC_OBS_COUNTER_INC("consistency.checks");
  ConsistencyReport report;

  if (collection.size() == 0) {
    // No constraints: every database (e.g. the empty one) is possible.
    report.verdict = ConsistencyVerdict::kConsistent;
    report.witness = Database();
    report.method = "trivial";
    return report;
  }

  // Strategy 1: exact identity-view decision procedure.
  if (collection.AllIdentityViews()) {
    auto identity = CheckIdentityConsistency(collection, options_.max_shapes,
                                             options_.budget);
    if (identity.ok()) {
      report.method = "identity-counter";
      report.verdict = identity->consistent ? ConsistencyVerdict::kConsistent
                                            : ConsistencyVerdict::kInconsistent;
      report.witness = identity->witness;
      if (report.witness.has_value()) {
        PSC_OBS_GAUGE_SET("consistency.witness_facts",
                          report.witness->AllFacts().size());
      }
      return report;
    }
    if (identity.status().code() != StatusCode::kResourceExhausted &&
        identity.status().code() != StatusCode::kDeadlineExceeded) {
      return identity.status();
    }
    report.unknown_reason = identity.status().message();
    return report;
  }

  // Strategy 2: canonical freezing of Theorem 4.1 templates. With more
  // than one resolved worker the combination search runs on a
  // work-stealing pool; the outcome is deterministic (minimal-index
  // witness), so every thread count returns the same report.
  bool hit_limits = false;
  std::optional<Database> witness;
  const size_t threads = exec::ResolveThreadCount(options_.threads);
  if (threads > 1) {
    exec::ThreadPool pool(threads);
    PSC_ASSIGN_OR_RETURN(witness,
                         TryCanonicalFreezeParallel(collection, options_,
                                                    &pool, &report,
                                                    &hit_limits));
  } else {
    PSC_ASSIGN_OR_RETURN(
        witness, TryCanonicalFreeze(collection, options_, &report,
                                    &hit_limits));
  }
  if (witness.has_value()) {
    report.verdict = ConsistencyVerdict::kConsistent;
    report.witness = std::move(witness);
    report.method = "canonical-freeze";
    PSC_OBS_GAUGE_SET("consistency.witness_facts",
                      report.witness->AllFacts().size());
    return report;
  }

  // A tripped budget means the canonical-freeze pass was cut short; the
  // exhaustive fallback would only burn more wall clock, so degrade to
  // kUnknown right away with the trip message as the reason.
  if (options_.budget.reason() != limits::StopReason::kNone) {
    report.unknown_reason = options_.budget.ToStatus().message();
    return report;
  }

  // Strategy 3: exhaustive search over the canonical domain within the
  // Lemma 3.1 bound.
  if (options_.enable_exhaustive) {
    std::vector<Value> domain = collection.MentionedConstants();
    // The Theorem 3.2 NP procedure fixes m·p·k constants; we add fresh ones
    // up to the configured cap and remember whether we reached the bound.
    size_t max_body = 0;
    size_t max_arity = 1;
    for (const SourceDescriptor& source : collection.sources()) {
      max_body = std::max(max_body, source.view().RelationalBodySize());
    }
    for (const std::string& name : collection.schema().RelationNames()) {
      auto arity = collection.schema().Arity(name);
      if (arity.ok()) max_arity = std::max(max_arity, *arity);
    }
    const size_t constants_needed =
        max_body * collection.TotalExtensionSize() * max_arity;
    const size_t fresh_needed =
        constants_needed > domain.size() ? constants_needed - domain.size()
                                         : 0;
    const size_t fresh_added =
        std::min(fresh_needed, options_.max_fresh_constants);
    for (size_t i = 0; i < fresh_added; ++i) {
      domain.push_back(Value(StrCat("\xE2\x8A\xA5", i)));  // "⊥i"
    }
    const bool domain_complete = fresh_added == fresh_needed;

    BruteForceWorldEnumerator::Options brute_options;
    brute_options.max_universe_bits = options_.max_exhaustive_bits;
    brute_options.budget = options_.budget;
    BruteForceWorldEnumerator enumerator(&collection, domain, brute_options);
    std::optional<Database> found;
    auto completed = enumerator.ForEachPossibleWorld([&](const Database& db) {
      ++report.candidates_checked;
      found = db;
      return false;
    });
    if (completed.ok()) {
      if (found.has_value()) {
        report.verdict = ConsistencyVerdict::kConsistent;
        report.witness = std::move(found);
        report.method = "exhaustive";
        PSC_OBS_GAUGE_SET("consistency.witness_facts",
                          report.witness->AllFacts().size());
        return report;
      }
      if (domain_complete) {
        report.verdict = ConsistencyVerdict::kInconsistent;
        report.method = "exhaustive";
        return report;
      }
      report.unknown_reason = StrCat(
          "no witness over a truncated canonical domain (needed ",
          fresh_needed, " fresh constants, searched with ", fresh_added, ")");
      return report;
    }
    if (completed.status().code() != StatusCode::kResourceExhausted &&
        completed.status().code() != StatusCode::kDeadlineExceeded) {
      return completed.status();
    }
    report.unknown_reason = completed.status().message();
    return report;
  }

  report.unknown_reason =
      hit_limits ? "canonical-freeze pass hit resource limits"
                 : "canonical-freeze found no witness and the exhaustive "
                   "fallback is disabled";
  return report;
}

}  // namespace psc
