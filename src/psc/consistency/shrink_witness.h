#ifndef PSC_CONSISTENCY_SHRINK_WITNESS_H_
#define PSC_CONSISTENCY_SHRINK_WITNESS_H_

#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief The constructive step of Lemma 3.1: given any possible world G,
/// extracts a sub-database D ⊆ G with
///
///   |D| ≤ maxᵢ|body(φᵢ)| · Σᵢ|vᵢ|
///
/// that is itself a possible world.
///
/// Construction (verbatim from the paper's proof): for every source i and
/// every fact u ∈ φᵢ(G) ∩ vᵢ, pick one witness valuation θ_u embedding
/// body(φᵢ) into G with head(φᵢ)θ_u = u, and take D as the union of all
/// the instantiated body atoms. The proof shows φᵢ(D) ∩ vᵢ = φᵢ(G) ∩ vᵢ
/// while |φᵢ(D)| ≤ |φᵢ(G)|, so every soundness and completeness bound
/// carries over.
///
/// Errors: InvalidArgument when `world` is not in poss(S) (the lemma's
/// hypothesis).
Result<Database> ShrinkWitness(const SourceCollection& collection,
                               const Database& world);

}  // namespace psc

#endif  // PSC_CONSISTENCY_SHRINK_WITNESS_H_
