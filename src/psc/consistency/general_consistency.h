#ifndef PSC_CONSISTENCY_GENERAL_CONSISTENCY_H_
#define PSC_CONSISTENCY_GENERAL_CONSISTENCY_H_

#include <optional>
#include <string>
#include <utility>

#include "psc/limits/budget.h"
#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Three-valued consistency verdict. The general problem is
/// NP-complete (Theorem 3.2), so the checker reports kUnknown when every
/// exact strategy exceeds its resource budget instead of guessing.
enum class ConsistencyVerdict {
  kConsistent,
  kInconsistent,
  kUnknown,
};

const char* ConsistencyVerdictToString(ConsistencyVerdict verdict);

/// \brief Outcome of a general consistency check.
struct ConsistencyReport {
  ConsistencyVerdict verdict = ConsistencyVerdict::kUnknown;
  /// A witness possible world when consistent.
  std::optional<Database> witness;
  /// Which strategy decided ("identity-counter", "canonical-freeze",
  /// "exhaustive", "none").
  std::string method = "none";
  /// Why the verdict is kUnknown, when it is.
  std::string unknown_reason;
  /// Allowable combinations U examined by the template strategies.
  uint64_t combinations_tried = 0;
  /// Candidate databases tested against poss(S).
  uint64_t candidates_checked = 0;
  /// Allowable combinations the delta engine avoided re-exploring because a
  /// prior witness survived a dirty-source-scoped revalidation (0 for a
  /// from-scratch check). See psc/delta/incremental.h.
  uint64_t combinations_skipped = 0;
};

/// \brief Checks an existing witness against the bounds of *selected*
/// sources only — the dirty-scoped core of incremental re-checking.
///
/// Rationale: a source whose extension did not change keeps its measured
/// c_D/s_D against an unchanged witness D, so its bounds need no re-check;
/// after a delta only the mutated (dirty) sources can newly fail. A true
/// return therefore proves D ∈ poss(S') for the mutated collection S'
/// whenever D ∈ poss(S) held before and `source_indices` covers every
/// dirty source. Out-of-range indices are an error.
Result<bool> WitnessSatisfiesSources(const SourceCollection& collection,
                                     const Database& witness,
                                     const std::vector<size_t>& source_indices);

/// \brief Exact / best-effort consistency checking for arbitrary
/// conjunctive views, the Theorem 3.2 NP procedure made concrete.
///
/// Strategy pipeline:
///  1. **identity-counter** — if every view is the identity over one
///     relation, delegate to the exact signature-group checker (complete).
///  2. **canonical-freeze** — enumerate allowable combinations U
///     (Theorem 4.1); for each, build 𝒯^U(S), freeze its tableau with
///     fresh constants and test the frozen database against poss(S).
///     Accepting is sound (a concrete witness is exhibited); rejection of
///     every candidate is *not* a proof of inconsistency, because a
///     satisfying world may require merging existential variables.
///  3. **exhaustive** — enumerate all databases over the canonical domain
///     (mentioned constants plus fresh ones) within the Lemma 3.1 size
///     bound. Complete but exponential; only attempted while the fact
///     universe stays within `max_exhaustive_bits`.
class GeneralConsistencyChecker {
 public:
  struct Options {
    uint64_t max_shapes = uint64_t{1} << 26;
    uint64_t max_combinations = uint64_t{1} << 20;
    /// Universe-size cap for the exhaustive fallback (2^N subsets).
    size_t max_exhaustive_bits = 22;
    /// Extra fresh constants added to the canonical domain, capped.
    size_t max_fresh_constants = 4;
    bool enable_exhaustive = true;
    /// Worker threads for the canonical-freeze search. 0 (the default)
    /// resolves via PSC_THREADS / hardware_concurrency(); 1 forces the
    /// sequential path (byte-identical to the historical single-threaded
    /// behaviour). The verdict and witness are deterministic for every
    /// thread count: the parallel search returns the outcome of the
    /// minimal combination index, which is exactly the combination the
    /// sequential scan stops at.
    size_t threads = 0;
    /// Cooperative deadline / node budget shared by every strategy: one
    /// node per allowable combination, count-vector node or brute-force
    /// subset. A tripped budget degrades the verdict to kUnknown (with the
    /// trip message as `unknown_reason`) instead of failing — consistency
    /// is three-valued, so "ran out of time" is an honest verdict.
    limits::Budget budget;
  };

  GeneralConsistencyChecker() : options_() {}
  explicit GeneralConsistencyChecker(Options options)
      : options_(std::move(options)) {}

  Result<ConsistencyReport> Check(const SourceCollection& collection) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace psc

#endif  // PSC_CONSISTENCY_GENERAL_CONSISTENCY_H_
