#ifndef PSC_CONSISTENCY_DIAGNOSTICS_H_
#define PSC_CONSISTENCY_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "psc/consistency/general_consistency.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Diagnostics for inconsistent collections — a concrete take on the
/// paper's Section 6 future-work direction ("explore how a notion of
/// consensus can be defined and used to detect the most trustworthy
/// sources"). Extension beyond the paper.
///
/// All routines are exact but exponential in the number of sources; they
/// are meant for interactive investigation of small federations.

/// Per-source blame: does removing this one source restore consistency?
struct SourceBlame {
  std::string source_name;
  /// Verdict of the collection without this source.
  ConsistencyVerdict verdict_without = ConsistencyVerdict::kUnknown;
};

/// \brief Checks, for each source, whether the collection minus that source
/// is consistent. Sources whose removal flips the verdict to consistent are
/// the prime suspects for over-claimed bounds.
Result<std::vector<SourceBlame>> BlameSources(
    const SourceCollection& collection,
    const GeneralConsistencyChecker& checker);

/// \brief Finds all maximal (by set inclusion) consistent sub-collections.
///
/// Enumerates subsets from largest to smallest (n ≤ `max_sources`), skipping
/// subsets of already-found consistent sets. Subsets with an Unknown verdict
/// are treated as not-known-consistent and skipped conservatively.
Result<std::vector<std::vector<std::string>>> MaximalConsistentSubcollections(
    const SourceCollection& collection,
    const GeneralConsistencyChecker& checker, size_t max_sources = 16);

/// \brief The largest uniform relaxation factor λ ∈ [0,1] (to `precision`
/// denominator) such that scaling every source's completeness and soundness
/// bound by λ yields a consistent collection. λ = 1 means the collection is
/// already consistent; small λ quantifies how far the claims overreach.
Result<Rational> MaxUniformRelaxation(const SourceCollection& collection,
                                      const GeneralConsistencyChecker& checker,
                                      int64_t precision = 64);

}  // namespace psc

#endif  // PSC_CONSISTENCY_DIAGNOSTICS_H_
