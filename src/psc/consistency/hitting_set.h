#ifndef PSC_CONSISTENCY_HITTING_SET_H_
#define PSC_CONSISTENCY_HITTING_SET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief An instance of HITTING SET: subsets A₁,…,Aₙ of {0,…,|S|−1} and a
/// budget K. Question: is there A ⊆ S, |A| ≤ K, hitting every Aᵢ?
///
/// HS* (the paper's variant) additionally requires Aₙ to be a singleton;
/// `IsHsStar` checks that syntactic condition.
struct HittingSetInstance {
  int64_t universe_size = 0;
  std::vector<std::vector<int64_t>> subsets;
  int64_t budget = 0;

  /// Validates element ranges, budget ≥ 0, and non-empty subsets (an empty
  /// subset cannot be hit and is rejected rather than silently "no").
  Status Validate() const;

  /// True iff the last subset is a singleton (the HS* promise).
  bool IsHsStar() const;

  std::string ToString() const;
};

/// \brief Outcome of a hitting-set search.
struct HittingSetSolution {
  bool solvable = false;
  /// A hitting set of size ≤ budget when solvable.
  std::vector<int64_t> hitting_set;
  /// Search-tree nodes expanded (work metric).
  uint64_t nodes_expanded = 0;
};

/// \brief Direct branch-and-bound HITTING SET solver (the baseline
/// comparator for the reduction experiments).
///
/// Branches on the elements of a smallest not-yet-hit subset; prunes when
/// the budget is exhausted. Exact.
Result<HittingSetSolution> SolveHittingSet(const HittingSetInstance& instance,
                                           uint64_t max_nodes = uint64_t{1}
                                                                << 26);

/// \brief Lemma 3.3 reduction HS → HS*: adds a fresh element a, the
/// singleton subset {a}, and raises the budget to K+1.
HittingSetInstance ReduceHsToHsStar(const HittingSetInstance& instance);

/// \brief The Theorem 3.2 reduction HS* → CONSISTENCY.
///
/// Builds, over a unary relation R with identity views:
///   Sᵢ = ⟨Id_R, {R(a) : a ∈ Aᵢ}, cᵢ = 1/K, sᵢ = 1/|Aᵢ|⟩.
/// The instance must satisfy the HS* promise (last subset singleton).
Result<SourceCollection> ReduceHsStarToConsistency(
    const HittingSetInstance& instance);

/// \brief Solves HITTING SET end-to-end through the paper's reduction
/// chain: HS → HS* → CONSISTENCY, deciding the final instance with the
/// exact identity-view consistency checker and mapping the witness world
/// back to a hitting set.
Result<HittingSetSolution> SolveHittingSetViaConsistency(
    const HittingSetInstance& instance,
    uint64_t max_shapes = uint64_t{1} << 26);

}  // namespace psc

#endif  // PSC_CONSISTENCY_HITTING_SET_H_
