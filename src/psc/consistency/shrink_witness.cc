#include "psc/consistency/shrink_witness.h"

#include "psc/source/measures.h"
#include "psc/util/string_util.h"

namespace psc {

Result<Database> ShrinkWitness(const SourceCollection& collection,
                               const Database& world) {
  PSC_ASSIGN_OR_RETURN(const bool possible,
                       collection.IsPossibleWorld(world));
  if (!possible) {
    return Status::InvalidArgument(
        "ShrinkWitness requires a database in poss(S) (Lemma 3.1's "
        "hypothesis)");
  }

  Database shrunk;
  for (const SourceDescriptor& source : collection.sources()) {
    const ConjunctiveQuery& view = source.view();
    // Facts of φᵢ(G) ∩ vᵢ: iterate the (small) extension and keep the
    // tuples the view produces on G.
    for (const Tuple& claimed : source.extension()) {
      PSC_ASSIGN_OR_RETURN(const std::vector<Valuation> witnesses,
                           view.WitnessValuations(world, claimed));
      if (witnesses.empty()) continue;  // claimed ∉ φᵢ(G)
      // One valuation suffices (the paper picks an arbitrary θ_u).
      const Valuation& theta = witnesses.front();
      for (const Atom& atom : view.relational_body()) {
        PSC_ASSIGN_OR_RETURN(Tuple grounded,
                             GroundTerms(atom.terms(), theta));
        shrunk.AddFact(atom.predicate(), std::move(grounded));
      }
    }
  }

  // The proof guarantees membership; verify as a defensive invariant.
  PSC_ASSIGN_OR_RETURN(const bool shrunk_possible,
                       collection.IsPossibleWorld(shrunk));
  if (!shrunk_possible) {
    return Status::Internal(
        "Lemma 3.1 construction produced a non-world; this indicates a bug "
        "in view evaluation");
  }
  return shrunk;
}

}  // namespace psc
