#ifndef PSC_CONSISTENCY_IDENTITY_CONSISTENCY_H_
#define PSC_CONSISTENCY_IDENTITY_CONSISTENCY_H_

#include <optional>

#include "psc/limits/budget.h"
#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Outcome of an exact consistency check.
struct IdentityConsistencyReport {
  bool consistent = false;
  /// A witness possible world when consistent.
  std::optional<Database> witness;
  /// Count vectors visited by the group enumeration (work metric).
  uint64_t visited_shapes = 0;
};

/// \brief Exact CONSISTENCY decision for the identity-view special case
/// (Corollary 3.4's fragment — already NP-complete).
///
/// Works over the universe ⋃ᵢ vᵢ only, which is sufficient:
/// for identity views, φᵢ(D) = D, so a fact outside every extension adds 1
/// to each completeness denominator |D| without ever entering a numerator
/// |D ∩ vᵢ|, and contributes nothing to soundness. Hence if D ∈ poss(S)
/// then D ∩ ⋃ᵢvᵢ ∈ poss(S) as well, and a witness exists iff one exists
/// inside ⋃ᵢ vᵢ.
///
/// Still worst-case exponential in Σ|vᵢ| (Theorem 3.2), but the signature-
/// group abstraction collapses the 2^N search to count vectors.
/// A tripped cooperative `budget` fails with `budget.ToStatus()`.
Result<IdentityConsistencyReport> CheckIdentityConsistency(
    const SourceCollection& collection,
    uint64_t max_shapes = uint64_t{1} << 26,
    const limits::Budget& budget = limits::Budget());

}  // namespace psc

#endif  // PSC_CONSISTENCY_IDENTITY_CONSISTENCY_H_
