#include "psc/consistency/diagnostics.h"

#include <algorithm>

#include "psc/util/string_util.h"

namespace psc {

namespace {

/// The sub-collection keeping exactly the sources whose bit is set.
Result<SourceCollection> Subcollection(const SourceCollection& collection,
                                       uint64_t mask) {
  std::vector<SourceDescriptor> kept;
  for (size_t i = 0; i < collection.size(); ++i) {
    if ((mask >> i) & 1) kept.push_back(collection.source(i));
  }
  return SourceCollection::Create(std::move(kept));
}

/// `collection` with every bound multiplied by `factor`.
Result<SourceCollection> ScaleBounds(const SourceCollection& collection,
                                     const Rational& factor) {
  std::vector<SourceDescriptor> scaled;
  for (const SourceDescriptor& source : collection.sources()) {
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor descriptor,
        SourceDescriptor::Create(source.name(), source.view(),
                                 source.extension(),
                                 source.completeness_bound() * factor,
                                 source.soundness_bound() * factor));
    scaled.push_back(std::move(descriptor));
  }
  return SourceCollection::Create(std::move(scaled));
}

}  // namespace

Result<std::vector<SourceBlame>> BlameSources(
    const SourceCollection& collection,
    const GeneralConsistencyChecker& checker) {
  if (collection.size() > 63) {
    return Status::ResourceExhausted("blame analysis supports <= 63 sources");
  }
  std::vector<SourceBlame> blames;
  const limits::Budget& budget = checker.options().budget;
  const uint64_t all = (uint64_t{1} << collection.size()) - 1;
  for (size_t i = 0; i < collection.size(); ++i) {
    // One node per leave-one-out check; the sub-checks observe the same
    // shared budget, so a mid-check trip also stops this loop here.
    if (!budget.Charge()) return budget.ToStatus();
    PSC_ASSIGN_OR_RETURN(
        const SourceCollection reduced,
        Subcollection(collection, all & ~(uint64_t{1} << i)));
    PSC_ASSIGN_OR_RETURN(const ConsistencyReport report,
                         checker.Check(reduced));
    blames.push_back(
        SourceBlame{collection.source(i).name(), report.verdict});
  }
  return blames;
}

Result<std::vector<std::vector<std::string>>> MaximalConsistentSubcollections(
    const SourceCollection& collection,
    const GeneralConsistencyChecker& checker, size_t max_sources) {
  const size_t n = collection.size();
  if (n > max_sources || n > 63) {
    return Status::ResourceExhausted(
        StrCat("subset enumeration over ", n, " sources exceeds the limit of ",
               std::min<size_t>(max_sources, 63)));
  }
  // Visit subsets grouped by decreasing popcount so supersets come first.
  std::vector<uint64_t> masks;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    masks.push_back(mask);
  }
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    const int pa = __builtin_popcountll(a);
    const int pb = __builtin_popcountll(b);
    return pa != pb ? pa > pb : a < b;
  });

  std::vector<uint64_t> maximal_masks;
  std::vector<std::vector<std::string>> result;
  for (const uint64_t mask : masks) {
    bool dominated = false;
    for (const uint64_t found : maximal_masks) {
      if ((mask & found) == mask) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (!checker.options().budget.Charge()) {
      return checker.options().budget.ToStatus();
    }
    PSC_ASSIGN_OR_RETURN(const SourceCollection sub,
                         Subcollection(collection, mask));
    PSC_ASSIGN_OR_RETURN(const ConsistencyReport report, checker.Check(sub));
    if (report.verdict != ConsistencyVerdict::kConsistent) continue;
    maximal_masks.push_back(mask);
    std::vector<std::string> names;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) names.push_back(collection.source(i).name());
    }
    result.push_back(std::move(names));
  }
  return result;
}

Result<Rational> MaxUniformRelaxation(const SourceCollection& collection,
                                      const GeneralConsistencyChecker& checker,
                                      int64_t precision) {
  if (precision < 1) {
    return Status::InvalidArgument("precision must be >= 1");
  }
  // Binary search over λ = j/precision. Consistency is monotone in λ:
  // lowering every bound only enlarges poss(S).
  int64_t lo = 0;        // λ = 0 is always consistent (empty database)
  int64_t hi = precision;
  // Fast path: already consistent at λ = 1.
  PSC_ASSIGN_OR_RETURN(ConsistencyReport full, checker.Check(collection));
  if (full.verdict == ConsistencyVerdict::kConsistent) return Rational::One();
  if (full.verdict == ConsistencyVerdict::kUnknown) {
    return Status::ResourceExhausted(
        "consistency undecided at lambda = 1; relaxation search aborted");
  }
  while (hi - lo > 1) {
    if (!checker.options().budget.Charge()) {
      return checker.options().budget.ToStatus();
    }
    const int64_t mid = lo + (hi - lo) / 2;
    PSC_ASSIGN_OR_RETURN(const SourceCollection scaled,
                         ScaleBounds(collection, Rational(mid, precision)));
    PSC_ASSIGN_OR_RETURN(const ConsistencyReport report,
                         checker.Check(scaled));
    if (report.verdict == ConsistencyVerdict::kConsistent) {
      lo = mid;
    } else if (report.verdict == ConsistencyVerdict::kInconsistent) {
      hi = mid;
    } else {
      return Status::ResourceExhausted(
          StrCat("consistency undecided at lambda = ", mid, "/", precision));
    }
  }
  return Rational(lo, precision);
}

}  // namespace psc
