#ifndef PSC_CONSISTENCY_POSSIBLE_WORLDS_H_
#define PSC_CONSISTENCY_POSSIBLE_WORLDS_H_

#include <functional>
#include <vector>

#include "psc/limits/budget.h"
#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Ground-truth enumeration of poss(S) over an explicit finite
/// domain, by filtering all 2^N subsets of the fact universe.
///
/// Exponential by design (Theorem 3.2 says we cannot do better in the worst
/// case); this is the oracle every optimized component is validated
/// against. N is capped at `max_universe_bits`.
class BruteForceWorldEnumerator {
 public:
  struct Options {
    /// Refuse universes with more than this many facts (2^N subsets).
    size_t max_universe_bits = 26;
    /// Cooperative deadline / node budget; one node is charged per subset
    /// mask checked. A tripped budget fails the enumeration with
    /// `budget.ToStatus()`.
    limits::Budget budget;
  };

  BruteForceWorldEnumerator(const SourceCollection* collection,
                            std::vector<Value> domain);
  BruteForceWorldEnumerator(const SourceCollection* collection,
                            std::vector<Value> domain, Options options);

  /// \brief Calls `fn` for every database D ⊆ universe with D ∈ poss(S),
  /// in deterministic order. `fn` returns false to stop early.
  /// Returns false iff stopped early.
  Result<bool> ForEachPossibleWorld(
      const std::function<bool(const Database&)>& fn) const;

  /// Materializes every possible world (fails beyond `max_worlds`).
  Result<std::vector<Database>> CollectPossibleWorlds(
      size_t max_worlds = 1u << 22) const;

  /// |poss(S)| over this universe.
  Result<uint64_t> CountPossibleWorlds() const;

  /// The fact universe (deterministic order).
  Result<std::vector<Fact>> Universe() const;

 private:
  const SourceCollection* collection_;
  std::vector<Value> domain_;
  Options options_;
};

}  // namespace psc

#endif  // PSC_CONSISTENCY_POSSIBLE_WORLDS_H_
