#ifndef PSC_SERVE_SOCKET_SERVER_H_
#define PSC_SERVE_SOCKET_SERVER_H_

/// \file
/// POSIX socket front-end for `serve::Engine`: accepts client connections
/// on a Unix-domain socket or a loopback TCP port and speaks the
/// newline-delimited protocol from protocol.h.
///
/// Threading model: `Serve()` runs the accept loop on the calling thread
/// (pscd's main thread) and spawns one reader thread per connection. Each
/// connection is one protocol *session* — its requests are FIFO among
/// themselves and fair-share scheduled against other connections by the
/// engine. Responses are written under a per-connection mutex, so
/// concurrent completions interleave whole lines, never bytes.
///
/// Shutdown: the accept loop polls a self-pipe alongside the listener.
/// `Wake()` writes one byte to it — async-signal-safe, so pscd's
/// SIGINT/SIGTERM handler may call it directly — and `Serve()` returns
/// once woken (it also wires itself into `Engine::SetShutdownNotify`, so
/// a client's `shutdown` verb wakes it the same way). The caller then
/// drains the engine and destroys the server; destruction closes the
/// listener, shuts down every connection socket and joins the readers.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psc/serve/engine.h"
#include "psc/util/status.h"

namespace psc {
namespace serve {

struct SocketServerOptions {
  /// Unix-domain socket path; mutually exclusive with tcp_port.
  std::string unix_path;
  /// TCP port (loopback only); 0 with empty unix_path is an error, while
  /// an explicit 0 port with `ephemeral_tcp` picks a free port.
  int tcp_port = 0;
  bool ephemeral_tcp = false;
  /// Framing cap: a connection that exceeds this many bytes without a
  /// newline is sent one error response and closed (the stream can no
  /// longer be framed reliably).
  size_t max_line_bytes = size_t{1} << 20;
};

class SocketServer {
 public:
  /// `engine` must outlive the server.
  SocketServer(Engine* engine, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens. On success `endpoint()` describes the address.
  Status Start();

  /// Accept loop; returns after `Wake()` (signal, shutdown verb, or stop
  /// from another thread). Call `Engine::Drain()` afterwards to let
  /// accepted requests finish.
  void Serve();

  /// Wakes the accept loop. Async-signal-safe (one `write` to a pipe).
  void Wake();

  /// "unix:<path>" or "tcp:<port>" once started.
  const std::string& endpoint() const { return endpoint_; }
  /// Bound TCP port (after Start with ephemeral_tcp), 0 for unix.
  int port() const { return port_; }

 private:
  struct Connection;

  void HandleConnection(const std::shared_ptr<Connection>& connection);

  Engine* const engine_;
  const SocketServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::string endpoint_;
  uint64_t next_session_ = 0;

  sync::Mutex connections_mutex_{"serve.socket.connections",
                                 sync::kRankServeConnections};
  std::vector<std::shared_ptr<Connection>> connections_
      PSC_GUARDED_BY(connections_mutex_);
};

}  // namespace serve
}  // namespace psc

#endif  // PSC_SERVE_SOCKET_SERVER_H_
