#include "psc/serve/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "psc/obs/metrics.h"
#include "psc/util/string_util.h"

namespace psc {
namespace serve {

/// One client connection: the socket, the write-side mutex serializing
/// response lines, and the reader thread. Held by shared_ptr so response
/// callbacks outlive an already-closed connection harmlessly.
struct SocketServer::Connection {
  int fd = -1;
  uint64_t session = 0;
  sync::Mutex write_mutex{"serve.socket.write", sync::kRankServeWrite};
  std::thread reader;

  void WriteLine(const std::string& line) {
    sync::MutexLock lock(&write_mutex);
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a client that hung up mid-response must not kill
      // the server with SIGPIPE; the EPIPE is simply dropped.
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }

  void ShutdownSocket() {
    // Unblocks a reader parked in read(); idempotent.
    ::shutdown(fd, SHUT_RDWR);
  }
};

SocketServer::SocketServer(Engine* engine, SocketServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

SocketServer::~SocketServer() {
  Wake();
  std::vector<std::shared_ptr<Connection>> connections;
  {
    sync::MutexLock lock(&connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) connection->ShutdownSocket();
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

Status SocketServer::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(StrCat("pipe: ", std::strerror(errno)));
  }
  if (!options_.unix_path.empty()) {
    sockaddr_un address;
    std::memset(&address, 0, sizeof(address));
    address.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(address.sun_path)) {
      return Status::InvalidArgument(
          StrCat("socket path too long: ", options_.unix_path));
    }
    std::strncpy(address.sun_path, options_.unix_path.c_str(),
                 sizeof(address.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(StrCat("socket: ", std::strerror(errno)));
    }
    ::unlink(options_.unix_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
      return Status::Internal(StrCat("bind(", options_.unix_path,
                                     "): ", std::strerror(errno)));
    }
    endpoint_ = StrCat("unix:", options_.unix_path);
  } else if (options_.tcp_port > 0 || options_.ephemeral_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(StrCat("socket: ", std::strerror(errno)));
    }
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));
    sockaddr_in address;
    std::memset(&address, 0, sizeof(address));
    address.sin_family = AF_INET;
    // Loopback only: pscd has no authentication; never expose it beyond
    // the local host by default.
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
      return Status::Internal(
          StrCat("bind(port ", options_.tcp_port, "): ", std::strerror(errno)));
    }
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
    endpoint_ = StrCat("tcp:", port_);
  } else {
    return Status::InvalidArgument(
        "socket server needs a unix path or a tcp port");
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(StrCat("listen: ", std::strerror(errno)));
  }
  // A client 'shutdown' verb must wake the accept loop, too.
  engine_->SetShutdownNotify([this] { Wake(); });
  return Status::OK();
}

void SocketServer::Wake() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 'x';
  // Single write to a pipe: async-signal-safe, so signal handlers may
  // call Wake() directly. A full pipe just means a wake-up is already
  // pending.
  [[maybe_unused]] const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
}

void SocketServer::Serve() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        if (engine_->draining()) return;
        continue;
      }
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || engine_->draining()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    auto connection = std::make_shared<Connection>();
    connection->fd = client;
    connection->session = ++next_session_;
    PSC_OBS_COUNTER_INC("serve.connections");
    {
      sync::MutexLock lock(&connections_mutex_);
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { HandleConnection(connection); });
  }
}

void SocketServer::HandleConnection(
    const std::shared_ptr<Connection>& connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(connection->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t newline = buffer.find('\n', start);
         newline != std::string::npos; newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      engine_->Submit(connection->session, line,
                      [connection](const std::string& response) {
                        connection->WriteLine(response);
                      });
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      // No newline within the framing cap: the stream is unframeable.
      connection->WriteLine(ErrorResponseLine(
          nullptr, Status::InvalidArgument(StrCat(
                       "request line exceeds ", options_.max_line_bytes,
                       " bytes without a newline; closing connection"))));
      connection->ShutdownSocket();
      return;
    }
  }
}

}  // namespace serve
}  // namespace psc
