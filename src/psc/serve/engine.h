#ifndef PSC_SERVE_ENGINE_H_
#define PSC_SERVE_ENGINE_H_

/// \file
/// The resident query engine behind pscd.
///
/// One `Engine` owns a registry of named collections, each wrapped in a
/// `delta::IncrementalSystem` that stays alive across requests — compiled
/// eval plans, hash indexes, the containment memo, consistency witnesses
/// and delta-scoped answer caches all stay warm, which is the entire
/// point of a server over the one-shot CLI (where every invocation pays
/// parse + plan + check from scratch).
///
/// Request flow:
///
///   Submit(session, line, callback)
///     │  parse (protocol.h), admission control: draining ⇒ reject,
///     │  queue full ⇒ reject (serve.admission_rejections)
///     ▼
///   fair-share queue: one FIFO per session, sessions served round-robin
///     │  so a client streaming thousands of requests cannot starve an
///     ▼  interactive one
///   dispatcher: pops the next session's request; an `answer` request
///     │  additionally *batches* compatible answers (same verb, same
///     │  collection) from the fronts of other sessions' queues, up to
///     ▼  max_batch
///   batch execution: ONE consistency check for the whole batch,
///      duplicate (query, domain) pairs answered once
///      (serve.batch.dedup_hits), distinct queries fanned out on a single
///      `exec::ParallelFor` pass; every request's response carries its
///      own id and is delivered through its own callback.
///
/// Per-request limits ride `limits::ScopedCallLimits`: the engine merges
/// the request's deadline_ms/node_budget with the server ceilings (the
/// tighter value wins, so clients can only tighten) and installs the
/// overlay around execution — every budget the solver stack builds under
/// the call obeys it, with the usual graceful degradation.
///
/// Shutdown: `BeginShutdown` stops admission, cancels the engine's drain
/// token (adopted by every resident system, so in-flight solver work
/// degrades promptly instead of running to completion), and wakes the
/// dispatchers, which drain the remaining queue — every accepted request
/// still gets a response line — before `Drain` returns.
///
/// Threading: `dispatch_threads > 0` runs that many dispatcher threads;
/// `dispatch_threads == 0` runs none and the owner pumps explicitly with
/// `PumpOne()` — deterministic single-threaded mode for tests and for the
/// in-process benchmark's cold baseline.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psc/delta/incremental.h"
#include "psc/exec/parallel.h"
#include "psc/limits/budget.h"
#include "psc/serve/protocol.h"
#include "psc/sync/mutex.h"
#include "psc/util/result.h"

namespace psc {
namespace serve {

struct EngineOptions {
  /// Solver threads per request (QuerySystem::Options::threads; 0 = auto).
  size_t solver_threads = 0;
  /// Dispatcher threads pulling batches off the queue. 0 = no background
  /// dispatch: the owner calls PumpOne() (deterministic test mode).
  size_t dispatch_threads = 2;
  /// Admission control: queued (not yet executing) requests beyond this
  /// are rejected with ResourceExhausted. 0 = unbounded.
  size_t max_queue = 1024;
  /// Upper bound on one answer batch (≥ 1).
  size_t max_batch = 16;
  /// Server-side request-limit ceilings, merged (tighter wins) with each
  /// request's own deadline_ms/node_budget. 0 = none.
  int64_t deadline_ceiling_ms = 0;
  uint64_t node_budget_ceiling = 0;
  /// Capacity caps installed at construction for the process-global
  /// compiled-plan cache and containment memo (0 = leave unbounded) —
  /// a resident server must bound what the one-shot CLI could let grow.
  size_t plan_cache_capacity = 0;
  size_t containment_cache_capacity = 0;
  /// Forwarded to QuerySystem::Options (process-global switch).
  bool use_compiled_eval = true;
  /// Give every request its own obs::Scope named "serve:<verb>:<seq>" so
  /// run reports break work down per request. Off by default: scopes
  /// accumulate in the report for as long as a handle lives.
  bool per_request_scopes = false;
  ParseLimits parse_limits;
};

/// \brief The resident dispatcher. Thread-safe; one per server process.
class Engine {
 public:
  /// Receives exactly one response line (no trailing newline) per
  /// submitted request. Invoked from a dispatcher thread (or from inside
  /// Submit/PumpOne in manual mode); must be callable concurrently with
  /// other requests' callbacks.
  using Callback = std::function<void(const std::string& response_line)>;

  explicit Engine(const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// \brief Submits one raw request line on behalf of `session`.
  ///
  /// Always results in exactly one callback invocation: parse failures
  /// and admission rejections deliver an error response synchronously,
  /// accepted requests asynchronously after execution. Sessions are
  /// scheduled fairly (round-robin over sessions with queued work).
  void Submit(uint64_t session, const std::string& line, Callback callback);

  /// \brief Manual-dispatch mode: executes the next batch on the calling
  /// thread. Returns false when the queue was empty. Only meaningful with
  /// dispatch_threads == 0.
  bool PumpOne();

  /// \brief Convenience for tests and the benchmark's scripted clients:
  /// Submit + pump-if-manual + wait for the response line.
  std::string Call(uint64_t session, const std::string& line);

  /// \brief Stops admission, cancels resident systems' drain token and
  /// wakes dispatchers. Idempotent.
  void BeginShutdown();

  /// \brief Blocks until every accepted request has been answered. In
  /// manual mode, pumps the queue dry instead of blocking.
  void Drain();

  /// True once BeginShutdown ran.
  bool draining() const;

  /// Hook invoked (once) from BeginShutdown, so a socket front-end can
  /// wake its poll loop. Set before serving begins.
  void SetShutdownNotify(std::function<void()> notify);

  /// The engine's stats document (the `stats` verb's payload), also
  /// usable directly by front-ends.
  std::string StatsJson();

 private:
  struct Pending {
    Request request;
    uint64_t session = 0;
    Callback callback;
    /// steady_clock micros at Submit, for serve.latency_us.<verb>.
    uint64_t submit_micros = 0;
    /// Sequence number, for per-request scope names.
    uint64_t seq = 0;
  };

  void DispatchLoop();
  /// Pops the next fair-share batch. Empty result when no work is queued.
  std::vector<Pending> CollectBatchLocked() PSC_REQUIRES(mutex_);
  void ExecuteBatch(std::vector<Pending> batch);
  void ExecuteOne(Pending& pending);
  /// Runs the verb and returns the response line (ok or error).
  std::string Execute(Pending& pending);

  std::string DoLoad(const Request& request);
  std::string DoCheck(const Request& request);
  std::string DoApplyDelta(const Request& request);
  std::string DoShutdown(const Request& request);
  /// Batched answering: one consistency check, deduped queries, one
  /// ParallelFor pass. Delivers every response itself.
  void ExecuteAnswerBatch(std::vector<Pending>& batch);

  /// Registry lookup; NotFound naming the collection when absent. Shared
  /// ownership so a concurrent `load` replacing the entry cannot free a
  /// system another dispatcher is still executing against.
  Result<std::shared_ptr<delta::IncrementalSystem>> FindSystem(
      const std::string& name);

  QuerySystem::Options SystemOptions() const;
  limits::CallLimits AdmittedLimits(const Request& request) const;
  void Deliver(Pending& pending, const std::string& response);

  const EngineOptions options_;
  limits::CancelToken drain_token_;

  sync::Mutex collections_mutex_{"serve.engine.collections",
                                 sync::kRankServeCollections};
  std::map<std::string, std::shared_ptr<delta::IncrementalSystem>>
      collections_ PSC_GUARDED_BY(collections_mutex_);

  /// The outermost lock of the process: dispatch holds it while touching
  /// the queues and may emit obs metrics (inner ranks) before releasing.
  mutable sync::Mutex mutex_{"serve.engine.queue", sync::kRankServeQueue};
  sync::CondVar cv_;
  sync::CondVar drained_cv_;
  std::map<uint64_t, std::deque<Pending>> queues_ PSC_GUARDED_BY(mutex_);
  /// Sessions with queued work, in round-robin service order.
  std::deque<uint64_t> rr_order_ PSC_GUARDED_BY(mutex_);
  size_t queued_ PSC_GUARDED_BY(mutex_) = 0;
  size_t in_flight_ PSC_GUARDED_BY(mutex_) = 0;
  uint64_t next_seq_ PSC_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PSC_GUARDED_BY(mutex_) = false;
  std::function<void()> shutdown_notify_ PSC_GUARDED_BY(mutex_);

  /// Pool for fanning one answer batch's distinct queries out in a single
  /// exec pass (solvers keep their own per-call pools).
  std::unique_ptr<exec::ThreadPool> batch_pool_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace serve
}  // namespace psc

#endif  // PSC_SERVE_ENGINE_H_
