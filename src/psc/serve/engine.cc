#include "psc/serve/engine.h"

#include <algorithm>
#include <utility>

#include "psc/delta/delta_script.h"
#include "psc/obs/json.h"
#include "psc/obs/metrics.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "psc/parser/parser.h"
#include "psc/relational/query_plan.h"
#include "psc/rewriting/containment.h"
#include "psc/util/string_util.h"

namespace psc {
namespace serve {

namespace {

/// min of two "0 = unlimited" limits: the tighter nonzero value wins, so
/// a client can only tighten the server ceiling.
template <typename T>
T TightenLimit(T a, T b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

EngineOptions Normalize(EngineOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  return options;
}

/// The per-verb instrument switches below are spelled out because the
/// PSC_OBS_* macros cache one static instrument per call site — the
/// metric name must be a literal, not a computed string.
void CountRequest(Verb verb) {
  switch (verb) {
    case Verb::kLoad:
      PSC_OBS_COUNTER_INC("serve.requests.load");
      break;
    case Verb::kCheck:
      PSC_OBS_COUNTER_INC("serve.requests.check");
      break;
    case Verb::kAnswer:
      PSC_OBS_COUNTER_INC("serve.requests.answer");
      break;
    case Verb::kApplyDelta:
      PSC_OBS_COUNTER_INC("serve.requests.apply_delta");
      break;
    case Verb::kStats:
      PSC_OBS_COUNTER_INC("serve.requests.stats");
      break;
    case Verb::kShutdown:
      PSC_OBS_COUNTER_INC("serve.requests.shutdown");
      break;
  }
}

void RecordLatency(Verb verb, uint64_t micros) {
  switch (verb) {
    case Verb::kLoad:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.load", micros);
      break;
    case Verb::kCheck:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.check", micros);
      break;
    case Verb::kAnswer:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.answer", micros);
      break;
    case Verb::kApplyDelta:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.apply_delta", micros);
      break;
    case Verb::kStats:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.stats", micros);
      break;
    case Verb::kShutdown:
      PSC_OBS_HISTOGRAM_RECORD("serve.latency_us.shutdown", micros);
      break;
  }
}

/// Error response with the serve.errors bookkeeping every engine failure
/// path shares.
std::string Fail(const Request& request, const Status& status) {
  PSC_OBS_COUNTER_INC("serve.errors");
  return ErrorResponseLine(&request, status);
}

void OpenResponse(JsonObjectWriter& writer, const Request& request) {
  writer.String("id", request.id);
  writer.String("verb", VerbToString(request.verb));
  writer.Bool("ok", true);
  writer.String("collection", request.collection);
}

std::string FormatAnswerResponse(const Request& request,
                                 const Result<QueryAnswer>& answer) {
  if (!answer.ok()) return Fail(request, answer.status());
  JsonObjectWriter writer;
  OpenResponse(writer, request);
  writer.String("method", answer->method);
  writer.Bool("from_cache", answer->from_cache);
  writer.Uint("worlds_used", answer->worlds_used);
  writer.Bool("truncated", answer->truncated);
  if (answer->truncated) {
    writer.String("truncation_reason", answer->truncation_reason);
  }
  std::string certain = "[";
  for (const Tuple& tuple : answer->certain) {
    if (certain.size() > 1) certain.push_back(',');
    certain.append(StrCat("\"", obs::JsonEscape(TupleToString(tuple)), "\""));
  }
  certain.push_back(']');
  writer.Raw("certain", certain);
  // [tuple, confidence] pairs, confidences rendered with the CLI's six
  // fractional digits so server and one-shot answers compare textually.
  std::string confidences = "[";
  for (const auto& [tuple, confidence] : answer->confidences.entries()) {
    if (confidences.size() > 1) confidences.push_back(',');
    confidences.append(StrCat("[\"", obs::JsonEscape(TupleToString(tuple)),
                              "\",", FormatFixed6(confidence), "]"));
  }
  confidences.push_back(']');
  writer.Raw("confidences", confidences);
  return writer.Finish();
}

}  // namespace

Engine::Engine(const EngineOptions& options) : options_(Normalize(options)) {
  if (options_.plan_cache_capacity > 0) {
    eval::SetQueryPlanCacheCapacity(options_.plan_cache_capacity);
  }
  if (options_.containment_cache_capacity > 0) {
    SetContainmentCacheCapacity(options_.containment_cache_capacity);
  }
  const size_t batch_threads =
      std::min(options_.max_batch, exec::ResolveThreadCount(0));
  if (batch_threads > 1) {
    batch_pool_ = std::make_unique<exec::ThreadPool>(batch_threads);
  }
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

Engine::~Engine() {
  BeginShutdown();
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

QuerySystem::Options Engine::SystemOptions() const {
  QuerySystem::Options options;
  options.threads = options_.solver_threads;
  options.use_compiled_eval = options_.use_compiled_eval;
  // Every resident system adopts the drain token: one Cancel at shutdown
  // degrades all in-flight solver work instead of racing it to finish.
  options.cancel = drain_token_;
  return options;
}

limits::CallLimits Engine::AdmittedLimits(const Request& request) const {
  limits::CallLimits limits;
  limits.deadline_ms =
      TightenLimit(request.deadline_ms, options_.deadline_ceiling_ms);
  limits.node_budget =
      TightenLimit(request.node_budget, options_.node_budget_ceiling);
  return limits;
}

void Engine::Submit(uint64_t session, const std::string& line,
                    Callback callback) {
  const uint64_t start = obs::TraceNowMicros();
  auto parsed = ParseRequest(line, options_.parse_limits);
  if (!parsed.ok()) {
    PSC_OBS_COUNTER_INC("serve.errors");
    if (callback) callback(ErrorResponseLine(nullptr, parsed.status()));
    return;
  }
  Pending pending;
  pending.request = std::move(*parsed);
  pending.session = session;
  pending.callback = std::move(callback);
  pending.submit_micros = start;

  Status rejection = Status::OK();
  {
    sync::MutexLock lock(&mutex_);
    if (shutdown_) {
      rejection = Status::ResourceExhausted("server is draining");
    } else if (options_.max_queue > 0 && queued_ >= options_.max_queue) {
      rejection = Status::ResourceExhausted(
          StrCat("admission queue full (", queued_, " queued)"));
    } else {
      pending.seq = ++next_seq_;
      std::deque<Pending>& queue = queues_[session];
      if (queue.empty()) rr_order_.push_back(session);
      queue.push_back(std::move(pending));
      ++queued_;
      PSC_OBS_GAUGE_SET("serve.queue_depth",
                        static_cast<int64_t>(queued_));
    }
  }
  if (!rejection.ok()) {
    PSC_OBS_COUNTER_INC("serve.admission_rejections");
    Deliver(pending, Fail(pending.request, rejection));
    return;
  }
  cv_.NotifyOne();
}

std::vector<Engine::Pending> Engine::CollectBatchLocked() {
  std::vector<Pending> batch;
  while (!rr_order_.empty()) {
    const uint64_t session = rr_order_.front();
    rr_order_.pop_front();
    auto it = queues_.find(session);
    if (it == queues_.end() || it->second.empty()) {
      if (it != queues_.end()) queues_.erase(it);
      continue;
    }
    batch.push_back(std::move(it->second.front()));
    it->second.pop_front();
    --queued_;
    if (!it->second.empty()) {
      rr_order_.push_back(session);
    } else {
      queues_.erase(it);
    }
    break;
  }
  if (batch.empty()) return batch;

  // Batching: sweep the current round-robin order once, stealing
  // consecutive compatible fronts (answer against the same collection)
  // from each session. One sweep keeps the fill O(sessions) and cannot
  // starve anyone: each stolen request would have been served in these
  // sessions' next turns anyway.
  // Copied, not referenced: push_back below may reallocate `batch` and
  // would dangle a reference into it.
  const Verb head_verb = batch.front().request.verb;
  const std::string head_collection = batch.front().request.collection;
  if (head_verb == Verb::kAnswer && options_.max_batch > 1) {
    size_t sweep = rr_order_.size();
    while (sweep-- > 0 && batch.size() < options_.max_batch &&
           !rr_order_.empty()) {
      const uint64_t session = rr_order_.front();
      rr_order_.pop_front();
      auto it = queues_.find(session);
      if (it == queues_.end() || it->second.empty()) {
        if (it != queues_.end()) queues_.erase(it);
        continue;
      }
      while (batch.size() < options_.max_batch && !it->second.empty() &&
             it->second.front().request.verb == Verb::kAnswer &&
             it->second.front().request.collection == head_collection) {
        batch.push_back(std::move(it->second.front()));
        it->second.pop_front();
        --queued_;
      }
      if (!it->second.empty()) {
        rr_order_.push_back(session);
      } else {
        queues_.erase(it);
      }
    }
  }
  PSC_OBS_GAUGE_SET("serve.queue_depth", static_cast<int64_t>(queued_));
  return batch;
}

void Engine::DispatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      sync::MutexLock lock(&mutex_);
      while (queued_ == 0 && !shutdown_) cv_.Wait(mutex_);
      if (queued_ == 0 && shutdown_) return;
      batch = CollectBatchLocked();
      if (batch.empty()) continue;
      in_flight_ += batch.size();
    }
    const size_t executed = batch.size();
    ExecuteBatch(std::move(batch));
    {
      sync::MutexLock lock(&mutex_);
      in_flight_ -= executed;
      if (queued_ == 0 && in_flight_ == 0) drained_cv_.NotifyAll();
    }
  }
}

bool Engine::PumpOne() {
  std::vector<Pending> batch;
  {
    sync::MutexLock lock(&mutex_);
    batch = CollectBatchLocked();
    if (batch.empty()) return false;
    in_flight_ += batch.size();
  }
  const size_t executed = batch.size();
  ExecuteBatch(std::move(batch));
  {
    sync::MutexLock lock(&mutex_);
    in_flight_ -= executed;
    if (queued_ == 0 && in_flight_ == 0) drained_cv_.NotifyAll();
  }
  return true;
}

std::string Engine::Call(uint64_t session, const std::string& line) {
  sync::Mutex done_mutex{"serve.engine.call_done", sync::kRankServeDone};
  sync::CondVar done_cv;
  std::string response;
  bool done = false;
  Submit(session, line, [&](const std::string& response_line) {
    // Notify *under* the lock: done_mutex/done_cv live on Call's stack,
    // and the waiter frees them the moment it observes `done` — which it
    // cannot do before this critical section ends, so the signal always
    // completes against a live condition variable.
    sync::MutexLock lock(&done_mutex);
    response = response_line;
    done = true;
    done_cv.NotifyOne();
  });
  if (options_.dispatch_threads == 0) {
    for (;;) {
      {
        sync::MutexLock lock(&done_mutex);
        if (done) return response;
      }
      if (!PumpOne()) break;  // delivered by this pump or already rejected
    }
  }
  sync::MutexLock lock(&done_mutex);
  while (!done) done_cv.Wait(done_mutex);
  return response;
}

void Engine::BeginShutdown() {
  std::function<void()> notify;
  {
    sync::MutexLock lock(&mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    notify = shutdown_notify_;
  }
  drain_token_.Cancel();
  cv_.NotifyAll();
  if (notify) notify();
}

void Engine::Drain() {
  if (options_.dispatch_threads == 0) {
    while (PumpOne()) {
    }
    return;
  }
  sync::MutexLock lock(&mutex_);
  while (queued_ > 0 || in_flight_ > 0) drained_cv_.Wait(mutex_);
}

bool Engine::draining() const {
  sync::MutexLock lock(&mutex_);
  return shutdown_;
}

void Engine::SetShutdownNotify(std::function<void()> notify) {
  sync::MutexLock lock(&mutex_);
  shutdown_notify_ = std::move(notify);
}

void Engine::ExecuteBatch(std::vector<Pending> batch) {
  if (batch.front().request.verb == Verb::kAnswer) {
    ExecuteAnswerBatch(batch);
    return;
  }
  for (Pending& pending : batch) ExecuteOne(pending);
}

void Engine::ExecuteOne(Pending& pending) {
  Deliver(pending, Execute(pending));
}

std::string Engine::Execute(Pending& pending) {
  obs::Scope scope;
  if (options_.per_request_scopes) {
    scope = obs::Scope::Create(StrCat(
        "serve:", VerbToString(pending.request.verb), ":", pending.seq));
  }
  const obs::ScopeGuard scope_guard(scope);
  switch (pending.request.verb) {
    case Verb::kLoad:
      return DoLoad(pending.request);
    case Verb::kCheck:
      return DoCheck(pending.request);
    case Verb::kApplyDelta:
      return DoApplyDelta(pending.request);
    case Verb::kShutdown:
      return DoShutdown(pending.request);
    case Verb::kStats: {
      JsonObjectWriter writer;
      OpenResponse(writer, pending.request);
      writer.Raw("stats", StatsJson());
      return writer.Finish();
    }
    case Verb::kAnswer:
      break;  // handled by ExecuteAnswerBatch
  }
  return Fail(pending.request, Status::Internal("unroutable verb"));
}

Result<std::shared_ptr<delta::IncrementalSystem>> Engine::FindSystem(
    const std::string& name) {
  sync::MutexLock lock(&collections_mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(
        StrCat("no collection named '", name, "' is loaded"));
  }
  return it->second;
}

std::string Engine::DoLoad(const Request& request) {
  auto collection = ParseCollection(request.text);
  if (!collection.ok()) return Fail(request, collection.status());
  const size_t sources = collection->size();
  auto system =
      delta::IncrementalSystem::Create(std::move(*collection), SystemOptions());
  if (!system.ok()) return Fail(request, system.status());
  bool reloaded = false;
  {
    sync::MutexLock lock(&collections_mutex_);
    reloaded = collections_.count(request.collection) > 0;
    collections_[request.collection] =
        std::make_shared<delta::IncrementalSystem>(std::move(*system));
  }
  JsonObjectWriter writer;
  OpenResponse(writer, request);
  writer.Uint("sources", sources);
  writer.Bool("reloaded", reloaded);
  return writer.Finish();
}

std::string Engine::DoCheck(const Request& request) {
  auto system = FindSystem(request.collection);
  if (!system.ok()) return Fail(request, system.status());
  const limits::ScopedCallLimits limits_guard(AdmittedLimits(request));
  auto report = (*system)->CheckConsistency();
  if (!report.ok()) return Fail(request, report.status());
  JsonObjectWriter writer;
  OpenResponse(writer, request);
  writer.String("verdict", ConsistencyVerdictToString(report->verdict));
  writer.String("method", report->method);
  if (report->verdict == ConsistencyVerdict::kUnknown) {
    writer.String("unknown_reason", report->unknown_reason);
  }
  writer.Uint("combinations_tried", report->combinations_tried);
  writer.Uint("combinations_skipped", report->combinations_skipped);
  return writer.Finish();
}

std::string Engine::DoApplyDelta(const Request& request) {
  auto system = FindSystem(request.collection);
  if (!system.ok()) return Fail(request, system.status());
  auto batches = delta::ParseDeltaScript(request.script);
  if (!batches.ok()) return Fail(request, batches.status());
  uint64_t inserted = 0;
  uint64_t retracted = 0;
  uint64_t noops = 0;
  size_t applied = 0;
  for (const CollectionDelta& delta : *batches) {
    auto summary = (*system)->ApplyDelta(delta);
    if (!summary.ok()) {
      // SourceCollection::ApplyDelta is all-or-nothing per batch, so the
      // failed batch left no partial state — but earlier batches stuck.
      return Fail(request,
                  Status::InvalidArgument(StrCat(
                      summary.status().ToString(), " (after ", applied, " of ",
                      batches->size(), " batches applied)")));
    }
    inserted += summary->inserted;
    retracted += summary->retracted;
    noops += summary->noops;
    ++applied;
  }
  JsonObjectWriter writer;
  OpenResponse(writer, request);
  writer.Uint("batches", applied);
  writer.Uint("inserted", inserted);
  writer.Uint("retracted", retracted);
  writer.Uint("noops", noops);
  writer.Uint("generation", (*system)->generation());
  return writer.Finish();
}

std::string Engine::DoShutdown(const Request& request) {
  BeginShutdown();
  JsonObjectWriter writer;
  OpenResponse(writer, request);
  writer.Bool("draining", true);
  return writer.Finish();
}

void Engine::ExecuteAnswerBatch(std::vector<Pending>& batch) {
  PSC_OBS_HISTOGRAM_RECORD("serve.batch.size", batch.size());
  auto system = FindSystem(batch.front().request.collection);
  if (!system.ok()) {
    for (Pending& pending : batch) {
      Deliver(pending, Fail(pending.request, system.status()));
    }
    return;
  }
  delta::IncrementalSystem* resident = system->get();

  // One consistency check covers the whole batch: it refreshes the cached
  // report so answer-cache reuse is possible at all (see incremental.h).
  // Failures are not fatal here — each answer surfaces its own.
  (void)resident->CheckConsistency();

  // The default domain (current snapshot's mentioned constants) is also
  // shared by every request that did not pin one explicitly.
  std::vector<Value> default_domain;
  bool need_default = false;
  for (const Pending& pending : batch) {
    if (!pending.request.domain_given) {
      need_default = true;
      break;
    }
  }
  if (need_default) {
    default_domain = resident->CollectionSnapshot().MentionedConstants();
  }

  // Identical (query, domain) pairs are answered once and fanned back out
  // to every requester — the common case when many sessions poll the same
  // dashboard query.
  struct Unique {
    size_t rep = 0;
    std::vector<size_t> members;
    Result<QueryAnswer> answer = Status::Internal("unanswered");
  };
  std::vector<Unique> uniques;
  std::map<std::string, size_t> by_key;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i].request;
    const std::string key =
        StrCat(request.query, "\x01",
               request.domain_given ? TupleToString(request.domain) : "\x02");
    auto [it, inserted] = by_key.emplace(key, uniques.size());
    if (inserted) {
      Unique unique;
      unique.rep = i;
      uniques.push_back(std::move(unique));
    }
    uniques[it->second].members.push_back(i);
  }
  PSC_OBS_COUNTER_ADD("serve.batch.dedup_hits",
                      batch.size() - uniques.size());

  // The single exec pass over the batch's distinct queries.
  const auto run = [&](size_t u) {
    Pending& rep = batch[uniques[u].rep];
    obs::Scope scope;
    if (options_.per_request_scopes) {
      scope = obs::Scope::Create(StrCat("serve:answer:", rep.seq));
    }
    const obs::ScopeGuard scope_guard(scope);
    const limits::ScopedCallLimits limits_guard(AdmittedLimits(rep.request));
    auto query = ParseQuery(rep.request.query);
    if (!query.ok()) {
      uniques[u].answer = query.status();
      return;
    }
    const std::vector<Value>& domain =
        rep.request.domain_given ? rep.request.domain : default_domain;
    uniques[u].answer = resident->AnswerExact(*query, domain);
  };
  if (uniques.size() > 1 && batch_pool_ != nullptr) {
    exec::ParallelFor(batch_pool_.get(), uniques.size(), run);
  } else {
    for (size_t u = 0; u < uniques.size(); ++u) run(u);
  }

  for (const Unique& unique : uniques) {
    for (const size_t member : unique.members) {
      Deliver(batch[member],
              FormatAnswerResponse(batch[member].request, unique.answer));
    }
  }
}

std::string Engine::StatsJson() {
  JsonObjectWriter stats;
  {
    sync::MutexLock lock(&mutex_);
    stats.Bool("accepting", !shutdown_);
    stats.Uint("queue_depth", queued_);
    stats.Uint("in_flight", in_flight_);
  }
  {
    JsonObjectWriter plan_cache;
    plan_cache.Uint("size", eval::QueryPlanCacheSize());
    plan_cache.Uint("capacity", eval::QueryPlanCacheCapacity());
    stats.Raw("plan_cache", plan_cache.Finish());
    JsonObjectWriter containment_cache;
    containment_cache.Uint("size", ContainmentCacheSize());
    containment_cache.Uint("capacity", ContainmentCacheCapacity());
    stats.Raw("containment_cache", containment_cache.Finish());
  }
  {
    sync::MutexLock lock(&collections_mutex_);
    JsonObjectWriter collections;
    for (const auto& [name, system] : collections_) {
      JsonObjectWriter entry;
      entry.Uint("sources", system->CollectionSnapshot().size());
      entry.Uint("generation", system->generation());
      entry.Uint("answer_cache", system->AnswerCacheSize());
      collections.Raw(name.c_str(), entry.Finish());
    }
    stats.Raw("collections", collections.Finish());
  }
  return stats.Finish();
}

void Engine::Deliver(Pending& pending, const std::string& response) {
  CountRequest(pending.request.verb);
  const uint64_t now = obs::TraceNowMicros();
  RecordLatency(pending.request.verb,
                now > pending.submit_micros ? now - pending.submit_micros : 0);
  if (pending.callback) pending.callback(response);
}

}  // namespace serve
}  // namespace psc
