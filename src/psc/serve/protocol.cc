#include "psc/serve/protocol.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "psc/obs/json.h"
#include "psc/util/string_util.h"

namespace psc {
namespace serve {

namespace {

/// Known verbs in wire order; kept in sync with the Verb enum.
struct VerbName {
  Verb verb;
  const char* name;
};

constexpr VerbName kVerbNames[] = {
    {Verb::kLoad, "load"},           {Verb::kCheck, "check"},
    {Verb::kAnswer, "answer"},       {Verb::kApplyDelta, "apply-delta"},
    {Verb::kStats, "stats"},         {Verb::kShutdown, "shutdown"},
};

/// The member must be a string when present; empty string when absent.
Result<std::string> OptionalString(const obs::JsonValue& object,
                                   const char* key) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return std::string();
  if (!member->is_string()) {
    return Status::InvalidArgument(StrCat("'", key, "' must be a string"));
  }
  return member->string();
}

/// The member must be a non-negative integral number when present.
Result<uint64_t> OptionalUint(const obs::JsonValue& object, const char* key) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return uint64_t{0};
  if (!member->is_number()) {
    return Status::InvalidArgument(
        StrCat("'", key, "' must be a non-negative integer"));
  }
  const double value = member->number();
  if (value < 0 || value != std::floor(value) ||
      value > 9007199254740992.0 /* 2^53: exact doubles end here */) {
    return Status::InvalidArgument(
        StrCat("'", key, "' must be a non-negative integer"));
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

const char* VerbToString(Verb verb) {
  for (const VerbName& entry : kVerbNames) {
    if (entry.verb == verb) return entry.name;
  }
  return "?";
}

Result<Request> ParseRequest(const std::string& line,
                             const ParseLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return Status::InvalidArgument(
        StrCat("oversized request line: ", line.size(), " bytes > limit of ",
               limits.max_line_bytes));
  }
  auto document = obs::ParseJson(line);
  if (!document.ok()) {
    return Status::InvalidArgument(
        StrCat("malformed or truncated JSON: ", document.status().message()));
  }
  if (!document->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request request;

  const obs::JsonValue* verb = document->Find("verb");
  if (verb == nullptr || !verb->is_string()) {
    return Status::InvalidArgument("missing or non-string 'verb'");
  }
  bool known = false;
  for (const VerbName& entry : kVerbNames) {
    if (verb->string() == entry.name) {
      request.verb = entry.verb;
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument(
        StrCat("unknown verb '", verb->string(), "'"));
  }

  if (const obs::JsonValue* id = document->Find("id"); id != nullptr) {
    if (id->is_string()) {
      request.id = id->string();
    } else if (id->is_number() && id->number() == std::floor(id->number())) {
      request.id = StrCat(static_cast<int64_t>(id->number()));
    } else {
      return Status::InvalidArgument("'id' must be a string or an integer");
    }
  }

  PSC_ASSIGN_OR_RETURN(const std::string collection,
                       OptionalString(*document, "collection"));
  if (!collection.empty()) request.collection = collection;
  PSC_ASSIGN_OR_RETURN(request.text, OptionalString(*document, "text"));
  PSC_ASSIGN_OR_RETURN(request.query, OptionalString(*document, "query"));
  PSC_ASSIGN_OR_RETURN(request.script, OptionalString(*document, "script"));

  if (const obs::JsonValue* domain = document->Find("domain");
      domain != nullptr) {
    if (!domain->is_array()) {
      return Status::InvalidArgument(
          "'domain' must be an array of integers and strings");
    }
    request.domain_given = true;
    for (const obs::JsonValue& entry : domain->array()) {
      if (entry.is_string()) {
        request.domain.emplace_back(entry.string());
      } else if (entry.is_number() &&
                 entry.number() == std::floor(entry.number())) {
        request.domain.emplace_back(static_cast<int64_t>(entry.number()));
      } else {
        return Status::InvalidArgument(
            "'domain' entries must be integers or strings");
      }
    }
  }

  PSC_ASSIGN_OR_RETURN(const uint64_t deadline,
                       OptionalUint(*document, "deadline_ms"));
  request.deadline_ms = static_cast<int64_t>(deadline);
  PSC_ASSIGN_OR_RETURN(request.node_budget,
                       OptionalUint(*document, "node_budget"));

  // Verb-specific required members, validated here so the engine can
  // assume a well-formed request.
  switch (request.verb) {
    case Verb::kLoad:
      if (request.text.empty()) {
        return Status::InvalidArgument("'load' requires non-empty 'text'");
      }
      break;
    case Verb::kAnswer:
      if (request.query.empty()) {
        return Status::InvalidArgument("'answer' requires non-empty 'query'");
      }
      break;
    case Verb::kApplyDelta:
      if (request.script.empty()) {
        return Status::InvalidArgument(
            "'apply-delta' requires non-empty 'script'");
      }
      break;
    case Verb::kCheck:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return request;
}

JsonObjectWriter& JsonObjectWriter::String(const char* key,
                                           const std::string& value) {
  return Raw(key, StrCat("\"", obs::JsonEscape(value), "\""));
}

JsonObjectWriter& JsonObjectWriter::Uint(const char* key, uint64_t value) {
  return Raw(key, StrCat(value));
}

JsonObjectWriter& JsonObjectWriter::Int(const char* key, int64_t value) {
  return Raw(key, StrCat(value));
}

JsonObjectWriter& JsonObjectWriter::Bool(const char* key, bool value) {
  return Raw(key, value ? "true" : "false");
}

JsonObjectWriter& JsonObjectWriter::Raw(const char* key,
                                        const std::string& raw) {
  if (!body_.empty()) body_.push_back(',');
  body_.append(StrCat("\"", obs::JsonEscape(key), "\":", raw));
  return *this;
}

std::string JsonObjectWriter::Finish() const {
  return StrCat("{", body_, "}");
}

std::string FormatFixed6(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

std::string ErrorResponseLine(const Request* request, const Status& status) {
  JsonObjectWriter writer;
  writer.String("id", request != nullptr ? request->id : "");
  writer.String("verb", request != nullptr ? VerbToString(request->verb) : "?");
  writer.Bool("ok", false);
  writer.String("error", status.ToString());
  return writer.Finish();
}

}  // namespace serve
}  // namespace psc
