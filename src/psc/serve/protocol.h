#ifndef PSC_SERVE_PROTOCOL_H_
#define PSC_SERVE_PROTOCOL_H_

/// \file
/// The pscd wire protocol: newline-delimited JSON requests and responses.
///
/// One request per line, one JSON object per request; one response line
/// per request, in general NOT in request order (the dispatcher batches
/// and reorders across sessions), so every request may carry a client
/// correlation `id` that its response echoes verbatim. A client that
/// keeps at most one request outstanding needs no ids at all.
///
/// Request grammar (unknown members are ignored for forward
/// compatibility):
///
///   {"verb": "load" | "check" | "answer" | "apply-delta" | "stats"
///          | "shutdown",
///    "id": <string or integer>,            // optional, echoed
///    "collection": <string>,               // optional, default "default"
///    "text": <string>,                     // load: collection source text
///    "query": <string>,                    // answer: "Ans(x) <- R(x)"
///    "domain": [<int or string>, ...],     // answer: optional domain
///    "script": <string>,                   // apply-delta: delta script
///    "deadline_ms": <integer>,             // optional per-request limits;
///    "node_budget": <integer>}             //   capped by the server
///
/// Responses are JSON objects with at least {"id", "verb", "ok"}; failed
/// requests carry {"ok": false, "error": <message>} and verb-specific
/// payload members otherwise (see serve/engine.cc). Example session:
///
///   -> {"verb":"load","collection":"m","text":"source S1 { ... }"}
///   <- {"id":"","verb":"load","ok":true,"collection":"m","sources":2}
///   -> {"id":1,"verb":"answer","collection":"m","query":"A(x) <- R(x)"}
///   <- {"id":"1","verb":"answer","ok":true,"method":"exact-enumeration",
///       "certain":["(\"b\")"],"confidences":[["(\"b\")",1.000000]],...}
///
/// Parsing is strict about the envelope (size cap, well-formed JSON, one
/// object, known verb, verb-specific required members) and lenient about
/// extras, so a malformed or truncated line yields one error response
/// instead of desynchronizing the stream.

#include <cstdint>
#include <string>
#include <vector>

#include "psc/relational/value.h"
#include "psc/util/result.h"

namespace psc {
namespace serve {

/// Protocol verbs, mapping 1:1 onto the one-shot CLI's solving commands
/// (`load` replaces the CLI's positional file argument; `stats` and
/// `shutdown` are service-only).
enum class Verb {
  kLoad,
  kCheck,
  kAnswer,
  kApplyDelta,
  kStats,
  kShutdown,
};

const char* VerbToString(Verb verb);

/// Envelope limits enforced before any JSON work happens.
struct ParseLimits {
  /// Hard cap on one request line; longer lines are rejected without
  /// being parsed (and the socket layer closes the connection, since an
  /// oversized line means the stream can no longer be framed reliably).
  size_t max_line_bytes = size_t{1} << 20;
};

/// A parsed request. String members not applicable to `verb` are empty.
struct Request {
  Verb verb = Verb::kCheck;
  /// Client correlation id, echoed in the response ("" when absent).
  std::string id;
  /// Target collection name in the server's registry.
  std::string collection = "default";
  /// load: source-collection text (parser.h grammar).
  std::string text;
  /// answer: conjunctive query text.
  std::string query;
  /// answer: explicit finite domain; when not given the server uses the
  /// current collection snapshot's mentioned constants (matching the
  /// CLI's `--apply-delta` streaming default).
  std::vector<Value> domain;
  bool domain_given = false;
  /// apply-delta: delta-script text (delta_script.h grammar).
  std::string script;
  /// Requested per-request limits; 0 = server default. The server clamps
  /// both to its configured ceilings — a client can tighten its own
  /// budget, never widen it.
  int64_t deadline_ms = 0;
  uint64_t node_budget = 0;
};

/// Parses one request line. Errors (oversized line, malformed/truncated
/// JSON, non-object document, missing or unknown verb, wrong member
/// types, missing verb-specific members) come back as InvalidArgument
/// with a message suitable for the error response.
Result<Request> ParseRequest(const std::string& line,
                             const ParseLimits& limits = {});

/// \name Response assembly
///
/// A minimal ordered JSON-object writer — just enough for the engine's
/// one-line responses, keeping serve/ free of a JSON-library dependency
/// the rest of the codebase does not have.
/// @{

class JsonObjectWriter {
 public:
  /// Appends "key":"<escaped value>".
  JsonObjectWriter& String(const char* key, const std::string& value);
  JsonObjectWriter& Uint(const char* key, uint64_t value);
  JsonObjectWriter& Int(const char* key, int64_t value);
  JsonObjectWriter& Bool(const char* key, bool value);
  /// Appends "key":<raw> with `raw` emitted verbatim (caller guarantees
  /// it is valid JSON — a nested object/array built separately).
  JsonObjectWriter& Raw(const char* key, const std::string& raw);
  /// The accumulated "{...}" document.
  std::string Finish() const;

 private:
  std::string body_;
};

/// `value` with six fractional digits, the CLI's confidence precision —
/// responses and `psc answer` output stay digit-identical.
std::string FormatFixed6(double value);

/// The uniform failure response: {"id","verb","ok":false,"error"}.
/// `request` may be null (the line never parsed); `verb_hint` then labels
/// the verb member as "?".
std::string ErrorResponseLine(const Request* request, const Status& status);

/// @}

}  // namespace serve
}  // namespace psc

#endif  // PSC_SERVE_PROTOCOL_H_
