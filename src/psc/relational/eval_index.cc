#include "psc/relational/eval_index.h"

#include <algorithm>
#include <functional>

#include "psc/obs/metrics.h"

namespace psc {
namespace eval {

size_t TupleHash::operator()(const Tuple& tuple) const {
  // FNV-1a over (kind, payload-hash) pairs.
  size_t h = 1469598103934665603ULL;
  const auto mix = [&h](size_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Value& value : tuple) {
    if (value.is_int()) {
      mix(0x9e3779b97f4a7c15ULL);
      mix(std::hash<int64_t>{}(value.AsInt()));
    } else {
      mix(0xc2b2ae3d27d4eb4fULL);
      mix(std::hash<std::string>{}(value.AsString()));
    }
  }
  return h;
}

Tuple RelationIndex::KeyFor(const Tuple& tuple,
                            const std::vector<uint32_t>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (const uint32_t pos : positions) key.push_back(tuple[pos]);
  return key;
}

std::shared_ptr<RelationIndex> RelationIndex::Build(
    const std::set<Tuple>& extension, size_t arity,
    std::vector<uint32_t> positions) {
  auto index = std::make_shared<RelationIndex>();
  index->arity = arity;
  index->positions = std::move(positions);
  // std::set iteration is sorted, so bucket vectors inherit canonical
  // tuple order — probe enumeration stays deterministic.
  for (const Tuple& tuple : extension) {
    if (tuple.size() != arity) continue;
    index->buckets[KeyFor(tuple, index->positions)].push_back(&tuple);
  }
  PSC_OBS_COUNTER_INC("eval.index.builds");
  PSC_OBS_HISTOGRAM_RECORD("eval.index.tuples", extension.size());
  return index;
}

void RelationIndex::Link(const Tuple* node) {
  if (node->size() != arity) return;
  std::vector<const Tuple*>& bucket = buckets[KeyFor(*node, positions)];
  // Splice at the canonical position so the bucket stays sorted exactly
  // as a fresh Build would lay it out.
  const auto at = std::lower_bound(
      bucket.begin(), bucket.end(), node,
      [](const Tuple* a, const Tuple* b) { return *a < *b; });
  bucket.insert(at, node);
}

void RelationIndex::Unlink(const Tuple* node) {
  if (node->size() != arity) return;
  const auto it = buckets.find(KeyFor(*node, positions));
  if (it == buckets.end()) return;
  std::vector<const Tuple*>& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), node), bucket.end());
  if (bucket.empty()) buckets.erase(it);
}

std::shared_ptr<const RelationIndex> IndexCache::GetOrBuild(
    const std::set<Tuple>& extension, uint64_t relation_generation,
    const std::string& relation, size_t arity,
    const std::vector<uint32_t>& positions) {
  sync::MutexLock lock(&mutex_);
  Key key{relation, arity, positions};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.generation == relation_generation) {
      PSC_OBS_COUNTER_INC("eval.index.hits");
      return it->second.index;
    }
    entries_.erase(it);  // stale: this relation mutated past the entry
  }
  auto index = RelationIndex::Build(extension, arity, positions);
  entries_.emplace(std::move(key), Entry{relation_generation, index});
  return index;
}

void IndexCache::ApplyRelationDelta(const std::string& relation,
                                    const std::vector<const Tuple*>& inserted,
                                    const std::vector<const Tuple*>& retracted,
                                    size_t size_after, uint64_t old_generation,
                                    uint64_t new_generation) {
  const size_t churn = inserted.size() + retracted.size();
  sync::MutexLock lock(&mutex_);
  auto it = entries_.lower_bound(Key{relation, 0, {}});
  while (it != entries_.end() && it->first.relation == relation) {
    Entry& entry = it->second;
    if (entry.generation != old_generation) {
      // Already stale before this batch; it would rebuild on next probe
      // anyway, so patching it forward would resurrect missed mutations.
      it = entries_.erase(it);
      continue;
    }
    if (churn * kIndexChurnRebuildDivisor > size_after) {
      PSC_OBS_COUNTER_INC("delta.index.rebuilds");
      it = entries_.erase(it);
      continue;
    }
    std::shared_ptr<RelationIndex> index = entry.index;
    if (index.use_count() > 2) {  // cache + local: someone else holds it
      index = std::make_shared<RelationIndex>(*index);
      PSC_OBS_COUNTER_INC("delta.index.cow_copies");
    }
    for (const Tuple* node : retracted) index->Unlink(node);
    for (const Tuple* node : inserted) index->Link(node);
    entry.index = std::move(index);
    entry.generation = new_generation;
    PSC_OBS_COUNTER_INC("delta.index.incremental_updates");
    ++it;
  }
}

void IndexCache::Clear() {
  sync::MutexLock lock(&mutex_);
  entries_.clear();
}

size_t IndexCache::size() const {
  sync::MutexLock lock(&mutex_);
  return entries_.size();
}

}  // namespace eval
}  // namespace psc
