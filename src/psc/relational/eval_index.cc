#include "psc/relational/eval_index.h"

#include <functional>

#include "psc/obs/metrics.h"

namespace psc {
namespace eval {

size_t TupleHash::operator()(const Tuple& tuple) const {
  // FNV-1a over (kind, payload-hash) pairs.
  size_t h = 1469598103934665603ULL;
  const auto mix = [&h](size_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Value& value : tuple) {
    if (value.is_int()) {
      mix(0x9e3779b97f4a7c15ULL);
      mix(std::hash<int64_t>{}(value.AsInt()));
    } else {
      mix(0xc2b2ae3d27d4eb4fULL);
      mix(std::hash<std::string>{}(value.AsString()));
    }
  }
  return h;
}

Tuple RelationIndex::KeyFor(const Tuple& tuple,
                            const std::vector<uint32_t>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (const uint32_t pos : positions) key.push_back(tuple[pos]);
  return key;
}

std::shared_ptr<const RelationIndex> RelationIndex::Build(
    const std::set<Tuple>& extension, size_t arity,
    std::vector<uint32_t> positions) {
  auto index = std::make_shared<RelationIndex>();
  index->arity = arity;
  index->positions = std::move(positions);
  // std::set iteration is sorted, so bucket vectors inherit canonical
  // tuple order — probe enumeration stays deterministic.
  for (const Tuple& tuple : extension) {
    if (tuple.size() != arity) continue;
    index->buckets[KeyFor(tuple, index->positions)].push_back(&tuple);
  }
  PSC_OBS_COUNTER_INC("eval.index.builds");
  PSC_OBS_HISTOGRAM_RECORD("eval.index.tuples", extension.size());
  return index;
}

std::shared_ptr<const RelationIndex> IndexCache::GetOrBuild(
    const std::set<Tuple>& extension, uint64_t generation,
    const std::string& relation, size_t arity,
    const std::vector<uint32_t>& positions) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (generation_ != generation) {
    entries_.clear();
    generation_ = generation;
  }
  Key key{relation, arity, positions};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    PSC_OBS_COUNTER_INC("eval.index.hits");
    return it->second;
  }
  auto index = RelationIndex::Build(extension, arity, positions);
  entries_.emplace(std::move(key), index);
  return index;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace eval
}  // namespace psc
