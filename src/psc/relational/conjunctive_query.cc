#include "psc/relational/conjunctive_query.h"

#include <algorithm>
#include <optional>

#include "psc/obs/metrics.h"
#include "psc/relational/builtin.h"
#include "psc/relational/query_plan.h"
#include "psc/util/string_util.h"

namespace psc {

Result<Tuple> GroundTerms(const std::vector<Term>& terms,
                          const Valuation& valuation) {
  Tuple tuple;
  tuple.reserve(terms.size());
  for (const Term& term : terms) {
    if (term.is_constant()) {
      tuple.push_back(term.constant());
    } else {
      auto it = valuation.find(term.var_name());
      if (it == valuation.end()) {
        return Status::InvalidArgument(
            StrCat("unbound variable '", term.var_name(), "'"));
      }
      tuple.push_back(it->second);
    }
  }
  return tuple;
}

ConjunctiveQuery::ConjunctiveQuery(Atom head, std::vector<Atom> body)
    : head_(std::move(head)), body_(std::move(body)) {
  for (const Atom& atom : body_) {
    if (IsBuiltinPredicate(atom.predicate())) {
      builtin_body_.push_back(atom);
    } else {
      relational_body_.push_back(atom);
    }
  }
}

Result<ConjunctiveQuery> ConjunctiveQuery::Create(Atom head,
                                                  std::vector<Atom> body) {
  if (IsBuiltinPredicate(head.predicate())) {
    return Status::InvalidArgument(
        StrCat("head predicate '", head.predicate(), "' is a built-in"));
  }
  std::set<std::string> relational_vars;
  std::map<std::string, size_t> arities;
  for (const Atom& atom : body) {
    if (IsBuiltinPredicate(atom.predicate())) {
      if (atom.arity() != 2) {
        return Status::InvalidArgument(
            StrCat("built-in '", atom.predicate(), "' expects 2 arguments, got ",
                   atom.arity()));
      }
      continue;
    }
    auto [it, inserted] = arities.emplace(atom.predicate(), atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return Status::InvalidArgument(
          StrCat("relation '", atom.predicate(), "' used with arities ",
                 it->second, " and ", atom.arity()));
    }
    for (const std::string& var : atom.Variables()) {
      relational_vars.insert(var);
    }
  }
  for (const std::string& var : head.Variables()) {
    if (relational_vars.count(var) == 0) {
      return Status::InvalidArgument(
          StrCat("unsafe query: head variable '", var,
                 "' does not occur in a relational body atom"));
    }
  }
  for (const Atom& atom : body) {
    if (!IsBuiltinPredicate(atom.predicate())) continue;
    for (const std::string& var : atom.Variables()) {
      if (relational_vars.count(var) == 0) {
        return Status::InvalidArgument(
            StrCat("unsafe query: built-in variable '", var,
                   "' does not occur in a relational body atom"));
      }
    }
  }
  return ConjunctiveQuery(std::move(head), std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::Identity(const std::string& relation,
                                            size_t arity,
                                            const std::string& view_name) {
  std::vector<Term> terms;
  terms.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    terms.push_back(Term::Var(StrCat("x", i + 1)));
  }
  const std::string name = view_name.empty() ? "V_" + relation : view_name;
  Atom head(name, terms);
  Atom body_atom(relation, terms);
  auto result = Create(std::move(head), {std::move(body_atom)});
  PSC_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).ValueOrDie();
}

bool ConjunctiveQuery::IsIdentity() const {
  if (!builtin_body_.empty() || relational_body_.size() != 1) return false;
  const Atom& atom = relational_body_[0];
  if (atom.terms() != head_.terms()) return false;
  std::set<Term> distinct(atom.terms().begin(), atom.terms().end());
  if (distinct.size() != atom.arity()) return false;
  for (const Term& term : atom.terms()) {
    if (!term.is_variable()) return false;
  }
  return true;
}

std::set<std::string> ConjunctiveQuery::Variables() const {
  std::set<std::string> vars = head_.Variables();
  for (const Atom& atom : body_) {
    for (const std::string& var : atom.Variables()) vars.insert(var);
  }
  return vars;
}

Status ConjunctiveQuery::InferSchema(Schema* schema) const {
  for (const Atom& atom : relational_body_) {
    PSC_RETURN_NOT_OK(schema->AddRelation(atom.predicate(), atom.arity()));
  }
  return Status::OK();
}

namespace {

/// Depth-first join over the relational body atoms. Built-ins are evaluated
/// eagerly as soon as all their arguments are bound, pruning the search.
///
/// This is the legacy interpreter, kept behind
/// `eval::SetCompiledEvalEnabled(false)` as the differential-testing oracle
/// for the compiled plans in query_plan.h.
class Evaluator {
 public:
  Evaluator(const ConjunctiveQuery& query, const Database& db,
            const std::function<bool(const Valuation&)>& fn)
      : query_(query), db_(db), fn_(fn) {}

  /// Returns false iff the callback requested an early stop.
  Result<bool> Run(const Valuation& initial) {
    valuation_ = initial;
    builtin_done_.assign(query_.builtin_body().size(), 0);
    done_trail_.clear();
    return Recurse(0);
  }

 private:
  /// Reverts `builtin_done_` flags set at or after `mark` on destruction,
  /// so sibling branches (with different bindings) re-evaluate them. The
  /// shared trail replaces the by-value `builtin_done` vector the recursion
  /// used to copy — and heap-allocate — on every call.
  class DoneTrailGuard {
   public:
    DoneTrailGuard(std::vector<char>* done, std::vector<size_t>* trail)
        : done_(done), trail_(trail), mark_(trail->size()) {}
    ~DoneTrailGuard() {
      while (trail_->size() > mark_) {
        (*done_)[trail_->back()] = 0;
        trail_->pop_back();
      }
    }

   private:
    std::vector<char>* done_;
    std::vector<size_t>* trail_;
    size_t mark_;
  };

  Result<bool> Recurse(size_t index) {
    DoneTrailGuard guard(&builtin_done_, &done_trail_);
    // Evaluate any built-in whose arguments just became fully bound.
    for (size_t j = 0; j < query_.builtin_body().size(); ++j) {
      if (builtin_done_[j]) continue;
      const Atom& atom = query_.builtin_body()[j];
      auto ground = GroundTerms(atom.terms(), valuation_);
      if (!ground.ok()) continue;  // not yet fully bound
      PSC_ASSIGN_OR_RETURN(const bool holds,
                           EvalBuiltin(atom.predicate(), *ground));
      if (!holds) return true;  // prune this branch, keep searching
      builtin_done_[j] = 1;
      done_trail_.push_back(j);
    }
    if (index == query_.relational_body().size()) {
      return fn_(valuation_);
    }
    const Atom& atom = query_.relational_body()[index];
    const Relation& relation = db_.GetRelation(atom.predicate());
    for (const Tuple& tuple : relation) {
      if (tuple.size() != atom.arity()) continue;
      std::vector<std::string> newly_bound;
      if (TryUnify(atom, tuple, &newly_bound)) {
        auto deeper = Recurse(index + 1);
        Unbind(newly_bound);
        if (!deeper.ok()) return deeper.status();
        if (!*deeper) return false;
      } else {
        Unbind(newly_bound);
      }
    }
    return true;
  }

  bool TryUnify(const Atom& atom, const Tuple& tuple,
                std::vector<std::string>* newly_bound) {
    for (size_t pos = 0; pos < tuple.size(); ++pos) {
      const Term& term = atom.terms()[pos];
      if (term.is_constant()) {
        if (term.constant() != tuple[pos]) return false;
        continue;
      }
      auto [it, inserted] = valuation_.emplace(term.var_name(), tuple[pos]);
      if (inserted) {
        newly_bound->push_back(term.var_name());
      } else if (it->second != tuple[pos]) {
        return false;
      }
    }
    return true;
  }

  void Unbind(const std::vector<std::string>& names) {
    for (const std::string& name : names) valuation_.erase(name);
  }

  const ConjunctiveQuery& query_;
  const Database& db_;
  const std::function<bool(const Valuation&)>& fn_;
  Valuation valuation_;
  std::vector<char> builtin_done_;
  std::vector<size_t> done_trail_;
};

}  // namespace

Result<bool> ConjunctiveQuery::ForEachValuation(
    const Database& db, const Valuation& initial,
    const std::function<bool(const Valuation&)>& fn) const {
  if (eval::CompiledEvalEnabled()) {
    return eval::GetOrCompilePlan(*this, initial)->ForEach(db, initial, fn);
  }
  PSC_OBS_COUNTER_INC("eval.execs.legacy");
  Evaluator evaluator(*this, db, fn);
  return evaluator.Run(initial);
}

Result<Relation> ConjunctiveQuery::Evaluate(const Database& db) const {
  if (eval::CompiledEvalEnabled()) {
    static const Valuation kNoBindings;
    return eval::GetOrCompilePlan(*this, kNoBindings)->Evaluate(db);
  }
  Relation result;
  Status ground_error;
  PSC_ASSIGN_OR_RETURN(
      const bool completed,
      ForEachValuation(db, Valuation(),
                       [&](const Valuation& valuation) {
                         auto tuple = GroundTerms(head_.terms(), valuation);
                         if (!tuple.ok()) {
                           ground_error = tuple.status();
                           return false;
                         }
                         result.insert(std::move(*tuple));
                         return true;
                       }));
  if (!completed && !ground_error.ok()) return ground_error;
  return result;
}

Result<std::optional<Valuation>> ConjunctiveQuery::UnifyHead(
    const Tuple& head_tuple) const {
  if (head_tuple.size() != head_.arity()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", head_tuple.size(), " != head arity ",
               head_.arity()));
  }
  Valuation valuation;
  for (size_t pos = 0; pos < head_tuple.size(); ++pos) {
    const Term& term = head_.terms()[pos];
    if (term.is_constant()) {
      if (term.constant() != head_tuple[pos]) return std::optional<Valuation>();
      continue;
    }
    auto [it, inserted] = valuation.emplace(term.var_name(), head_tuple[pos]);
    if (!inserted && it->second != head_tuple[pos]) {
      return std::optional<Valuation>();
    }
  }
  return std::optional<Valuation>(std::move(valuation));
}

Result<std::vector<Valuation>> ConjunctiveQuery::WitnessValuations(
    const Database& db, const Tuple& head_tuple) const {
  PSC_ASSIGN_OR_RETURN(std::optional<Valuation> initial,
                       UnifyHead(head_tuple));
  std::vector<Valuation> witnesses;
  if (!initial.has_value()) return witnesses;
  PSC_RETURN_NOT_OK(ForEachValuation(db, *initial,
                                     [&](const Valuation& valuation) {
                                       witnesses.push_back(valuation);
                                       return true;
                                     })
                        .status());
  // Canonical order: the compiled and legacy engines enumerate in
  // different (both deterministic) orders; sorting makes the witness list
  // — and everything downstream that picks witnesses.front(), like the
  // Lemma 3.1 shrink — engine-independent.
  std::sort(witnesses.begin(), witnesses.end());
  return witnesses;
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(body_.size());
  for (const Atom& atom : body_) parts.push_back(atom.ToString());
  return StrCat(head_.ToString(), " <- ", Join(parts, ", "));
}

}  // namespace psc
