#include "psc/relational/builtin.h"

#include <algorithm>

#include "psc/util/string_util.h"

namespace psc {

namespace {

enum class Cmp { kLt, kLe, kGt, kGe, kEq, kNe };

struct BuiltinSpec {
  const char* name;
  Cmp cmp;
};

constexpr BuiltinSpec kBuiltins[] = {
    {"After", Cmp::kGt}, {"Before", Cmp::kLt}, {"Lt", Cmp::kLt},
    {"Le", Cmp::kLe},    {"Gt", Cmp::kGt},     {"Ge", Cmp::kGe},
    {"Eq", Cmp::kEq},    {"Ne", Cmp::kNe},
};

const BuiltinSpec* FindBuiltin(const std::string& name) {
  for (const BuiltinSpec& spec : kBuiltins) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

}  // namespace

bool IsBuiltinPredicate(const std::string& name) {
  return FindBuiltin(name) != nullptr;
}

Result<bool> EvalBuiltin(const std::string& name,
                         const std::vector<Value>& args) {
  const BuiltinSpec* spec = FindBuiltin(name);
  if (spec == nullptr) {
    return Status::NotFound(StrCat("unknown built-in predicate '", name, "'"));
  }
  if (args.size() != 2) {
    return Status::InvalidArgument(
        StrCat("built-in '", name, "' expects 2 arguments, got ", args.size()));
  }
  const Value& a = args[0];
  const Value& b = args[1];
  switch (spec->cmp) {
    case Cmp::kEq:
      return a == b;
    case Cmp::kNe:
      return a != b;
    default:
      break;
  }
  switch (spec->cmp) {
    case Cmp::kLt:
      return a < b;
    case Cmp::kLe:
      return a <= b;
    case Cmp::kGt:
      return a > b;
    case Cmp::kGe:
      return a >= b;
    default:
      return Status::Internal("unreachable comparison");
  }
}

const std::vector<std::string>& BuiltinPredicateNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>(
      [] {
        std::vector<std::string> result;
        for (const BuiltinSpec& spec : kBuiltins) result.push_back(spec.name);
        std::sort(result.begin(), result.end());
        return result;
      }());
  return names;
}

}  // namespace psc
