#ifndef PSC_RELATIONAL_TERM_H_
#define PSC_RELATIONAL_TERM_H_

#include <string>
#include <variant>

#include "psc/relational/value.h"

namespace psc {

/// \brief A term in an atom: either a variable (identified by name) or a
/// constant `Value`.
class Term {
 public:
  /// Constant integer 0 (so containers of Term are default-constructible).
  Term() : data_(Value()) {}

  /// A variable named `name`.
  static Term Var(std::string name) { return Term(Variable{std::move(name)}); }
  /// A constant term.
  static Term Const(Value value) { return Term(std::move(value)); }
  static Term ConstInt(int64_t v) { return Term(Value(v)); }
  static Term ConstStr(std::string v) { return Term(Value(std::move(v))); }

  bool is_variable() const { return std::holds_alternative<Variable>(data_); }
  bool is_constant() const { return !is_variable(); }

  /// The variable name; aborts on constants.
  const std::string& var_name() const;
  /// The constant value; aborts on variables.
  const Value& constant() const;

  bool operator==(const Term& o) const;
  bool operator!=(const Term& o) const { return !(*this == o); }
  /// Total order: variables before constants, then by payload.
  bool operator<(const Term& o) const;

  /// Variables print bare, constants per Value::ToString.
  std::string ToString() const;

 private:
  struct Variable {
    std::string name;
    bool operator==(const Variable& o) const { return name == o.name; }
  };
  explicit Term(Variable v) : data_(std::move(v)) {}
  explicit Term(Value v) : data_(std::move(v)) {}

  std::variant<Variable, Value> data_;
};

}  // namespace psc

#endif  // PSC_RELATIONAL_TERM_H_
