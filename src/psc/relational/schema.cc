#include "psc/relational/schema.h"

#include "psc/util/string_util.h"

namespace psc {

Status Schema::AddRelation(const std::string& name, size_t arity) {
  auto [it, inserted] = arities_.emplace(name, arity);
  if (!inserted && it->second != arity) {
    return Status::InvalidArgument(
        StrCat("relation '", name, "' redeclared with arity ", arity,
               " (was ", it->second, ")"));
  }
  return Status::OK();
}

Result<size_t> Schema::Arity(const std::string& name) const {
  auto it = arities_.find(name);
  if (it == arities_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not in schema"));
  }
  return it->second;
}

std::vector<std::string> Schema::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(arities_.size());
  for (const auto& [name, arity] : arities_) names.push_back(name);
  return names;
}

Status Schema::MergeFrom(const Schema& other) {
  for (const auto& [name, arity] : other.arities_) {
    PSC_RETURN_NOT_OK(AddRelation(name, arity));
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [name, arity] : arities_) {
    parts.push_back(StrCat(name, "/", arity));
  }
  return StrCat("{", Join(parts, ", "), "}");
}

}  // namespace psc
