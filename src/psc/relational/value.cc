#include "psc/relational/value.h"

#include "psc/util/status.h"

namespace psc {

int64_t Value::AsInt() const {
  PSC_CHECK_MSG(is_int(), "Value::AsInt on a string value");
  return std::get<int64_t>(data_);
}

const std::string& Value::AsString() const {
  PSC_CHECK_MSG(is_string(), "Value::AsString on an integer value");
  return std::get<std::string>(data_);
}

int Value::Compare(const Value& o) const {
  if (is_int() != o.is_int()) return is_int() ? -1 : 1;  // ints before strings
  if (is_int()) {
    const int64_t a = AsInt();
    const int64_t b = o.AsInt();
    return (a > b) - (a < b);
  }
  const int cmp = AsString().compare(o.AsString());
  return (cmp > 0) - (cmp < 0);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  // Escape so the result re-parses through the lexer's string rules.
  std::string out = "\"";
  for (const char c : AsString()) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace psc
