#include "psc/relational/atom.h"

namespace psc {

bool Atom::IsGround() const {
  for (const Term& term : terms_) {
    if (term.is_variable()) return false;
  }
  return true;
}

std::set<std::string> Atom::Variables() const {
  std::set<std::string> vars;
  for (const Term& term : terms_) {
    if (term.is_variable()) vars.insert(term.var_name());
  }
  return vars;
}

std::string Atom::ToString() const {
  std::string out = predicate_ + "(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms_[i].ToString();
  }
  out += ")";
  return out;
}

Atom Fact::ToAtom() const {
  std::vector<Term> terms;
  terms.reserve(tuple_.size());
  for (const Value& value : tuple_) terms.push_back(Term::Const(value));
  return Atom(relation_, std::move(terms));
}

std::string Fact::ToString() const {
  return relation_ + TupleToString(tuple_);
}

}  // namespace psc
