#ifndef PSC_RELATIONAL_ATOM_H_
#define PSC_RELATIONAL_ATOM_H_

#include <set>
#include <string>
#include <vector>

#include "psc/relational/term.h"
#include "psc/relational/value.h"

namespace psc {

/// \brief An atom R(e₁,…,e_k): a predicate name applied to terms.
///
/// Atoms appear in view-definition bodies, query bodies, tableaux and
/// constraints. The predicate may be a global relation name or a built-in
/// (see builtin.h).
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> terms)
      : predicate_(std::move(predicate)), terms_(std::move(terms)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& terms() const { return terms_; }
  size_t arity() const { return terms_.size(); }

  /// True iff no term is a variable.
  bool IsGround() const;

  /// The set of variable names occurring in this atom.
  std::set<std::string> Variables() const;

  bool operator==(const Atom& o) const {
    return predicate_ == o.predicate_ && terms_ == o.terms_;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }
  bool operator<(const Atom& o) const {
    if (predicate_ != o.predicate_) return predicate_ < o.predicate_;
    return terms_ < o.terms_;
  }

  /// "R(x, 1, \"Canada\")".
  std::string ToString() const;

 private:
  std::string predicate_;
  std::vector<Term> terms_;
};

/// \brief A fact: a ground atom, stored as predicate name + constant tuple.
class Fact {
 public:
  Fact() = default;
  Fact(std::string relation, Tuple tuple)
      : relation_(std::move(relation)), tuple_(std::move(tuple)) {}

  const std::string& relation() const { return relation_; }
  const Tuple& tuple() const { return tuple_; }
  size_t arity() const { return tuple_.size(); }

  /// The fact viewed as a (ground) atom.
  Atom ToAtom() const;

  bool operator==(const Fact& o) const {
    return relation_ == o.relation_ && tuple_ == o.tuple_;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }
  bool operator<(const Fact& o) const {
    if (relation_ != o.relation_) return relation_ < o.relation_;
    return tuple_ < o.tuple_;
  }

  /// "R(1, \"Canada\")".
  std::string ToString() const;

 private:
  std::string relation_;
  Tuple tuple_;
};

}  // namespace psc

#endif  // PSC_RELATIONAL_ATOM_H_
