#ifndef PSC_RELATIONAL_EVAL_INDEX_H_
#define PSC_RELATIONAL_EVAL_INDEX_H_

/// \file
/// Lazy hash indexes for compiled query evaluation.
///
/// A `RelationIndex` buckets the tuples of one relation extension by the
/// values at a fixed set of bound positions, so a join step that arrives
/// with those positions already bound probes one bucket instead of
/// scanning the whole extension. Indexes are built on demand the first
/// time a plan asks for a (relation, arity, position-set) access path and
/// cached on the owning `Database` in an `IndexCache`; any database
/// mutation bumps the database's generation counter, which invalidates
/// every cached index at the next probe (see IndexCache::GetOrBuild).
///
/// Buckets hold pointers into the relation's `std::set` nodes. Node
/// addresses are stable under unrelated insert/erase, and any mutation
/// invalidates the cache before a dangling pointer could be probed, so
/// the pointers are safe for the index's entire lifetime. Bucket order is
/// the relation's canonical (sorted) iteration order, which keeps probe
/// enumeration deterministic.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/relational/value.h"

namespace psc {
namespace eval {

/// FNV-style hash over a tuple's values, mixing a kind tag per value so
/// Value(1) and Value("1") land in different buckets more often than not.
struct TupleHash {
  size_t operator()(const Tuple& tuple) const;
};

/// \brief Hash index of one relation extension on one bound-position set.
///
/// `positions` (ascending) are the indexed tuple positions; `buckets` maps
/// each observed sub-tuple at those positions to the matching tuples, in
/// canonical relation order. Only tuples whose size equals `arity` are
/// indexed — the evaluator skips arity-mismatched tuples exactly like the
/// legacy interpreter's full scan.
struct RelationIndex {
  size_t arity = 0;
  std::vector<uint32_t> positions;
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets;

  /// The sub-tuple of `tuple` at `positions` (the bucket key).
  static Tuple KeyFor(const Tuple& tuple, const std::vector<uint32_t>& positions);

  /// Builds the index over `extension` (a canonical std::set<Tuple>).
  static std::shared_ptr<const RelationIndex> Build(
      const std::set<Tuple>& extension, size_t arity,
      std::vector<uint32_t> positions);

  /// The bucket for `key`, or nullptr when no tuple matches.
  const std::vector<const Tuple*>* Find(const Tuple& key) const {
    const auto it = buckets.find(key);
    return it == buckets.end() ? nullptr : &it->second;
  }
};

/// \brief Per-database store of lazily built `RelationIndex`es, invalidated
/// wholesale when the database's generation counter moves.
///
/// Thread-safe: concurrent const evaluations over one database serialize
/// only on the build-or-lookup critical section (a map probe; builds are
/// rare); the returned index is immutable and probed without the lock.
class IndexCache {
 public:
  IndexCache() = default;
  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// \brief The index of `extension` on (`relation`, `arity`, `positions`),
  /// built now if absent or stale. `generation` is the owning database's
  /// current generation; a mismatch with the cached generation drops every
  /// entry first.
  std::shared_ptr<const RelationIndex> GetOrBuild(
      const std::set<Tuple>& extension, uint64_t generation,
      const std::string& relation, size_t arity,
      const std::vector<uint32_t>& positions);

  /// Number of live index entries (tests / introspection).
  size_t size() const;

 private:
  struct Key {
    std::string relation;
    size_t arity;
    std::vector<uint32_t> positions;
    bool operator<(const Key& o) const {
      if (relation != o.relation) return relation < o.relation;
      if (arity != o.arity) return arity < o.arity;
      return positions < o.positions;
    }
  };

  mutable std::mutex mutex_;
  uint64_t generation_ = 0;
  std::map<Key, std::shared_ptr<const RelationIndex>> entries_;
};

}  // namespace eval
}  // namespace psc

#endif  // PSC_RELATIONAL_EVAL_INDEX_H_
