#ifndef PSC_RELATIONAL_EVAL_INDEX_H_
#define PSC_RELATIONAL_EVAL_INDEX_H_

/// \file
/// Lazy hash indexes for compiled query evaluation, with incremental
/// maintenance under batched mutations.
///
/// A `RelationIndex` buckets the tuples of one relation extension by the
/// values at a fixed set of bound positions, so a join step that arrives
/// with those positions already bound probes one bucket instead of
/// scanning the whole extension. Indexes are built on demand the first
/// time a plan asks for a (relation, arity, position-set) access path and
/// cached on the owning `Database` in an `IndexCache`.
///
/// Invalidation is scoped per relation: every cache entry remembers the
/// *relation generation* it was built (or last patched) at, and a probe
/// presenting a newer generation rebuilds only that entry. Mutations of
/// other relations leave it untouched. Small batched mutations do not
/// invalidate at all — `ApplyRelationDelta` patches the affected buckets
/// in place (O(|delta|·log bucket)) and advances the entry's generation,
/// falling back to a drop-and-rebuild once the batch exceeds a churn
/// threshold (see kIndexChurnRebuildDivisor).
///
/// Buckets hold pointers into the relation's `std::set` nodes. Node
/// addresses are stable under unrelated insert/erase; retracted nodes are
/// unlinked from their buckets *before* the set erases them, and inserted
/// nodes are linked after the set owns them, so the pointers are valid for
/// the index's entire lifetime. Bucket order is the relation's canonical
/// (sorted) iteration order — incremental inserts splice at the sorted
/// position — which keeps probe enumeration deterministic and identical
/// to a fresh rebuild.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/relational/value.h"
#include "psc/sync/mutex.h"

namespace psc {
namespace eval {

/// FNV-style hash over a tuple's values, mixing a kind tag per value so
/// Value(1) and Value("1") land in different buckets more often than not.
struct TupleHash {
  size_t operator()(const Tuple& tuple) const;
};

/// \brief Hash index of one relation extension on one bound-position set.
///
/// `positions` (ascending) are the indexed tuple positions; `buckets` maps
/// each observed sub-tuple at those positions to the matching tuples, in
/// canonical relation order. Only tuples whose size equals `arity` are
/// indexed — the evaluator skips arity-mismatched tuples exactly like the
/// legacy interpreter's full scan.
struct RelationIndex {
  size_t arity = 0;
  std::vector<uint32_t> positions;
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets;

  /// The sub-tuple of `tuple` at `positions` (the bucket key).
  static Tuple KeyFor(const Tuple& tuple, const std::vector<uint32_t>& positions);

  /// Builds the index over `extension` (a canonical std::set<Tuple>).
  static std::shared_ptr<RelationIndex> Build(
      const std::set<Tuple>& extension, size_t arity,
      std::vector<uint32_t> positions);

  /// The bucket for `key`, or nullptr when no tuple matches.
  const std::vector<const Tuple*>* Find(const Tuple& key) const {
    const auto it = buckets.find(key);
    return it == buckets.end() ? nullptr : &it->second;
  }

  /// \brief Splices `node` into its bucket at the canonical (sorted)
  /// position / unlinks it from its bucket. Arity-mismatched tuples are
  /// ignored, mirroring Build.
  void Link(const Tuple* node);
  void Unlink(const Tuple* node);
};

/// \brief A batched mutation drops a cached index for rebuild (instead of
/// patching it) once it touches more than extension-size /
/// kIndexChurnRebuildDivisor tuples: past that point a fresh O(n) build is
/// cheaper and better packed than thousands of bucket splices.
inline constexpr size_t kIndexChurnRebuildDivisor = 4;

/// \brief Per-database store of lazily built `RelationIndex`es with
/// relation-scoped invalidation and in-place delta maintenance.
///
/// Thread-safe: concurrent const evaluations over one database serialize
/// only on the build-or-lookup critical section (a map probe; builds are
/// rare); the returned index is immutable to its holders and probed
/// without the lock. Maintenance (`ApplyRelationDelta`) requires the same
/// external ordering as any database mutation: no concurrent evaluation
/// over the same database (readers-writer locking at the caller, as the
/// delta engine and pscd do).
class IndexCache {
 public:
  IndexCache() = default;
  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// \brief The index of `extension` on (`relation`, `arity`, `positions`),
  /// built now if absent or stale. `relation_generation` is the owning
  /// database's current generation *for this relation*; a mismatch with
  /// the cached entry's generation rebuilds that entry only.
  std::shared_ptr<const RelationIndex> GetOrBuild(
      const std::set<Tuple>& extension, uint64_t relation_generation,
      const std::string& relation, size_t arity,
      const std::vector<uint32_t>& positions);

  /// \brief Incrementally maintains every cached index of `relation` after
  /// a batched mutation that inserted the set nodes in `inserted` and is
  /// about to erase the nodes in `retracted`.
  ///
  /// Preconditions (Database::ApplyDelta's call order guarantees both):
  /// `inserted` pointers are already linked into the relation's set;
  /// `retracted` pointers are still alive and erased only after this call.
  ///
  /// Entries cached at a generation other than `old_generation` were
  /// already stale and are dropped; fresh entries are patched in place and
  /// stamped `new_generation` — unless the batch exceeds the churn
  /// threshold relative to `size_after` (the relation's tuple count once
  /// the retracts land), in which case they are dropped for lazy rebuild.
  void ApplyRelationDelta(const std::string& relation,
                          const std::vector<const Tuple*>& inserted,
                          const std::vector<const Tuple*>& retracted,
                          size_t size_after, uint64_t old_generation,
                          uint64_t new_generation);

  /// Drops every cached index (the pre-delta wholesale invalidation;
  /// kept for tests and as the full-recompute bench baseline).
  void Clear();

  /// Number of live index entries (tests / introspection).
  size_t size() const;

 private:
  struct Key {
    std::string relation;
    size_t arity;
    std::vector<uint32_t> positions;
    bool operator<(const Key& o) const {
      if (relation != o.relation) return relation < o.relation;
      if (arity != o.arity) return arity < o.arity;
      return positions < o.positions;
    }
  };

  /// The generation stamp makes staleness per-entry: an entry survives any
  /// number of mutations to *other* relations. `index` is shared non-const
  /// so in-place patching can reuse the allocation; handed-out references
  /// are const and a patch clones first when anyone still holds one.
  struct Entry {
    uint64_t generation = 0;
    std::shared_ptr<RelationIndex> index;
  };

  mutable sync::Mutex mutex_{"eval.index_cache", sync::kRankEvalIndexCache};
  std::map<Key, Entry> entries_ PSC_GUARDED_BY(mutex_);
};

}  // namespace eval
}  // namespace psc

#endif  // PSC_RELATIONAL_EVAL_INDEX_H_
