#ifndef PSC_RELATIONAL_SCHEMA_H_
#define PSC_RELATIONAL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "psc/util/result.h"

namespace psc {

/// \brief A global schema: a finite map from relation names to arities.
///
/// sch(S) in the paper — the set of global relation names occurring in the
/// view definitions of a source collection.
class Schema {
 public:
  Schema() = default;

  /// \brief Declares relation `name` with the given arity.
  ///
  /// Re-declaring with the same arity is a no-op; a conflicting arity is an
  /// InvalidArgument error.
  Status AddRelation(const std::string& name, size_t arity);

  bool HasRelation(const std::string& name) const {
    return arities_.count(name) > 0;
  }

  /// Arity of `name`, or NotFound.
  Result<size_t> Arity(const std::string& name) const;

  /// Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t size() const { return arities_.size(); }

  /// Union of two schemas; fails on conflicting arities.
  Status MergeFrom(const Schema& other);

  bool operator==(const Schema& o) const { return arities_ == o.arities_; }

  std::string ToString() const;

 private:
  std::map<std::string, size_t> arities_;
};

}  // namespace psc

#endif  // PSC_RELATIONAL_SCHEMA_H_
