#ifndef PSC_RELATIONAL_QUERY_PLAN_H_
#define PSC_RELATIONAL_QUERY_PLAN_H_

/// \file
/// Compiled evaluation of conjunctive queries: slot-based join plans over
/// lazy hash indexes.
///
/// `ConjunctiveQuery::Evaluate` / `ForEachValuation` historically ran a
/// naive interpreter: a full scan of each body relation at every recursion
/// depth, bindings in a string-keyed `std::map`, and a `builtin_done`
/// vector copied per recursive call. A `QueryPlan` compiles the query once
/// and replaces all of that on the hot path:
///
///  * every variable resolves to a dense integer slot; one flat
///    `std::vector<Value>` frame is reused for the entire enumeration;
///  * body atoms are reordered greedily so each join step arrives with as
///    many positions bound as possible (constants + variables bound by
///    earlier steps + the caller's initial bindings);
///  * a step with bound positions probes a lazy hash index
///    ((relation, arity, bound-position-set) → tuple buckets, cached on
///    the `Database`, invalidated by its generation counter — see
///    eval_index.h) instead of scanning;
///  * built-ins are hoisted to the earliest step at which their arguments
///    are bound and compiled to slot reads — no per-branch re-discovery.
///
/// Because the bound-position analysis is static, the compiled frame needs
/// no binding trail: a slot is only ever read at steps where it is
/// provably bound, so backtracking simply overwrites.
///
/// Determinism: join steps enumerate candidate tuples in the relation's
/// canonical sorted order (scans directly, probes via buckets that
/// preserve it), so a plan's valuation order is a deterministic function
/// of (query, initial bindings, database) — but it is NOT the legacy
/// interpreter's order, because atoms are reordered. `Evaluate` is
/// unaffected (results land in a canonical `Relation` set);
/// `WitnessValuations` sorts its output so both engines agree exactly.
///
/// Plans are memoized in a process-wide sharded cache keyed by the query's
/// canonical string plus the set of initially bound variables; see
/// `GetOrCompilePlan`. The legacy interpreter remains available behind
/// `SetCompiledEvalEnabled(false)` (CLI `--no-compiled-eval`) for
/// differential testing.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/util/result.h"

namespace psc {
namespace eval {

/// \brief Process-wide switch between the compiled engine and the legacy
/// interpreter. Defaults to compiled; flip from the CLI with
/// `--no-compiled-eval` or `QuerySystem::Options::use_compiled_eval`.
bool CompiledEvalEnabled();
void SetCompiledEvalEnabled(bool enabled);

/// \brief A conjunctive query compiled for repeated evaluation.
///
/// Immutable after compilation and safe to share across threads; the only
/// mutable state an execution touches lives in its own stack frame and the
/// database's thread-safe index cache.
class QueryPlan {
 public:
  /// \brief Compiles `query`, treating `bound_vars` (query variables the
  /// caller will supply via the initial valuation) as bound from step 0.
  /// Names in `bound_vars` that are not query variables are ignored.
  static std::shared_ptr<const QueryPlan> Compile(
      const ConjunctiveQuery& query, const std::vector<std::string>& bound_vars);

  /// \brief Compiled counterpart of `ConjunctiveQuery::ForEachValuation`:
  /// enumerates every valuation extending `initial` that embeds the body
  /// into `db` and satisfies all built-ins. `initial` must bind exactly the
  /// query variables the plan was compiled with (plus any number of
  /// non-query variables, which pass through into each emitted valuation,
  /// mirroring the interpreter). Returns false iff `fn` stopped early.
  Result<bool> ForEach(const Database& db, const Valuation& initial,
                       const std::function<bool(const Valuation&)>& fn) const;

  /// \brief Compiled counterpart of `ConjunctiveQuery::Evaluate`: projects
  /// the head directly from the slot frame, never materializing valuations.
  Result<Relation> Evaluate(const Database& db) const;

  /// \name Introspection (tests, EXPLAIN-style debugging)
  /// @{
  size_t num_slots() const { return slot_names_.size(); }
  /// Indexes into `query.relational_body()`, in execution order.
  const std::vector<size_t>& join_order() const { return join_order_; }
  /// Steps that can probe an index (non-empty bound-position set).
  size_t num_probe_steps() const;
  /// "step 0: R(slot0, slot1) probe{0} | builtins@1: After(slot1, 1900)".
  std::string DebugString() const;
  /// @}

 private:
  QueryPlan() = default;

  /// How one tuple position interacts with the frame.
  struct PositionOp {
    enum Kind : uint8_t {
      kConstCheck,  ///< position must equal `value`
      kSlotCheck,   ///< position must equal frame[slot]
      kBind,        ///< frame[slot] = position value
    };
    Kind kind;
    uint32_t pos;
    uint32_t slot = 0;
    Value value;
  };

  /// One argument of a compiled built-in or head projection.
  struct ValueRef {
    bool is_const;
    uint32_t slot = 0;
    Value value;
  };

  struct BuiltinCheck {
    std::string predicate;
    std::vector<ValueRef> args;
  };

  struct AtomStep {
    std::string predicate;
    uint32_t arity;
    /// Ascending positions bound before the step runs (the index key).
    std::vector<uint32_t> probe_positions;
    /// Produces the probe key, parallel to `probe_positions`.
    std::vector<ValueRef> key_refs;
    /// Ops for the remaining positions, applied to each bucket candidate.
    std::vector<PositionOp> probe_ops;
    /// Ops for every position — the full-scan path.
    std::vector<PositionOp> scan_ops;
  };

  struct ExecState;

  Result<bool> RunStep(size_t step, const Database& db, ExecState& state) const;
  static bool ApplyOps(const std::vector<PositionOp>& ops, const Tuple& tuple,
                       std::vector<Value>& frame);
  /// True iff `name` is one of the plan's (query) variables.
  bool IsVariable(const std::string& name) const;

  std::vector<AtomStep> steps_;
  /// builtins_at_step_[d] runs once the first d join steps are bound
  /// (d == 0 runs before any join step).
  std::vector<std::vector<BuiltinCheck>> builtins_at_step_;
  /// Slot i holds the variable named slot_names_[i].
  std::vector<std::string> slot_names_;
  /// (name, slot) sorted by name — emission order for valuations.
  std::vector<std::pair<std::string, uint32_t>> output_by_name_;
  /// Query variables bound by the caller's initial valuation.
  std::vector<std::pair<std::string, uint32_t>> prebound_;
  /// Head projection for the Evaluate fast path.
  std::vector<ValueRef> head_refs_;
  std::vector<size_t> join_order_;
};

/// \brief The memoized plan for (`query`, initially bound variable set of
/// `initial`), compiling on first use. Thread-safe (sharded cache, same
/// design as the PR-2 containment memo).
std::shared_ptr<const QueryPlan> GetOrCompilePlan(const ConjunctiveQuery& query,
                                                  const Valuation& initial);

/// Drops every memoized plan (tests; not needed for correctness — plans
/// are database-independent).
void ClearQueryPlanCache();
size_t QueryPlanCacheSize();

/// \brief Caps the plan cache entry count (0 = unbounded, the default).
///
/// Long-lived processes (pscd) serve unbounded query streams, so the memo
/// must not grow without bound; over the cap the oldest plans are evicted
/// FIFO and recompiled on next use (correctness is unaffected — plans are
/// pure functions of the query text). Every eviction increments the
/// `eval.plan_cache_evictions` counter. Thread-safe.
void SetQueryPlanCacheCapacity(size_t capacity);
size_t QueryPlanCacheCapacity();

/// \brief Relations at least this large get a hash index when a probe is
/// possible; smaller extensions are scanned (a build would cost more than
/// it saves, and world-enumeration workloads churn tiny databases).
inline constexpr size_t kMinIndexedRelationSize = 16;

}  // namespace eval
}  // namespace psc

#endif  // PSC_RELATIONAL_QUERY_PLAN_H_
