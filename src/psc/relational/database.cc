#include "psc/relational/database.h"

#include "psc/relational/eval_index.h"
#include "psc/util/string_util.h"

namespace psc {

Database::~Database() { delete index_cache_.load(std::memory_order_acquire); }

Database::Database(const Database& o)
    : relations_(o.relations_), generation_(o.generation_) {}

Database::Database(Database&& o) noexcept
    : relations_(std::move(o.relations_)), generation_(o.generation_) {
  // std::set nodes survive a map move, so the cache's tuple pointers stay
  // valid and the cache can move along with the data.
  index_cache_.store(o.index_cache_.exchange(nullptr, std::memory_order_acq_rel),
                     std::memory_order_release);
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  relations_ = o.relations_;
  generation_ = o.generation_;
  delete index_cache_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

Database& Database::operator=(Database&& o) noexcept {
  if (this == &o) return *this;
  relations_ = std::move(o.relations_);
  generation_ = o.generation_;
  delete index_cache_.exchange(
      o.index_cache_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  return *this;
}

eval::IndexCache& Database::index_cache() const {
  eval::IndexCache* cache = index_cache_.load(std::memory_order_acquire);
  if (cache == nullptr) {
    auto* fresh = new eval::IndexCache();
    if (index_cache_.compare_exchange_strong(cache, fresh,
                                             std::memory_order_acq_rel)) {
      cache = fresh;
    } else {
      delete fresh;  // another thread won the race
    }
  }
  return *cache;
}

bool Database::AddFact(const Fact& fact) {
  const bool inserted = relations_[fact.relation()].insert(fact.tuple()).second;
  if (inserted) ++generation_;
  return inserted;
}

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  const bool inserted = relations_[relation].insert(std::move(tuple)).second;
  if (inserted) ++generation_;
  return inserted;
}

bool Database::RemoveFact(const Fact& fact) {
  auto it = relations_.find(fact.relation());
  if (it == relations_.end()) return false;
  const bool removed = it->second.erase(fact.tuple()) > 0;
  if (it->second.empty()) relations_.erase(it);
  if (removed) ++generation_;
  return removed;
}

bool Database::Contains(const Fact& fact) const {
  return Contains(fact.relation(), fact.tuple());
}

bool Database::Contains(const std::string& relation,
                        const Tuple& tuple) const {
  auto it = relations_.find(relation);
  return it != relations_.end() && it->second.count(tuple) > 0;
}

const Relation& Database::GetRelation(const std::string& relation) const {
  static const Relation kEmpty;
  auto it = relations_.find(relation);
  return it == relations_.end() ? kEmpty : it->second;
}

size_t Database::size() const {
  size_t total = 0;
  for (const auto& [name, tuples] : relations_) total += tuples.size();
  return total;
}

std::vector<Fact> Database::AllFacts() const {
  std::vector<Fact> facts;
  facts.reserve(size());
  for (const auto& [name, tuples] : relations_) {
    for (const Tuple& tuple : tuples) facts.emplace_back(name, tuple);
  }
  return facts;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, tuples] : relations_) {
    if (!tuples.empty()) names.push_back(name);
  }
  return names;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [name, tuples] : other.relations_) {
    relations_[name].insert(tuples.begin(), tuples.end());
  }
  // Conservative: bump even when the union added nothing new.
  ++generation_;
}

bool Database::IsSubsetOf(const Database& other) const {
  for (const auto& [name, tuples] : relations_) {
    const Relation& theirs = other.GetRelation(name);
    for (const Tuple& tuple : tuples) {
      if (theirs.count(tuple) == 0) return false;
    }
  }
  return true;
}

bool Database::operator==(const Database& o) const {
  return relations_ == o.relations_;
}

bool Database::operator<(const Database& o) const {
  return relations_ < o.relations_;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const Fact& fact : AllFacts()) lines.push_back(fact.ToString());
  return Join(lines, "\n");
}

Result<std::vector<Fact>> EnumerateFactUniverse(
    const Schema& schema, const std::vector<Value>& domain,
    size_t max_facts) {
  std::vector<Fact> universe;
  for (const std::string& name : schema.RelationNames()) {
    PSC_ASSIGN_OR_RETURN(const size_t arity, schema.Arity(name));
    // Count |dom|^arity with overflow protection.
    size_t count = 1;
    for (size_t i = 0; i < arity; ++i) {
      if (domain.empty() || count > max_facts / domain.size()) {
        return Status::ResourceExhausted(
            StrCat("fact universe for ", name, "/", arity, " over a domain of ",
                   domain.size(), " constants exceeds ", max_facts));
      }
      count *= domain.size();
    }
    if (universe.size() + count > max_facts) {
      return Status::ResourceExhausted(
          StrCat("fact universe exceeds ", max_facts, " facts"));
    }
    // Odometer over the tuple positions.
    std::vector<size_t> odo(arity, 0);
    while (true) {
      Tuple tuple;
      tuple.reserve(arity);
      for (size_t i = 0; i < arity; ++i) tuple.push_back(domain[odo[i]]);
      universe.emplace_back(name, std::move(tuple));
      bool wrapped = true;
      size_t pos = arity;
      while (pos > 0) {
        --pos;
        if (++odo[pos] < domain.size()) {
          wrapped = false;
          break;
        }
        odo[pos] = 0;
      }
      if (wrapped) break;  // covers arity == 0 as well
    }
  }
  return universe;
}

}  // namespace psc
