#include "psc/relational/database.h"

#include "psc/obs/metrics.h"
#include "psc/relational/eval_index.h"
#include "psc/util/string_util.h"

namespace psc {

size_t DatabaseDelta::size() const {
  size_t total = 0;
  for (const auto& [name, tuples] : inserts) total += tuples.size();
  for (const auto& [name, tuples] : retracts) total += tuples.size();
  return total;
}

std::vector<std::string> DeltaSummary::DirtyRelations() const {
  std::vector<std::string> dirty;
  for (const auto& [name, change] : relations) {
    if (change.inserted + change.retracted > 0) dirty.push_back(name);
  }
  return dirty;  // map iteration: already sorted
}

std::string DeltaSummary::ToString() const {
  return StrCat("+", inserted, " -", retracted, " noop=", noops, " over ",
                DirtyRelations().size(), " relation(s)");
}

Database::~Database() { delete index_cache_.load(std::memory_order_acquire); }

Database::Database(const Database& o)
    : relations_(o.relations_),
      generation_(o.generation_),
      relation_generations_(o.relation_generations_) {}

Database::Database(Database&& o) noexcept
    : relations_(std::move(o.relations_)),
      generation_(o.generation_),
      relation_generations_(std::move(o.relation_generations_)) {
  // std::set nodes survive a map move, so the cache's tuple pointers stay
  // valid and the cache can move along with the data.
  index_cache_.store(o.index_cache_.exchange(nullptr, std::memory_order_acq_rel),
                     std::memory_order_release);
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  relations_ = o.relations_;
  generation_ = o.generation_;
  relation_generations_ = o.relation_generations_;
  delete index_cache_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

Database& Database::operator=(Database&& o) noexcept {
  if (this == &o) return *this;
  relations_ = std::move(o.relations_);
  generation_ = o.generation_;
  relation_generations_ = std::move(o.relation_generations_);
  delete index_cache_.exchange(
      o.index_cache_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  return *this;
}

eval::IndexCache& Database::index_cache() const {
  eval::IndexCache* cache = index_cache_.load(std::memory_order_acquire);
  if (cache == nullptr) {
    auto* fresh = new eval::IndexCache();
    if (index_cache_.compare_exchange_strong(cache, fresh,
                                             std::memory_order_acq_rel)) {
      cache = fresh;
    } else {
      delete fresh;  // another thread won the race
    }
  }
  return *cache;
}

void Database::InvalidateIndexCache() const {
  if (auto* cache = index_cache_.load(std::memory_order_acquire)) {
    cache->Clear();
  }
}

uint64_t Database::relation_generation(const std::string& relation) const {
  const auto it = relation_generations_.find(relation);
  return it == relation_generations_.end() ? 0 : it->second;
}

std::pair<uint64_t, uint64_t> Database::BumpRelation(
    const std::string& relation) {
  uint64_t& slot = relation_generations_[relation];
  const uint64_t old_generation = slot;
  slot = ++generation_;
  return {old_generation, slot};
}

bool Database::AddFact(const Fact& fact) {
  return AddFact(fact.relation(), fact.tuple());
}

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  Relation& extension = relations_[relation];
  const auto [node, inserted] = extension.insert(std::move(tuple));
  if (!inserted) return false;
  const auto [old_generation, new_generation] = BumpRelation(relation);
  if (auto* cache = index_cache_.load(std::memory_order_acquire)) {
    cache->ApplyRelationDelta(relation, {&*node}, {}, extension.size(),
                              old_generation, new_generation);
  }
  return true;
}

bool Database::RemoveFact(const Fact& fact) {
  const auto it = relations_.find(fact.relation());
  if (it == relations_.end()) return false;
  const auto node = it->second.find(fact.tuple());
  if (node == it->second.end()) return false;
  const auto [old_generation, new_generation] = BumpRelation(fact.relation());
  if (auto* cache = index_cache_.load(std::memory_order_acquire)) {
    // The node is unlinked from cached buckets while still alive.
    cache->ApplyRelationDelta(fact.relation(), {}, {&*node},
                              it->second.size() - 1, old_generation,
                              new_generation);
  }
  it->second.erase(node);
  if (it->second.empty()) relations_.erase(it);
  return true;
}

DeltaSummary Database::ApplyDelta(const DatabaseDelta& delta) {
  DeltaSummary summary;
  std::set<std::string> touched;
  for (const auto& [name, tuples] : delta.inserts) touched.insert(name);
  for (const auto& [name, tuples] : delta.retracts) touched.insert(name);
  auto* cache = index_cache_.load(std::memory_order_acquire);

  for (const std::string& name : touched) {
    RelationChange change;
    const auto ins_it = delta.inserts.find(name);
    const Relation* ins = ins_it == delta.inserts.end() ? nullptr : &ins_it->second;
    const auto ret_it = delta.retracts.find(name);
    const Relation* ret = ret_it == delta.retracts.end() ? nullptr : &ret_it->second;
    auto rel_it = relations_.find(name);

    // Resolve effective retracts (present, and not re-asserted by an
    // insert of the same tuple — insert wins) while their nodes are alive.
    std::vector<Relation::iterator> to_erase;
    if (ret != nullptr) {
      for (const Tuple& tuple : *ret) {
        if (ins != nullptr && ins->count(tuple) > 0) {
          ++change.noops;
          continue;
        }
        if (rel_it == relations_.end()) {
          ++change.noops;
          continue;
        }
        const auto node = rel_it->second.find(tuple);
        if (node == rel_it->second.end()) {
          ++change.noops;
        } else {
          to_erase.push_back(node);
        }
      }
    }

    // Land the inserts, collecting node addresses for index maintenance.
    std::vector<const Tuple*> inserted_nodes;
    if (ins != nullptr && !ins->empty()) {
      if (rel_it == relations_.end()) {
        rel_it = relations_.emplace(name, Relation{}).first;
      }
      for (const Tuple& tuple : *ins) {
        const auto [node, inserted] = rel_it->second.insert(tuple);
        if (inserted) {
          inserted_nodes.push_back(&*node);
        } else {
          ++change.noops;
        }
      }
    }

    change.inserted = inserted_nodes.size();
    change.retracted = to_erase.size();
    if (change.inserted + change.retracted > 0) {
      const auto [old_generation, new_generation] = BumpRelation(name);
      if (cache != nullptr) {
        std::vector<const Tuple*> retracted_nodes;
        retracted_nodes.reserve(to_erase.size());
        for (const auto& node : to_erase) retracted_nodes.push_back(&*node);
        cache->ApplyRelationDelta(name, inserted_nodes, retracted_nodes,
                                  rel_it->second.size() - to_erase.size(),
                                  old_generation, new_generation);
      }
      for (const auto& node : to_erase) rel_it->second.erase(node);
      if (rel_it->second.empty()) relations_.erase(rel_it);
    }

    summary.inserted += change.inserted;
    summary.retracted += change.retracted;
    summary.noops += change.noops;
    summary.relations.emplace(name, change);
  }

  PSC_OBS_COUNTER_ADD("delta.ops_applied", summary.inserted + summary.retracted);
  PSC_OBS_COUNTER_ADD("delta.noops", summary.noops);
  return summary;
}

bool Database::Contains(const Fact& fact) const {
  return Contains(fact.relation(), fact.tuple());
}

bool Database::Contains(const std::string& relation,
                        const Tuple& tuple) const {
  auto it = relations_.find(relation);
  return it != relations_.end() && it->second.count(tuple) > 0;
}

const Relation& Database::GetRelation(const std::string& relation) const {
  static const Relation kEmpty;
  auto it = relations_.find(relation);
  return it == relations_.end() ? kEmpty : it->second;
}

size_t Database::size() const {
  size_t total = 0;
  for (const auto& [name, tuples] : relations_) total += tuples.size();
  return total;
}

std::vector<Fact> Database::AllFacts() const {
  std::vector<Fact> facts;
  facts.reserve(size());
  for (const auto& [name, tuples] : relations_) {
    for (const Tuple& tuple : tuples) facts.emplace_back(name, tuple);
  }
  return facts;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, tuples] : relations_) {
    if (!tuples.empty()) names.push_back(name);
  }
  return names;
}

void Database::UnionWith(const Database& other) {
  auto* cache = index_cache_.load(std::memory_order_acquire);
  for (const auto& [name, tuples] : other.relations_) {
    Relation& mine = relations_[name];
    std::vector<const Tuple*> added;
    for (const Tuple& tuple : tuples) {
      const auto [node, inserted] = mine.insert(tuple);
      if (inserted) added.push_back(&*node);
    }
    // A subset union leaves the generation alone so cached indexes (and
    // anything else keyed on generations) stay warm.
    if (added.empty()) continue;
    const auto [old_generation, new_generation] = BumpRelation(name);
    if (cache != nullptr) {
      cache->ApplyRelationDelta(name, added, {}, mine.size(), old_generation,
                                new_generation);
    }
  }
}

bool Database::IsSubsetOf(const Database& other) const {
  for (const auto& [name, tuples] : relations_) {
    const Relation& theirs = other.GetRelation(name);
    for (const Tuple& tuple : tuples) {
      if (theirs.count(tuple) == 0) return false;
    }
  }
  return true;
}

bool Database::operator==(const Database& o) const {
  return relations_ == o.relations_;
}

bool Database::operator<(const Database& o) const {
  return relations_ < o.relations_;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const Fact& fact : AllFacts()) lines.push_back(fact.ToString());
  return Join(lines, "\n");
}

Result<std::vector<Fact>> EnumerateFactUniverse(
    const Schema& schema, const std::vector<Value>& domain,
    size_t max_facts) {
  std::vector<Fact> universe;
  for (const std::string& name : schema.RelationNames()) {
    PSC_ASSIGN_OR_RETURN(const size_t arity, schema.Arity(name));
    // Count |dom|^arity with overflow protection.
    size_t count = 1;
    for (size_t i = 0; i < arity; ++i) {
      if (domain.empty() || count > max_facts / domain.size()) {
        return Status::ResourceExhausted(
            StrCat("fact universe for ", name, "/", arity, " over a domain of ",
                   domain.size(), " constants exceeds ", max_facts));
      }
      count *= domain.size();
    }
    if (universe.size() + count > max_facts) {
      return Status::ResourceExhausted(
          StrCat("fact universe exceeds ", max_facts, " facts"));
    }
    // Odometer over the tuple positions.
    std::vector<size_t> odo(arity, 0);
    while (true) {
      Tuple tuple;
      tuple.reserve(arity);
      for (size_t i = 0; i < arity; ++i) tuple.push_back(domain[odo[i]]);
      universe.emplace_back(name, std::move(tuple));
      bool wrapped = true;
      size_t pos = arity;
      while (pos > 0) {
        --pos;
        if (++odo[pos] < domain.size()) {
          wrapped = false;
          break;
        }
        odo[pos] = 0;
      }
      if (wrapped) break;  // covers arity == 0 as well
    }
  }
  return universe;
}

}  // namespace psc
