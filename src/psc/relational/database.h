#ifndef PSC_RELATIONAL_DATABASE_H_
#define PSC_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "psc/relational/atom.h"
#include "psc/relational/schema.h"
#include "psc/relational/value.h"
#include "psc/util/result.h"

namespace psc {

namespace eval {
class IndexCache;
}  // namespace eval

/// \brief A relation extension: a canonical (sorted, duplicate-free) set of
/// tuples.
using Relation = std::set<Tuple>;

/// \brief A batched mutation against a `Database`: per relation, a set of
/// tuples to insert and a set to retract.
///
/// Semantics of `Database::ApplyDelta`: a tuple listed in both sets is
/// treated as an insert (the retraction is dropped as a no-op), so a delta
/// is a pure "make these present, make those absent" declaration and the
/// application order inside one call is unobservable.
struct DatabaseDelta {
  std::map<std::string, Relation> inserts;
  std::map<std::string, Relation> retracts;

  void Insert(const std::string& relation, Tuple tuple) {
    inserts[relation].insert(std::move(tuple));
  }
  void Retract(const std::string& relation, Tuple tuple) {
    retracts[relation].insert(std::move(tuple));
  }
  bool empty() const { return inserts.empty() && retracts.empty(); }
  /// Total number of tuple operations listed (inserts + retracts).
  size_t size() const;
};

/// \brief Per-relation outcome of one `Database::ApplyDelta` call.
struct RelationChange {
  /// Tuples actually added (absent before the call).
  uint64_t inserted = 0;
  /// Tuples actually removed (present before the call).
  uint64_t retracted = 0;
  /// Inserts of already-present tuples plus retracts of missing ones;
  /// no-ops never bump generations or touch indexes.
  uint64_t noops = 0;
};

/// \brief Change summary returned by `Database::ApplyDelta`.
struct DeltaSummary {
  std::map<std::string, RelationChange> relations;
  uint64_t inserted = 0;
  uint64_t retracted = 0;
  uint64_t noops = 0;

  bool changed() const { return inserted + retracted > 0; }
  /// Relations with at least one effective change, sorted.
  std::vector<std::string> DirtyRelations() const;
  /// "+3 -1 noop=2 over 2 relation(s)".
  std::string ToString() const;
};

/// \brief A global database D: a finite set of facts, grouped by relation.
///
/// Databases compare structurally, so they can key sets of possible worlds.
///
/// Each database lazily owns an `eval::IndexCache` of hash indexes used by
/// compiled query plans (see query_plan.h). The cache is an evaluation
/// artifact, not state: it is never copied and never participates in
/// comparison. Invalidation is scoped per relation: every mutation stamps
/// the touched relation with a fresh generation, and batched mutations
/// (`ApplyDelta`, and the single-fact paths when a cache exists) patch the
/// cached indexes in place instead of discarding them — see eval_index.h.
class Database {
 public:
  Database() = default;
  ~Database();
  Database(const Database& o);
  Database(Database&& o) noexcept;
  Database& operator=(const Database& o);
  Database& operator=(Database&& o) noexcept;

  /// \brief Inserts a fact; returns true if it was not already present.
  /// Inserting a present fact is a no-op: generations and cached indexes
  /// are left untouched.
  bool AddFact(const Fact& fact);
  bool AddFact(const std::string& relation, Tuple tuple);

  /// \brief Removes a fact; returns true if it was present. Removing a
  /// missing fact is a no-op (see AddFact).
  bool RemoveFact(const Fact& fact);

  /// \brief Applies a batched delta: retracts and inserts over any number
  /// of relations in one call, with per-relation generation bumps and
  /// in-place index maintenance (one cache patch per touched relation).
  /// No-op operations are counted in the summary but change nothing.
  DeltaSummary ApplyDelta(const DatabaseDelta& delta);

  bool Contains(const Fact& fact) const;
  bool Contains(const std::string& relation, const Tuple& tuple) const;

  /// \brief The extension D(R); empty for unknown relations.
  const Relation& GetRelation(const std::string& relation) const;

  /// Total number of facts |D|.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// All facts in deterministic (relation, tuple) order.
  std::vector<Fact> AllFacts() const;

  /// Relation names with at least one tuple, sorted.
  std::vector<std::string> RelationNames() const;

  /// \brief Inserts every fact of `other` (set union). Only relations that
  /// actually gain tuples advance their generation; a subset union is a
  /// complete no-op.
  void UnionWith(const Database& other);

  /// True iff every fact of this database is in `other`.
  bool IsSubsetOf(const Database& other) const;

  bool operator==(const Database& o) const;
  bool operator!=(const Database& o) const { return !(*this == o); }
  /// Lexicographic order on the canonical fact list (for use as a map key).
  bool operator<(const Database& o) const;

  /// Multi-line "R(1, 2)\nS(\"x\")" listing in canonical order.
  std::string ToString() const;

  /// \brief Global mutation counter: advanced by every call that actually
  /// changes the fact set (once per touched relation in a batch). Equal
  /// generations of one database imply equal contents over time.
  uint64_t generation() const { return generation_; }

  /// \brief Mutation counter of one relation: the value of `generation()`
  /// when the relation last changed (0 if never). Compiled-evaluation
  /// indexes are keyed on this, so mutating R never invalidates indexes
  /// over S.
  uint64_t relation_generation(const std::string& relation) const;

  /// \brief Drops every cached index while keeping the data intact. This
  /// is the pre-delta wholesale invalidation behaviour, kept as the
  /// full-recompute baseline for benchmarks and for tests.
  void InvalidateIndexCache() const;

  /// \brief The database's lazy index cache, created on first use.
  /// Thread-safe against concurrent const evaluations; mutating the
  /// database while another thread evaluates over it is a data race on the
  /// relations themselves and is not supported (same as before) — callers
  /// that stream deltas against live readers hold a readers-writer lock
  /// (see psc/delta/incremental.h).
  eval::IndexCache& index_cache() const;

 private:
  /// Stamps `relation` with the next global generation and returns
  /// (old, new) for index maintenance.
  std::pair<uint64_t, uint64_t> BumpRelation(const std::string& relation);

  // Empty relations are never stored, keeping operator== structural.
  std::map<std::string, Relation> relations_;
  uint64_t generation_ = 0;
  /// Present only for relations that have ever changed; absent = 0.
  std::map<std::string, uint64_t> relation_generations_;
  /// Lazily allocated (one CAS on first use) so the many short-lived
  /// databases of world enumeration never pay for it. Reset on copy — the
  /// cache holds pointers into *this* database's set nodes.
  mutable std::atomic<eval::IndexCache*> index_cache_{nullptr};
};

/// \brief Enumerates every fact over `schema` with constants drawn from
/// `domain` — the fact universe of a finite-domain instance
/// (N = Σ_R |dom|^arity(R) facts). Order is deterministic.
///
/// Fails with ResourceExhausted if the universe would exceed `max_facts`.
Result<std::vector<Fact>> EnumerateFactUniverse(const Schema& schema,
                                                const std::vector<Value>& domain,
                                                size_t max_facts = 1u << 22);

}  // namespace psc

#endif  // PSC_RELATIONAL_DATABASE_H_
