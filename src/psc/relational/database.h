#ifndef PSC_RELATIONAL_DATABASE_H_
#define PSC_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "psc/relational/atom.h"
#include "psc/relational/schema.h"
#include "psc/relational/value.h"
#include "psc/util/result.h"

namespace psc {

namespace eval {
class IndexCache;
}  // namespace eval

/// \brief A relation extension: a canonical (sorted, duplicate-free) set of
/// tuples.
using Relation = std::set<Tuple>;

/// \brief A global database D: a finite set of facts, grouped by relation.
///
/// Databases compare structurally, so they can key sets of possible worlds.
///
/// Each database lazily owns an `eval::IndexCache` of hash indexes used by
/// compiled query plans (see query_plan.h). The cache is an evaluation
/// artifact, not state: it is never copied, never participates in
/// comparison, and is invalidated by the generation counter that every
/// mutation bumps.
class Database {
 public:
  Database() = default;
  ~Database();
  Database(const Database& o);
  Database(Database&& o) noexcept;
  Database& operator=(const Database& o);
  Database& operator=(Database&& o) noexcept;

  /// \brief Inserts a fact; returns true if it was not already present.
  bool AddFact(const Fact& fact);
  bool AddFact(const std::string& relation, Tuple tuple);

  /// \brief Removes a fact; returns true if it was present.
  bool RemoveFact(const Fact& fact);

  bool Contains(const Fact& fact) const;
  bool Contains(const std::string& relation, const Tuple& tuple) const;

  /// \brief The extension D(R); empty for unknown relations.
  const Relation& GetRelation(const std::string& relation) const;

  /// Total number of facts |D|.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// All facts in deterministic (relation, tuple) order.
  std::vector<Fact> AllFacts() const;

  /// Relation names with at least one tuple, sorted.
  std::vector<std::string> RelationNames() const;

  /// \brief Inserts every fact of `other` (set union).
  void UnionWith(const Database& other);

  /// True iff every fact of this database is in `other`.
  bool IsSubsetOf(const Database& other) const;

  bool operator==(const Database& o) const;
  bool operator!=(const Database& o) const { return !(*this == o); }
  /// Lexicographic order on the canonical fact list (for use as a map key).
  bool operator<(const Database& o) const;

  /// Multi-line "R(1, 2)\nS(\"x\")" listing in canonical order.
  std::string ToString() const;

  /// \brief Mutation counter: bumped by every call that actually changes
  /// the fact set. Compiled-evaluation indexes built at generation g are
  /// discarded when probed at a later generation.
  uint64_t generation() const { return generation_; }

  /// \brief The database's lazy index cache, created on first use.
  /// Thread-safe against concurrent const evaluations; mutating the
  /// database while another thread evaluates over it is a data race on the
  /// relations themselves and is not supported (same as before).
  eval::IndexCache& index_cache() const;

 private:
  // Empty relations are never stored, keeping operator== structural.
  std::map<std::string, Relation> relations_;
  uint64_t generation_ = 0;
  /// Lazily allocated (one CAS on first use) so the many short-lived
  /// databases of world enumeration never pay for it. Reset on copy — the
  /// cache holds pointers into *this* database's set nodes.
  mutable std::atomic<eval::IndexCache*> index_cache_{nullptr};
};

/// \brief Enumerates every fact over `schema` with constants drawn from
/// `domain` — the fact universe of a finite-domain instance
/// (N = Σ_R |dom|^arity(R) facts). Order is deterministic.
///
/// Fails with ResourceExhausted if the universe would exceed `max_facts`.
Result<std::vector<Fact>> EnumerateFactUniverse(const Schema& schema,
                                                const std::vector<Value>& domain,
                                                size_t max_facts = 1u << 22);

}  // namespace psc

#endif  // PSC_RELATIONAL_DATABASE_H_
