#ifndef PSC_RELATIONAL_BUILTIN_H_
#define PSC_RELATIONAL_BUILTIN_H_

#include <string>
#include <vector>

#include "psc/relational/value.h"
#include "psc/util/result.h"

namespace psc {

/// \brief Built-in global relations, evaluated rather than stored.
///
/// The paper's motivating example uses `After(y, 1900)` as "a built-in
/// global relation"; we provide it plus the usual binary comparisons. A
/// built-in atom in a query body acts as a filter: it must become fully
/// ground during evaluation (range restriction), at which point it is
/// evaluated to true/false.
///
/// Supported predicates (all binary):
///   After  — strictly greater (the paper's predicate, year semantics)
///   Before — strictly less
///   Lt, Le, Gt, Ge, Eq, Ne — comparisons on the Value total order
///
/// Ordered comparisons use the total order on values: integers numerically,
/// strings lexicographically, and every integer before every string. The
/// order being total keeps evaluation defined on heterogeneous candidate
/// databases (e.g. tableaux frozen with fresh string constants).
bool IsBuiltinPredicate(const std::string& name);

/// \brief Evaluates built-in `name` on ground arguments.
///
/// Errors: NotFound for unknown predicates, InvalidArgument for wrong arity
/// or mixed-kind ordered comparison.
Result<bool> EvalBuiltin(const std::string& name,
                         const std::vector<Value>& args);

/// Names of all built-in predicates (sorted).
const std::vector<std::string>& BuiltinPredicateNames();

}  // namespace psc

#endif  // PSC_RELATIONAL_BUILTIN_H_
