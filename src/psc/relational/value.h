#ifndef PSC_RELATIONAL_VALUE_H_
#define PSC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace psc {

/// \brief A constant from the domain `dom`: a 64-bit integer or a string.
///
/// The paper's model is untyped (an infinite set of constants); two kinds
/// cover every construction in the paper — integers for years/measurements
/// and built-in comparisons, strings for names such as "Canada". Values have
/// a total order (integers before strings) so relations and databases can be
/// kept in canonical sorted form.
class Value {
 public:
  /// Integer 0.
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  /// Convenience for string literals.
  explicit Value(const char* v) : data_(std::string(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// The integer payload; aborts if this is a string value.
  int64_t AsInt() const;
  /// The string payload; aborts if this is an integer value.
  const std::string& AsString() const;

  /// \brief Three-way comparison under the total order (all integers sort
  /// before all strings): negative, zero or positive as *this <, == or > o.
  /// Every relational operator below is a single Compare call.
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return data_ == o.data_; }
  bool operator!=(const Value& o) const { return data_ != o.data_; }
  /// Total order: all integers sort before all strings.
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// \brief Display form: integers bare, strings double-quoted
  /// (round-trips through the parser).
  std::string ToString() const;

 private:
  std::variant<int64_t, std::string> data_;
};

/// \brief A database tuple: an ordered list of constants.
using Tuple = std::vector<Value>;

/// "(v1, v2, …)" display form of a tuple.
std::string TupleToString(const Tuple& tuple);

}  // namespace psc

#endif  // PSC_RELATIONAL_VALUE_H_
