#include "psc/relational/query_plan.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <utility>

#include "psc/exec/memo_cache.h"
#include "psc/obs/metrics.h"
#include "psc/relational/builtin.h"
#include "psc/relational/eval_index.h"
#include "psc/util/string_util.h"

namespace psc {
namespace eval {

namespace {

std::atomic<bool> g_compiled_eval_enabled{true};

using PlanCache = exec::ShardedMemoCache<std::shared_ptr<const QueryPlan>>;

PlanCache& GlobalPlanCache() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

/// True iff `name` occurs as a variable in some relational body atom (the
/// only variables a plan assigns slots to; head and built-in variables are
/// a subset by the Create-time safety checks).
bool IsQueryVariable(const ConjunctiveQuery& query, const std::string& name) {
  for (const Atom& atom : query.relational_body()) {
    for (const Term& term : atom.terms()) {
      if (term.is_variable() && term.var_name() == name) return true;
    }
  }
  return false;
}

std::string PlanKey(const ConjunctiveQuery& query,
                    const std::vector<std::string>& bound_vars) {
  std::string key = query.ToString();
  key.push_back('\n');
  for (const std::string& name : bound_vars) {
    key += name;
    key.push_back(',');
  }
  return key;
}

}  // namespace

bool CompiledEvalEnabled() {
  return g_compiled_eval_enabled.load(std::memory_order_relaxed);
}

void SetCompiledEvalEnabled(bool enabled) {
  g_compiled_eval_enabled.store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<const QueryPlan> QueryPlan::Compile(
    const ConjunctiveQuery& query,
    const std::vector<std::string>& bound_vars) {
  std::shared_ptr<QueryPlan> plan(new QueryPlan());
  const std::vector<Atom>& atoms = query.relational_body();

  // --- Slot assignment: caller-bound variables first, then first
  // occurrence order over the body atoms.
  std::map<std::string, uint32_t> slot_of;
  const auto assign_slot = [&](const std::string& name) -> uint32_t {
    const auto [it, inserted] =
        slot_of.emplace(name, static_cast<uint32_t>(plan->slot_names_.size()));
    if (inserted) plan->slot_names_.push_back(name);
    return it->second;
  };
  for (const std::string& name : bound_vars) {
    if (!IsQueryVariable(query, name) || slot_of.count(name) > 0) continue;
    plan->prebound_.emplace_back(name, assign_slot(name));
  }
  for (const Atom& atom : atoms) {
    for (const Term& term : atom.terms()) {
      if (term.is_variable()) assign_slot(term.var_name());
    }
  }

  // --- Greedy bound-variable join ordering: at each step pick the atom
  // with the most positions already determined (constants + bound slots);
  // ties keep the original body order for determinism.
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> slot_bound(plan->slot_names_.size(), false);
  for (const auto& [name, slot] : plan->prebound_) {
    (void)name;
    slot_bound[slot] = true;
  }
  const auto bound_positions = [&](const Atom& atom) {
    size_t count = 0;
    for (const Term& term : atom.terms()) {
      if (term.is_constant() || slot_bound[slot_of.at(term.var_name())]) {
        ++count;
      }
    }
    return count;
  };
  for (size_t k = 0; k < atoms.size(); ++k) {
    size_t best = atoms.size();
    size_t best_score = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const size_t score = bound_positions(atoms[i]);
      if (best == atoms.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    used[best] = true;
    plan->join_order_.push_back(best);

    // --- Compile the chosen atom into one join step.
    const Atom& atom = atoms[best];
    AtomStep step;
    step.predicate = atom.predicate();
    step.arity = static_cast<uint32_t>(atom.arity());
    std::set<uint32_t> bound_here;  // slots first bound at an earlier position
    for (uint32_t pos = 0; pos < atom.arity(); ++pos) {
      const Term& term = atom.terms()[pos];
      PositionOp op;
      op.pos = pos;
      bool probeable = false;
      if (term.is_constant()) {
        op.kind = PositionOp::kConstCheck;
        op.value = term.constant();
        probeable = true;
      } else {
        op.slot = slot_of.at(term.var_name());
        if (slot_bound[op.slot]) {
          op.kind = PositionOp::kSlotCheck;
          probeable = true;  // bound before the step: part of the probe key
        } else if (bound_here.count(op.slot) > 0) {
          // Repeated variable within the atom: the earlier position binds,
          // this one checks — but the slot is only bound mid-tuple, so it
          // cannot join the probe key.
          op.kind = PositionOp::kSlotCheck;
        } else {
          op.kind = PositionOp::kBind;
          bound_here.insert(op.slot);
        }
      }
      step.scan_ops.push_back(op);
      if (probeable) {
        step.probe_positions.push_back(pos);
        ValueRef ref;
        ref.is_const = term.is_constant();
        if (ref.is_const) {
          ref.value = term.constant();
        } else {
          ref.slot = op.slot;
        }
        step.key_refs.push_back(std::move(ref));
      } else {
        step.probe_ops.push_back(op);
      }
    }
    for (const uint32_t slot : bound_here) slot_bound[slot] = true;
    plan->steps_.push_back(std::move(step));
  }

  // --- Built-in hoisting: each built-in runs at the earliest step depth
  // at which all of its arguments are bound.
  plan->builtins_at_step_.resize(plan->steps_.size() + 1);
  // Depth at which each slot becomes bound: 0 for prebound, d+1 for slots
  // first bound by the step at order position d.
  std::vector<size_t> bound_depth(plan->slot_names_.size(), 0);
  {
    std::vector<bool> seen(plan->slot_names_.size(), false);
    for (const auto& [name, slot] : plan->prebound_) {
      (void)name;
      seen[slot] = true;
    }
    for (size_t d = 0; d < plan->steps_.size(); ++d) {
      for (const PositionOp& op : plan->steps_[d].scan_ops) {
        if (op.kind == PositionOp::kBind && !seen[op.slot]) {
          seen[op.slot] = true;
          bound_depth[op.slot] = d + 1;
        }
      }
    }
  }
  for (const Atom& atom : query.builtin_body()) {
    BuiltinCheck check;
    check.predicate = atom.predicate();
    size_t depth = 0;
    for (const Term& term : atom.terms()) {
      ValueRef ref;
      ref.is_const = term.is_constant();
      if (ref.is_const) {
        ref.value = term.constant();
      } else {
        ref.slot = slot_of.at(term.var_name());
        depth = std::max(depth, bound_depth[ref.slot]);
      }
      check.args.push_back(std::move(ref));
    }
    plan->builtins_at_step_[depth].push_back(std::move(check));
  }

  // --- Emission tables.
  for (const auto& [name, slot] : slot_of) {
    plan->output_by_name_.emplace_back(name, slot);
  }
  for (const Term& term : query.head().terms()) {
    ValueRef ref;
    ref.is_const = term.is_constant();
    if (ref.is_const) {
      ref.value = term.constant();
    } else {
      ref.slot = slot_of.at(term.var_name());
    }
    plan->head_refs_.push_back(std::move(ref));
  }

  PSC_OBS_COUNTER_INC("eval.plans_compiled");
  return plan;
}

/// Per-execution mutable state: one flat frame reused across the whole
/// enumeration plus per-step scratch (probe keys, resolved indexes).
struct QueryPlan::ExecState {
  std::vector<Value> frame;
  std::vector<Tuple> key_scratch;
  /// Index handles resolved once per execution per step (the database and
  /// its generation are fixed for the duration of a const evaluation).
  std::vector<std::shared_ptr<const RelationIndex>> step_index;
  std::vector<Value> builtin_args;
  const std::function<Result<bool>(const std::vector<Value>&)>* sink = nullptr;
  uint64_t binds = 0;
};

bool QueryPlan::ApplyOps(const std::vector<PositionOp>& ops,
                         const Tuple& tuple, std::vector<Value>& frame) {
  for (const PositionOp& op : ops) {
    switch (op.kind) {
      case PositionOp::kConstCheck:
        if (tuple[op.pos] != op.value) return false;
        break;
      case PositionOp::kSlotCheck:
        if (tuple[op.pos] != frame[op.slot]) return false;
        break;
      case PositionOp::kBind:
        frame[op.slot] = tuple[op.pos];
        break;
    }
  }
  return true;
}

Result<bool> QueryPlan::RunStep(size_t step, const Database& db,
                                ExecState& state) const {
  // Built-ins whose arguments just became fully bound filter this branch
  // before any deeper scan.
  for (const BuiltinCheck& check : builtins_at_step_[step]) {
    state.builtin_args.clear();
    for (const ValueRef& ref : check.args) {
      state.builtin_args.push_back(ref.is_const ? ref.value
                                                : state.frame[ref.slot]);
    }
    PSC_ASSIGN_OR_RETURN(const bool holds,
                         EvalBuiltin(check.predicate, state.builtin_args));
    if (!holds) return true;  // prune this branch, keep searching
  }
  if (step == steps_.size()) return (*state.sink)(state.frame);

  const AtomStep& s = steps_[step];
  const Relation& relation = db.GetRelation(s.predicate);
  if (!s.probe_positions.empty() &&
      relation.size() >= kMinIndexedRelationSize) {
    PSC_OBS_COUNTER_INC("eval.probes");
    std::shared_ptr<const RelationIndex>& index = state.step_index[step];
    if (index == nullptr) {
      index = db.index_cache().GetOrBuild(relation,
                                          db.relation_generation(s.predicate),
                                          s.predicate, s.arity,
                                          s.probe_positions);
    }
    Tuple& key = state.key_scratch[step];
    key.clear();
    for (const ValueRef& ref : s.key_refs) {
      key.push_back(ref.is_const ? ref.value : state.frame[ref.slot]);
    }
    const std::vector<const Tuple*>* bucket = index->Find(key);
    if (bucket == nullptr) return true;
    for (const Tuple* tuple : *bucket) {
      state.binds += s.probe_ops.size();
      if (!ApplyOps(s.probe_ops, *tuple, state.frame)) continue;
      auto deeper = RunStep(step + 1, db, state);
      if (!deeper.ok()) return deeper;
      if (!*deeper) return false;
    }
    return true;
  }

  PSC_OBS_COUNTER_INC("eval.scans");
  for (const Tuple& tuple : relation) {
    if (tuple.size() != s.arity) continue;
    state.binds += s.scan_ops.size();
    if (!ApplyOps(s.scan_ops, tuple, state.frame)) continue;
    auto deeper = RunStep(step + 1, db, state);
    if (!deeper.ok()) return deeper;
    if (!*deeper) return false;
  }
  return true;
}

Result<bool> QueryPlan::ForEach(
    const Database& db, const Valuation& initial,
    const std::function<bool(const Valuation&)>& fn) const {
  ExecState state;
  state.frame.assign(slot_names_.size(), Value());
  state.key_scratch.resize(steps_.size());
  state.step_index.resize(steps_.size());

  // Load the caller's bindings: query variables fill their slots (the plan
  // must have been compiled for exactly this bound set — GetOrCompilePlan
  // guarantees it); foreign variables pass through into every emitted
  // valuation, mirroring the legacy interpreter.
  std::map<std::string, uint32_t> prebound(prebound_.begin(), prebound_.end());
  Valuation extras;
  for (const auto& [name, value] : initial) {
    const auto it = prebound.find(name);
    if (it != prebound.end()) {
      state.frame[it->second] = value;
    } else if (IsVariable(name)) {
      return Status::InvalidArgument(
          StrCat("plan was not compiled with '", name,
                 "' initially bound; use GetOrCompilePlan"));
    } else {
      extras.emplace(name, value);
    }
  }

  const std::function<Result<bool>(const std::vector<Value>&)> sink =
      [&](const std::vector<Value>& frame) -> Result<bool> {
    // Merge the (name-sorted) slot outputs with the pass-through bindings;
    // both ranges are sorted and disjoint, so hinted insertion is linear.
    Valuation valuation;
    auto out = output_by_name_.begin();
    auto extra = extras.begin();
    while (out != output_by_name_.end() || extra != extras.end()) {
      if (extra == extras.end() ||
          (out != output_by_name_.end() && out->first < extra->first)) {
        valuation.emplace_hint(valuation.end(), out->first,
                               frame[out->second]);
        ++out;
      } else {
        valuation.emplace_hint(valuation.end(), extra->first, extra->second);
        ++extra;
      }
    }
    return fn(valuation);
  };
  state.sink = &sink;

  PSC_OBS_COUNTER_INC("eval.execs.compiled");
  auto result = RunStep(0, db, state);
  PSC_OBS_COUNTER_ADD("eval.frame.binds", state.binds);
  return result;
}

Result<Relation> QueryPlan::Evaluate(const Database& db) const {
  if (!prebound_.empty()) {
    return Status::Internal(
        "Evaluate requires a plan compiled without initial bindings");
  }
  Relation result;
  ExecState state;
  state.frame.assign(slot_names_.size(), Value());
  state.key_scratch.resize(steps_.size());
  state.step_index.resize(steps_.size());
  const std::function<Result<bool>(const std::vector<Value>&)> sink =
      [&](const std::vector<Value>& frame) -> Result<bool> {
    Tuple tuple;
    tuple.reserve(head_refs_.size());
    for (const ValueRef& ref : head_refs_) {
      tuple.push_back(ref.is_const ? ref.value : frame[ref.slot]);
    }
    result.insert(std::move(tuple));
    return true;
  };
  state.sink = &sink;
  PSC_OBS_COUNTER_INC("eval.execs.compiled");
  PSC_RETURN_NOT_OK(RunStep(0, db, state).status());
  PSC_OBS_COUNTER_ADD("eval.frame.binds", state.binds);
  return result;
}

size_t QueryPlan::num_probe_steps() const {
  size_t count = 0;
  for (const AtomStep& step : steps_) {
    if (!step.probe_positions.empty()) ++count;
  }
  return count;
}

bool QueryPlan::IsVariable(const std::string& name) const {
  for (const std::string& slot_name : slot_names_) {
    if (slot_name == name) return true;
  }
  return false;
}

std::string QueryPlan::DebugString() const {
  std::vector<std::string> lines;
  for (size_t d = 0; d < steps_.size(); ++d) {
    const AtomStep& step = steps_[d];
    std::vector<std::string> probe;
    for (const uint32_t pos : step.probe_positions) {
      probe.push_back(std::to_string(pos));
    }
    lines.push_back(StrCat("step ", d, ": ", step.predicate, "/", step.arity,
                           probe.empty()
                               ? std::string(" scan")
                               : StrCat(" probe{", Join(probe, ","), "}")));
    for (const BuiltinCheck& check : builtins_at_step_[d]) {
      lines.push_back(StrCat("  builtin@", d, ": ", check.predicate));
    }
  }
  for (const BuiltinCheck& check : builtins_at_step_.back()) {
    lines.push_back(
        StrCat("  builtin@", steps_.size(), ": ", check.predicate));
  }
  return Join(lines, "\n");
}

std::shared_ptr<const QueryPlan> GetOrCompilePlan(const ConjunctiveQuery& query,
                                                  const Valuation& initial) {
  std::vector<std::string> bound_vars;
  for (const auto& [name, value] : initial) {
    (void)value;
    if (IsQueryVariable(query, name)) bound_vars.push_back(name);
  }
  const std::string key = PlanKey(query, bound_vars);
  if (auto cached = GlobalPlanCache().Lookup(key)) {
    PSC_OBS_COUNTER_INC("eval.plan_cache.hits");
    return *cached;
  }
  PSC_OBS_COUNTER_INC("eval.plan_cache.misses");
  auto plan = QueryPlan::Compile(query, bound_vars);
  const size_t evicted = GlobalPlanCache().Insert(key, plan);
  if (evicted > 0) {
    PSC_OBS_COUNTER_ADD("eval.plan_cache_evictions", evicted);
  }
  return plan;
}

void ClearQueryPlanCache() { GlobalPlanCache().Clear(); }

size_t QueryPlanCacheSize() { return GlobalPlanCache().size(); }

void SetQueryPlanCacheCapacity(size_t capacity) {
  const size_t evicted = GlobalPlanCache().SetCapacity(capacity);
  if (evicted > 0) {
    PSC_OBS_COUNTER_ADD("eval.plan_cache_evictions", evicted);
  }
}

size_t QueryPlanCacheCapacity() { return GlobalPlanCache().capacity(); }

}  // namespace eval
}  // namespace psc
