#include "psc/relational/term.h"

#include "psc/util/status.h"

namespace psc {

const std::string& Term::var_name() const {
  PSC_CHECK_MSG(is_variable(), "Term::var_name on a constant");
  return std::get<Variable>(data_).name;
}

const Value& Term::constant() const {
  PSC_CHECK_MSG(is_constant(), "Term::constant on a variable");
  return std::get<Value>(data_);
}

bool Term::operator==(const Term& o) const {
  if (is_variable() != o.is_variable()) return false;
  if (is_variable()) return var_name() == o.var_name();
  return constant() == o.constant();
}

bool Term::operator<(const Term& o) const {
  if (is_variable() != o.is_variable()) return is_variable();
  if (is_variable()) return var_name() < o.var_name();
  return constant() < o.constant();
}

std::string Term::ToString() const {
  if (is_variable()) return var_name();
  return constant().ToString();
}

}  // namespace psc
