#ifndef PSC_RELATIONAL_CONJUNCTIVE_QUERY_H_
#define PSC_RELATIONAL_CONJUNCTIVE_QUERY_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "psc/relational/atom.h"
#include "psc/relational/database.h"
#include "psc/relational/schema.h"
#include "psc/util/result.h"

namespace psc {

/// \brief A valuation: a mapping from variable names to domain constants.
using Valuation = std::map<std::string, Value>;

/// \brief Applies a valuation to an atom's terms, producing a ground tuple.
/// Errors with InvalidArgument if some variable is unbound.
Result<Tuple> GroundTerms(const std::vector<Term>& terms,
                          const Valuation& valuation);

/// \brief A safe conjunctive query / view definition
///   head(φ) ← body(φ)
/// where the head is an atom over a local relation name and the body is a
/// sequence of atoms over global relation names plus built-in filters.
///
/// Validation enforced by `Create`:
///  * safety: every head variable occurs in a non-built-in body atom;
///  * range restriction: every variable of a built-in atom occurs in a
///    non-built-in body atom;
///  * built-ins are known and binary; the head predicate is not a built-in;
///  * body relations are used with a consistent arity.
class ConjunctiveQuery {
 public:
  /// An empty, invalid query; use `Create`.
  ConjunctiveQuery() = default;

  /// \brief Validates and constructs a query.
  static Result<ConjunctiveQuery> Create(Atom head, std::vector<Atom> body);

  /// \brief The identity view Id_R: V(x₁,…,x_k) ← R(x₁,…,x_k).
  ///
  /// `view_name` defaults to "V_" + relation.
  static ConjunctiveQuery Identity(const std::string& relation, size_t arity,
                                   const std::string& view_name = "");

  const Atom& head() const { return head_; }
  /// All body atoms, in the original order (built-ins included).
  const std::vector<Atom>& body() const { return body_; }

  /// Non-built-in body atoms — the atoms that contribute facts to D.
  const std::vector<Atom>& relational_body() const { return relational_body_; }
  /// Built-in filter atoms.
  const std::vector<Atom>& builtin_body() const { return builtin_body_; }

  /// \brief |body(φ)| as used in the Lemma 3.1 bound: the number of
  /// non-built-in body atoms (built-ins contribute no facts to a witness).
  size_t RelationalBodySize() const { return relational_body_.size(); }

  /// \brief True iff this is an identity view over a single relation:
  /// body is one relational atom whose distinct-variable list equals the
  /// head's term list, with no built-ins.
  bool IsIdentity() const;

  /// All variables occurring in the query.
  std::set<std::string> Variables() const;

  /// Adds the body relations (name, arity) to `schema`.
  Status InferSchema(Schema* schema) const;

  /// \brief φ(D): evaluates the view over a database, returning the set of
  /// head tuples.
  ///
  /// Routed through a compiled slot-based join plan with lazy hash indexes
  /// (see query_plan.h) unless `eval::SetCompiledEvalEnabled(false)`
  /// selects the legacy interpreter; both produce the same canonical set.
  Result<Relation> Evaluate(const Database& db) const;

  /// \brief Enumerates every valuation of the body variables that embeds
  /// the body into `db` and satisfies all built-ins, extending the partial
  /// valuation `initial`. `fn` returns false to stop; the final return is
  /// false iff stopped early.
  ///
  /// The set of enumerated valuations is engine-independent, but the
  /// enumeration *order* is unspecified (the compiled engine reorders the
  /// join); each engine's order is deterministic for fixed inputs.
  Result<bool> ForEachValuation(
      const Database& db, const Valuation& initial,
      const std::function<bool(const Valuation&)>& fn) const;

  /// \brief Valuations θ witnessing `head_tuple` ∈ φ(D):
  /// head(φ)θ = head_tuple and body(φ)θ ⊆ D (built-ins satisfied).
  /// Sorted, so the result is identical across evaluation engines.
  ///
  /// Used by the Lemma 3.1 construction and the template builder.
  Result<std::vector<Valuation>> WitnessValuations(
      const Database& db, const Tuple& head_tuple) const;

  /// \brief Unifies the head with a ground tuple, returning the induced
  /// partial valuation, or nothing when unification fails (a head constant
  /// mismatches, or a repeated head variable gets two values).
  Result<std::optional<Valuation>> UnifyHead(const Tuple& head_tuple) const;

  /// "V(x, y) <- R(x, z), S(z, y), After(x, 1900)".
  std::string ToString() const;

  bool operator==(const ConjunctiveQuery& o) const {
    return head_ == o.head_ && body_ == o.body_;
  }

 private:
  ConjunctiveQuery(Atom head, std::vector<Atom> body);

  Atom head_;
  std::vector<Atom> body_;
  std::vector<Atom> relational_body_;
  std::vector<Atom> builtin_body_;
};

}  // namespace psc

#endif  // PSC_RELATIONAL_CONJUNCTIVE_QUERY_H_
