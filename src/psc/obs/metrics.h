#ifndef PSC_OBS_METRICS_H_
#define PSC_OBS_METRICS_H_

/// \file
/// Thread-safe, zero-cost-when-disabled metrics for the solver stack.
///
/// Three instrument kinds live in a process-global `MetricsRegistry`:
///  * `Counter`   — monotonically increasing uint64 (nodes expanded, …),
///  * `Gauge`     — last/maximum int64 value (witness size, peak states, …),
///  * `Histogram` — log2-bucketed distribution (latencies, tree sizes).
///
/// Instrumentation sites use the `PSC_OBS_*` macros below, which
///  * compile to nothing when the build sets `PSC_OBS_ENABLED=0`
///    (CMake option `-DPSC_OBS=OFF`), and
///  * are a single relaxed atomic check + add when enabled but the runtime
///    switch (`obs::SetOptions({.enabled = false})`) is off.
/// The macros cache the registry lookup in a function-local static, so the
/// per-hit cost is one branch and one relaxed atomic increment; names
/// passed to the macros must therefore be string literals.
///
/// When a per-query `obs::Scope` (scope.h) is installed on the executing
/// thread, every hit is additionally mirrored into that scope's delta
/// registry. With no scope installed — the historical configuration — the
/// extra cost is one thread-local load and branch per hit.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "psc/sync/mutex.h"

#ifndef PSC_OBS_ENABLED
#define PSC_OBS_ENABLED 1
#endif

namespace psc {
namespace obs {

/// Runtime configuration; see `SetOptions`/`GetOptions`.
struct Options {
  /// Master switch: when false every macro hit is a single load+branch.
  bool enabled = true;
  /// Span records are appended to the global trace buffer only when true
  /// (histogram timings are recorded regardless); keeps memory flat for
  /// long-running processes unless tracing was asked for.
  bool trace_enabled = false;
  /// Spans nested deeper than this are timed but not buffered.
  size_t trace_depth_limit = 64;
};

void SetOptions(const Options& options);
Options GetOptions();

/// Fast path for the instrumentation macros.
bool Enabled();

/// Monotonic counter. All operations are wait-free relaxed atomics.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value / running-maximum gauge.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if larger (CAS loop).
  void RecordMax(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Immutable view of a histogram used by reporting.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  /// counts[b] holds values v with BucketIndex(v) == b; bucket 0 is v == 0,
  /// bucket b >= 1 covers [2^(b-1), 2^b).
  std::vector<uint64_t> buckets;

  double Mean() const;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]);
  /// exact for min/max, otherwise within a factor of 2 by construction.
  uint64_t Percentile(double q) const;
  /// Linear interpolation of the q-quantile inside its log2 bucket
  /// (assuming a uniform within-bucket distribution), clamped into
  /// [min, max]. Exact for the empty histogram (0), a single sample, and
  /// q in {0, 1}; used by the run report's p50/p95/p99 estimates.
  double PercentileInterpolated(double q) const;
};

/// Log2-scale histogram over non-negative integers (microsecond latencies,
/// search-tree sizes). Recording is wait-free.
class Histogram {
 public:
  /// 0 plus one bucket per power of two up to 2^63.
  static constexpr size_t kNumBuckets = 65;

  static size_t BucketIndex(uint64_t value);
  /// Lowest value that would land above bucket `bucket`, i.e. 2^bucket
  /// (saturating); used as the reported bucket upper bound.
  static uint64_t BucketUpperBound(size_t bucket);

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Named instrument store. Lookup takes a mutex; returned references are
/// stable for the registry's lifetime, so hot paths cache them (the macros
/// do this automatically via function-local statics).
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Snapshot accessors, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

  /// Convenience for tests and the CLI summary: value of `name` or 0.
  uint64_t CounterValue(const std::string& name) const;

  /// Zeroes every registered instrument (names stay registered).
  void Reset();

 private:
  // Innermost lock of the obs leaf group: any subsystem may look up an
  // instrument while holding its own locks, so nothing may be acquired
  // under this one. Instrument pointers are stable, so the lock guards
  // only map shape — hot-path hits are lock-free atomics.
  mutable sync::Mutex mutex_{"obs.metrics.registry", sync::kRankObsMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PSC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PSC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PSC_GUARDED_BY(mutex_);
};

/// The process-wide registry used by the `PSC_OBS_*` macros.
MetricsRegistry& GlobalMetrics();

namespace internal {

/// Per-query accumulator state (see scope.h for the full definition).
struct ScopeState;

/// The scope installed on the executing thread, or null. Written only by
/// `obs::ScopeGuard`; the macros read it so that the no-scope fast path
/// is a single thread-local load + branch.
extern thread_local ScopeState* t_current_scope;

/// Mirror an instrument hit into the installed scope's delta registry.
/// Only called by the macros after a non-null t_current_scope check;
/// defined in scope.cc (with a per-thread instrument cache).
void ScopeCounterAdd(const char* name, uint64_t delta);
void ScopeGaugeSet(const char* name, int64_t value);
void ScopeGaugeMax(const char* name, int64_t value);
void ScopeHistogramRecord(const char* name, uint64_t value);

}  // namespace internal

}  // namespace obs
}  // namespace psc

#if PSC_OBS_ENABLED

#define PSC_OBS_COUNTER_ADD(name, delta)                            \
  do {                                                              \
    if (::psc::obs::Enabled()) {                                    \
      static ::psc::obs::Counter& psc_obs_cached_counter =          \
          ::psc::obs::GlobalMetrics().GetCounter(name);             \
      const uint64_t psc_obs_delta = static_cast<uint64_t>(delta);  \
      psc_obs_cached_counter.Increment(psc_obs_delta);              \
      if (::psc::obs::internal::t_current_scope != nullptr) {       \
        ::psc::obs::internal::ScopeCounterAdd(name, psc_obs_delta); \
      }                                                             \
    }                                                               \
  } while (0)

#define PSC_OBS_COUNTER_INC(name) PSC_OBS_COUNTER_ADD(name, 1)

#define PSC_OBS_GAUGE_SET(name, value)                             \
  do {                                                             \
    if (::psc::obs::Enabled()) {                                   \
      static ::psc::obs::Gauge& psc_obs_cached_gauge =             \
          ::psc::obs::GlobalMetrics().GetGauge(name);              \
      const int64_t psc_obs_value = static_cast<int64_t>(value);   \
      psc_obs_cached_gauge.Set(psc_obs_value);                     \
      if (::psc::obs::internal::t_current_scope != nullptr) {      \
        ::psc::obs::internal::ScopeGaugeSet(name, psc_obs_value);  \
      }                                                            \
    }                                                              \
  } while (0)

#define PSC_OBS_GAUGE_MAX(name, value)                             \
  do {                                                             \
    if (::psc::obs::Enabled()) {                                   \
      static ::psc::obs::Gauge& psc_obs_cached_gauge =             \
          ::psc::obs::GlobalMetrics().GetGauge(name);              \
      const int64_t psc_obs_value = static_cast<int64_t>(value);   \
      psc_obs_cached_gauge.RecordMax(psc_obs_value);               \
      if (::psc::obs::internal::t_current_scope != nullptr) {      \
        ::psc::obs::internal::ScopeGaugeMax(name, psc_obs_value);  \
      }                                                            \
    }                                                              \
  } while (0)

#define PSC_OBS_HISTOGRAM_RECORD(name, value)                            \
  do {                                                                   \
    if (::psc::obs::Enabled()) {                                         \
      static ::psc::obs::Histogram& psc_obs_cached_histogram =           \
          ::psc::obs::GlobalMetrics().GetHistogram(name);                \
      const uint64_t psc_obs_value = static_cast<uint64_t>(value);       \
      psc_obs_cached_histogram.Record(psc_obs_value);                    \
      if (::psc::obs::internal::t_current_scope != nullptr) {            \
        ::psc::obs::internal::ScopeHistogramRecord(name, psc_obs_value); \
      }                                                                  \
    }                                                                    \
  } while (0)

#else  // PSC_OBS_ENABLED

// Compiled-out stubs. Arguments are syntax-checked inside a dead branch so
// call sites keep compiling (and stay warning-free) in both configurations,
// but no code is generated.
#define PSC_OBS_COUNTER_ADD(name, delta) \
  do {                                   \
    if (false) {                         \
      (void)(name);                      \
      (void)(delta);                     \
    }                                    \
  } while (0)
#define PSC_OBS_COUNTER_INC(name) PSC_OBS_COUNTER_ADD(name, 1)
#define PSC_OBS_GAUGE_SET(name, value) PSC_OBS_COUNTER_ADD(name, value)
#define PSC_OBS_GAUGE_MAX(name, value) PSC_OBS_COUNTER_ADD(name, value)
#define PSC_OBS_HISTOGRAM_RECORD(name, value) PSC_OBS_COUNTER_ADD(name, value)

#endif  // PSC_OBS_ENABLED

#endif  // PSC_OBS_METRICS_H_
