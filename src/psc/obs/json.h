#ifndef PSC_OBS_JSON_H_
#define PSC_OBS_JSON_H_

/// \file
/// A minimal JSON reader, just enough to round-trip and validate the run
/// reports this library emits (objects, arrays, strings with standard
/// escapes, numbers, booleans, null). Not a general-purpose parser: no
/// \uXXXX surrogate pairs, numbers are parsed as double.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "psc/util/result.h"

namespace psc {
namespace obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Member lookup; null when missing or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text` as a single JSON document (trailing whitespace allowed).
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `text` for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& text);

}  // namespace obs
}  // namespace psc

#endif  // PSC_OBS_JSON_H_
