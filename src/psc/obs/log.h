#ifndef PSC_OBS_LOG_H_
#define PSC_OBS_LOG_H_

/// \file
/// Minimal structured warning log for the solver stack.
///
/// The library is exception-free and mostly Status-based, but some
/// conditions deserve a diagnostic without failing the operation — a junk
/// `PSC_THREADS` value silently falling back to hardware concurrency, a
/// best-effort check being skipped. `LogWarning` routes those through one
/// place so they are countable (the `obs.warnings` counter), capturable in
/// tests (`SetWarningSink`) and deduplicatable (`LogWarningOnce` emits each
/// distinct message at most once per process).

#include <functional>
#include <string>

namespace psc {
namespace obs {

/// Sink invoked for every warning; the default writes
/// "psc warning: <message>\n" to stderr. Passing nullptr restores the
/// default. Not thread-safe against concurrent warnings — install sinks at
/// test setup, before solver threads run.
using WarningSink = std::function<void(const std::string&)>;
void SetWarningSink(WarningSink sink);

/// Emits `message` through the current sink and increments the
/// `obs.warnings` counter. Thread-safe.
void LogWarning(const std::string& message);

/// Like `LogWarning`, but each distinct message text is emitted at most
/// once per process (later duplicates are dropped silently). Thread-safe.
void LogWarningOnce(const std::string& message);

/// Number of warnings emitted so far (deduplicated ones excluded).
uint64_t WarningCount();

}  // namespace obs
}  // namespace psc

#endif  // PSC_OBS_LOG_H_
