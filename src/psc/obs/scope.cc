#include "psc/obs/scope.h"

#include <algorithm>
#include <utility>

namespace psc {
namespace obs {

namespace internal {

/// Hot-path view of the installed scope, read by the instrumentation
/// macros. The shared_ptr keep-alive lives in t_current_scope_ref below;
/// the raw pointer exists so the macros' null check is one TLS load.
thread_local ScopeState* t_current_scope = nullptr;

namespace {

/// Owning reference behind t_current_scope; managed only by ScopeGuard,
/// which keeps the two in lockstep.
thread_local std::shared_ptr<ScopeState> t_current_scope_ref;

std::atomic<uint64_t> g_next_scope_id{1};

/// Weak registry of every scope created, for RunReport::Capture. Expired
/// entries are pruned on each capture.
struct ScopeRegistry {
  sync::Mutex mutex{"obs.scope.registry", sync::kRankObsScopeRegistry};
  std::vector<std::weak_ptr<ScopeState>> scopes PSC_GUARDED_BY(mutex);
};

ScopeRegistry& Registry() {
  static ScopeRegistry* registry = new ScopeRegistry();
  return *registry;
}

/// Per-thread direct-mapped cache of scope-instrument lookups, so a hot
/// counter attributed to the installed scope costs a few loads instead of
/// a mutex-guarded map lookup per hit. Keyed by the macro's literal name
/// pointer plus the scope's never-reused id (a freed ScopeState whose
/// address is recycled can therefore never produce a stale hit).
constexpr size_t kScopeCacheSlots = 64;

struct ScopeCacheSlot {
  uint64_t scope_id = 0;
  const char* name = nullptr;
  int kind = 0;
  void* instrument = nullptr;
};

thread_local ScopeCacheSlot t_scope_cache[kScopeCacheSlots];

enum InstrumentKind { kCounter = 1, kGauge = 2, kHistogram = 3 };

size_t CacheSlotFor(const char* name, int kind) {
  const uintptr_t p = reinterpret_cast<uintptr_t>(name);
  // Low bits of a pointer are alignment zeros; fold some entropy in.
  return ((p >> 3) ^ (p >> 11) ^ static_cast<uintptr_t>(kind)) %
         kScopeCacheSlots;
}

template <typename Instrument>
Instrument* CachedScopeInstrument(ScopeState* scope, const char* name,
                                  int kind,
                                  Instrument& (MetricsRegistry::*get)(
                                      const std::string&)) {
  ScopeCacheSlot& slot = t_scope_cache[CacheSlotFor(name, kind)];
  if (slot.scope_id == scope->id && slot.name == name && slot.kind == kind) {
    return static_cast<Instrument*>(slot.instrument);
  }
  Instrument& instrument = (scope->metrics.*get)(name);
  slot.scope_id = scope->id;
  slot.name = name;
  slot.kind = kind;
  slot.instrument = &instrument;
  return &instrument;
}

}  // namespace

void ScopeCounterAdd(const char* name, uint64_t delta) {
  ScopeState* scope = t_current_scope;
  if (scope == nullptr) return;
  CachedScopeInstrument(scope, name, kCounter, &MetricsRegistry::GetCounter)
      ->Increment(delta);
}

void ScopeGaugeSet(const char* name, int64_t value) {
  ScopeState* scope = t_current_scope;
  if (scope == nullptr) return;
  CachedScopeInstrument(scope, name, kGauge, &MetricsRegistry::GetGauge)
      ->Set(value);
}

void ScopeGaugeMax(const char* name, int64_t value) {
  ScopeState* scope = t_current_scope;
  if (scope == nullptr) return;
  CachedScopeInstrument(scope, name, kGauge, &MetricsRegistry::GetGauge)
      ->RecordMax(value);
}

void ScopeHistogramRecord(const char* name, uint64_t value) {
  ScopeState* scope = t_current_scope;
  if (scope == nullptr) return;
  CachedScopeInstrument(scope, name, kHistogram,
                        &MetricsRegistry::GetHistogram)
      ->Record(value);
}

}  // namespace internal

Scope Scope::Create(const std::string& name) {
  auto state = std::make_shared<internal::ScopeState>();
  state->name = name;
  state->id =
      internal::g_next_scope_id.fetch_add(1, std::memory_order_relaxed);
  {
    internal::ScopeRegistry& registry = internal::Registry();
    sync::MutexLock lock(&registry.mutex);
    registry.scopes.emplace_back(state);
  }
  return Scope(std::move(state));
}

uint64_t Scope::id() const { return state_ == nullptr ? 0 : state_->id; }

const std::string& Scope::name() const {
  static const std::string* empty = new std::string();
  return state_ == nullptr ? *empty : state_->name;
}

namespace {

ScopeSnapshot SnapshotState(const std::shared_ptr<internal::ScopeState>&
                                state) {
  ScopeSnapshot snapshot;
  snapshot.name = state->name;
  snapshot.id = state->id;
  snapshot.counters = state->metrics.CounterValues();
  snapshot.gauges = state->metrics.GaugeValues();
  snapshot.histograms = state->metrics.HistogramValues();
  snapshot.spans = state->spans.Snapshot();
  snapshot.spans_dropped = state->spans.dropped();
  {
    sync::MutexLock lock(&state->trip_mutex);
    snapshot.trip_reason = state->trip_reason;
  }
  return snapshot;
}

}  // namespace

ScopeSnapshot Scope::Snapshot() const {
  if (state_ == nullptr) return ScopeSnapshot();
  return SnapshotState(state_);
}

void Scope::SetTripReason(const std::string& reason) const {
  if (state_ == nullptr) return;
  sync::MutexLock lock(&state_->trip_mutex);
  if (state_->trip_reason.empty()) state_->trip_reason = reason;
}

ScopeGuard::ScopeGuard(const Scope& scope) {
  if (!scope.active()) return;  // null scope: keep the thread's scope
  installed_ = true;
  previous_ = std::move(internal::t_current_scope_ref);
  internal::t_current_scope_ref = scope.state();
  internal::t_current_scope = scope.state().get();
}

ScopeGuard::~ScopeGuard() {
  if (!installed_) return;
  internal::t_current_scope_ref = std::move(previous_);
  internal::t_current_scope = internal::t_current_scope_ref.get();
}

Scope CurrentScope() { return Scope(internal::t_current_scope_ref); }

std::vector<ScopeSnapshot> CaptureScopeSnapshots() {
  std::vector<std::shared_ptr<internal::ScopeState>> alive;
  {
    internal::ScopeRegistry& registry = internal::Registry();
    sync::MutexLock lock(&registry.mutex);
    std::vector<std::weak_ptr<internal::ScopeState>> remaining;
    remaining.reserve(registry.scopes.size());
    for (const std::weak_ptr<internal::ScopeState>& weak : registry.scopes) {
      if (std::shared_ptr<internal::ScopeState> state = weak.lock()) {
        alive.push_back(std::move(state));
        remaining.push_back(weak);
      }
    }
    registry.scopes = std::move(remaining);
  }
  std::vector<ScopeSnapshot> snapshots;
  snapshots.reserve(alive.size());
  for (const std::shared_ptr<internal::ScopeState>& state : alive) {
    snapshots.push_back(SnapshotState(state));
  }
  return snapshots;
}

TraceContext CaptureTraceContext() {
  TraceContext context;
  context.parent_span_id = internal::CurrentOpenSpanId();
  context.scope = CurrentScope();
  return context;
}

TraceContextGuard::TraceContextGuard(const TraceContext& context)
    : scope_guard_(context.scope) {
  if (context.parent_span_id >= 0) {
    internal::PushVirtualParent(
        static_cast<uint64_t>(context.parent_span_id));
    pushed_parent_ = true;
  }
}

TraceContextGuard::~TraceContextGuard() {
  if (pushed_parent_) internal::PopVirtualParent();
}

}  // namespace obs
}  // namespace psc
