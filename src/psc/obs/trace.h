#ifndef PSC_OBS_TRACE_H_
#define PSC_OBS_TRACE_H_

/// \file
/// RAII wall-clock timers and an in-memory span buffer with parent/child
/// nesting.
///
/// `ScopedTimer` records elapsed microseconds into a `Histogram` when it
/// leaves scope. `TraceSpan` does the same under a registry name and, when
/// tracing is switched on (`Options::trace_enabled`), additionally appends
/// a `SpanRecord` to the global `TraceBuffer` with the id of the enclosing
/// span, giving a reconstructable call tree.
///
/// Both use `std::chrono::steady_clock` — a monotonic clock — so an
/// elapsed interval can never be negative; a debug assertion in the
/// destructors guards against the classic `duration_cast(begin - end)`
/// operand swap regressing into the codebase.

#include <cassert>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "psc/obs/metrics.h"
#include "psc/sync/mutex.h"

namespace psc {
namespace obs {

/// One completed span. Times are microseconds relative to the process
/// trace epoch (first use of the clock helper).
struct SpanRecord {
  uint64_t id = 0;
  /// Id of the enclosing span, or -1 for a root span. With cross-thread
  /// propagation (scope.h TraceContextGuard) this may name a span that
  /// was open on the *submitting* thread.
  int64_t parent_id = -1;
  std::string name;
  uint32_t depth = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Lane of the recording thread (small dense ids starting at 1, not OS
  /// thread ids) — the flame-graph track in the Chrome-trace export.
  uint64_t tid = 0;
  /// Id of the obs::Scope installed when the span opened, 0 for none.
  uint64_t scope_id = 0;
};

/// Append-only buffer of completed spans, guarded by a mutex. Appends past
/// `capacity` are counted but dropped so tracing cannot grow unbounded.
class TraceBuffer {
 public:
  void Append(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  uint64_t dropped() const;
  /// Applies to already-buffered records too: shrinking below the current
  /// size truncates the newest records, counting them as dropped.
  void SetCapacity(size_t capacity);
  void Clear();

 private:
  mutable sync::Mutex mutex_{"obs.trace.buffer", sync::kRankObsTraceBuffer};
  std::vector<SpanRecord> records_ PSC_GUARDED_BY(mutex_);
  size_t capacity_ PSC_GUARDED_BY(mutex_) = 1 << 16;
  uint64_t dropped_ PSC_GUARDED_BY(mutex_) = 0;
};

TraceBuffer& GlobalTrace();

/// Microseconds since the process trace epoch (monotonic).
uint64_t TraceNowMicros();

/// Records elapsed wall time (microseconds) into a histogram at scope
/// exit. The histogram may be null, in which case only `ElapsedMicros` is
/// useful (manual timing).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}
  /// Convenience: resolves `histogram_name` in the global registry.
  explicit ScopedTimer(const char* histogram_name)
      : ScopedTimer(&GlobalMetrics().GetHistogram(histogram_name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }

  uint64_t ElapsedMicros() const {
    const Clock::time_point end = Clock::now();
    // steady_clock is monotonic; a negative interval here means the
    // begin/end operands were swapped somewhere (the Snippet-1 bug class).
    assert(end >= start_ && "ScopedTimer observed a negative duration");
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
            .count();
    return elapsed < 0 ? 0 : static_cast<uint64_t>(elapsed);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

/// RAII span: times the enclosing scope into the histogram named `name`
/// and, when tracing is enabled, records a nested `SpanRecord`. Use via
/// `PSC_OBS_SPAN("subsystem.operation")`. `name` must outlive the span
/// (string literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;
  bool active_ = false;    // metrics enabled at construction
  bool buffered_ = false;  // span will be appended to the trace buffer
  uint64_t id_ = 0;
  int64_t parent_id_ = -1;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
  /// Scope installed at construction; spans mirror into its buffer. Raw:
  /// the installing ScopeGuard strictly outlives any span opened under it
  /// (both are stack-nested RAII), so the state cannot dangle here.
  internal::ScopeState* scope_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Renders `spans` as an indented tree ("name  12.3ms"), one line per
/// span, children below their parents.
std::string FormatSpanTree(const std::vector<SpanRecord>& spans);

/// Small dense id of the calling thread (1, 2, ... in first-use order);
/// stamped into SpanRecord::tid for per-thread flame-graph lanes.
uint64_t CurrentThreadLaneId();

namespace internal {

/// Id of the calling thread's innermost open (buffered) span, or -1.
/// Captured at task-submission time by obs::CaptureTraceContext.
int64_t CurrentOpenSpanId();

/// Installs `span_id` as a *virtual* parent frame on the calling thread's
/// span stack, so spans opened by a worker task nest under the span that
/// submitted the task (which lives on another thread). Must be balanced
/// with PopVirtualParent; managed by obs::TraceContextGuard.
void PushVirtualParent(uint64_t span_id);
void PopVirtualParent();

}  // namespace internal

}  // namespace obs
}  // namespace psc

#if PSC_OBS_ENABLED
#define PSC_OBS_INTERNAL_CONCAT2(a, b) a##b
#define PSC_OBS_INTERNAL_CONCAT(a, b) PSC_OBS_INTERNAL_CONCAT2(a, b)
#define PSC_OBS_SPAN(name)                                      \
  ::psc::obs::TraceSpan PSC_OBS_INTERNAL_CONCAT(psc_obs_span_,  \
                                                __LINE__)(name)
#else
#define PSC_OBS_SPAN(name) \
  do {                     \
  } while (0)
#endif

#endif  // PSC_OBS_TRACE_H_
