#include "psc/obs/json.h"

#include <cctype>
#include <cstdlib>

#include "psc/util/string_util.h"

namespace psc {
namespace obs {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    PSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrCat("JSON error at offset ", pos_, ": ", message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t length = std::string(literal).size();
    if (text_.compare(pos_, length, literal) == 0) {
      pos_ += length;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      PSC_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      PSC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      PSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      PSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escaped = text_[pos_++];
      switch (escaped) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Error("bad \\u escape");
          // Only BMP code points below 0x80 are emitted verbatim; the
          // reports this parser targets never emit anything else.
          if (code >= 0x80) return Error("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error(StrCat("malformed number '", token, "'"));
    }
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace psc
