#include "psc/obs/trace.h"

#include <algorithm>
#include <functional>

#include "psc/obs/scope.h"
#include "psc/util/string_util.h"

namespace psc {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_span_id{1};

/// Per-thread stack of open spans; parent/child nesting is per thread.
/// Virtual frames (see PushVirtualParent) re-anchor a worker thread's
/// spans under the span that submitted the work from another thread.
struct OpenSpan {
  uint64_t id;
  bool virtual_frame;
};
thread_local std::vector<OpenSpan> t_span_stack;

std::atomic<uint64_t> g_next_lane_id{1};
thread_local uint64_t t_lane_id = 0;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t CurrentThreadLaneId() {
  if (t_lane_id == 0) {
    t_lane_id = g_next_lane_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_lane_id;
}

namespace internal {

int64_t CurrentOpenSpanId() {
  return t_span_stack.empty()
             ? -1
             : static_cast<int64_t>(t_span_stack.back().id);
}

void PushVirtualParent(uint64_t span_id) {
  t_span_stack.push_back(OpenSpan{span_id, /*virtual_frame=*/true});
}

void PopVirtualParent() {
  assert(!t_span_stack.empty() && t_span_stack.back().virtual_frame &&
         "unbalanced PopVirtualParent");
  if (!t_span_stack.empty()) t_span_stack.pop_back();
}

}  // namespace internal

uint64_t TraceNowMicros() {
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - TraceEpoch());
  return elapsed.count() < 0 ? 0 : static_cast<uint64_t>(elapsed.count());
}

void TraceBuffer::Append(SpanRecord record) {
  sync::MutexLock lock(&mutex_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  sync::MutexLock lock(&mutex_);
  return records_;
}

uint64_t TraceBuffer::dropped() const {
  sync::MutexLock lock(&mutex_);
  return dropped_;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  sync::MutexLock lock(&mutex_);
  capacity_ = capacity;
  if (records_.size() > capacity_) {
    // Shrinking applies retroactively: the newest records go, counted as
    // dropped, exactly as if the buffer had been this small all along.
    dropped_ += records_.size() - capacity_;
    records_.resize(capacity_);
  }
}

void TraceBuffer::Clear() {
  sync::MutexLock lock(&mutex_);
  records_.clear();
  dropped_ = 0;
}

TraceBuffer& GlobalTrace() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  start_ = std::chrono::steady_clock::now();
  const Options options = GetOptions();
  if (!options.trace_enabled) return;
  depth_ = static_cast<uint32_t>(t_span_stack.size());
  if (depth_ >= options.trace_depth_limit) return;
  buffered_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_span_stack.empty()
                   ? -1
                   : static_cast<int64_t>(t_span_stack.back().id);
  scope_ = internal::t_current_scope;
  start_us_ = TraceNowMicros();
  t_span_stack.push_back(OpenSpan{id_, /*virtual_frame=*/false});
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  assert(end >= start_ && "TraceSpan observed a negative duration");
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  const uint64_t micros = elapsed < 0 ? 0 : static_cast<uint64_t>(elapsed);
  GlobalMetrics().GetHistogram(name_).Record(micros);
  if (!buffered_) return;
  // Unwind to this span's frame even if an inner span leaked (it cannot
  // with RAII, but stay robust against exceptions skipping frames).
  while (!t_span_stack.empty() && t_span_stack.back().id != id_) {
    t_span_stack.pop_back();
  }
  if (!t_span_stack.empty()) t_span_stack.pop_back();
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.name = name_;
  record.depth = depth_;
  record.start_us = start_us_;
  record.duration_us = micros;
  record.tid = CurrentThreadLaneId();
  record.scope_id = scope_ == nullptr ? 0 : scope_->id;
  if (scope_ != nullptr) scope_->spans.Append(record);
  GlobalTrace().Append(std::move(record));
}

std::string FormatSpanTree(const std::vector<SpanRecord>& spans) {
  // Children are emitted in start order below their parent. Spans arrive
  // in completion order, so index them first.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  std::string out;
  std::function<void(int64_t, uint32_t)> emit = [&](int64_t parent,
                                                    uint32_t indent) {
    for (const size_t i : order) {
      const SpanRecord& span = spans[i];
      if (span.parent_id != parent) continue;
      out += StrCat(std::string(2 * indent, ' '), span.name, "  ",
                    static_cast<double>(span.duration_us) / 1000.0, "ms\n");
      emit(static_cast<int64_t>(span.id), indent + 1);
    }
  };
  emit(-1, 0);
  return out;
}

}  // namespace obs
}  // namespace psc
