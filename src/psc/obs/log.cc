#include "psc/obs/log.h"

#include <cstdio>
#include <mutex>
#include <set>
#include <utility>

#include "psc/obs/metrics.h"

namespace psc {
namespace obs {

namespace {

std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

WarningSink& CurrentSink() {
  static WarningSink sink;
  return sink;
}

}  // namespace

void SetWarningSink(WarningSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  CurrentSink() = std::move(sink);
}

void LogWarning(const std::string& message) {
  PSC_OBS_COUNTER_INC("obs.warnings");
  std::lock_guard<std::mutex> lock(SinkMutex());
  const WarningSink& sink = CurrentSink();
  if (sink) {
    sink(message);
  } else {
    std::fprintf(stderr, "psc warning: %s\n", message.c_str());
  }
}

void LogWarningOnce(const std::string& message) {
  {
    static std::mutex seen_mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(seen_mutex);
    if (!seen.insert(message).second) return;
  }
  LogWarning(message);
}

uint64_t WarningCount() {
  return GlobalMetrics().CounterValue("obs.warnings");
}

}  // namespace obs
}  // namespace psc
