#include "psc/obs/log.h"

#include <cstdio>
#include <set>
#include <utility>

#include "psc/obs/metrics.h"
#include "psc/sync/mutex.h"

namespace psc {
namespace obs {

namespace {

sync::Mutex& SinkMutex() {
  static sync::Mutex mutex{"obs.log.sink", sync::kRankObsLogSink};
  return mutex;
}

WarningSink& CurrentSink() {
  static WarningSink sink;
  return sink;
}

}  // namespace

void SetWarningSink(WarningSink sink) {
  sync::MutexLock lock(&SinkMutex());
  CurrentSink() = std::move(sink);
}

void LogWarning(const std::string& message) {
  PSC_OBS_COUNTER_INC("obs.warnings");
  // Copy the sink out and invoke it unlocked: the sink is user code and
  // obs.log.sink is the innermost rank — calling back into obs (or
  // anything else) under it would invert the hierarchy.
  WarningSink sink;
  {
    sync::MutexLock lock(&SinkMutex());
    sink = CurrentSink();
  }
  if (sink) {
    sink(message);
  } else {
    std::fprintf(stderr, "psc warning: %s\n", message.c_str());
  }
}

void LogWarningOnce(const std::string& message) {
  {
    static sync::Mutex seen_mutex{"obs.log.seen", sync::kRankObsLogSeen};
    static std::set<std::string> seen;
    sync::MutexLock lock(&seen_mutex);
    if (!seen.insert(message).second) return;
  }
  LogWarning(message);
}

uint64_t WarningCount() {
  return GlobalMetrics().CounterValue("obs.warnings");
}

}  // namespace obs
}  // namespace psc
