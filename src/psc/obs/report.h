#ifndef PSC_OBS_REPORT_H_
#define PSC_OBS_REPORT_H_

/// \file
/// Structured run reports: a point-in-time snapshot of the global metrics
/// registry plus the trace-span buffer, serializable as machine-readable
/// JSON (see `kRunReportSchemaVersion` / README "Observability") and as an
/// aligned human-readable table.

#include <cstdint>
#include <string>
#include <vector>

#include "psc/obs/json.h"
#include "psc/obs/metrics.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "psc/util/status.h"

namespace psc {
namespace obs {

/// Bumped whenever the JSON layout changes incompatibly.
///
/// v2 (this version): interpolated p50/p90/p95/p99 on histograms, span
/// records carry `tid` and `scope`, a synthetic `trace.dropped` counter,
/// and a per-query `queries` section built from the alive obs::Scopes.
/// Validators accept v1 documents too (archived bench baselines).
inline constexpr int kRunReportSchemaVersion = 2;

struct RunReport {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot snapshot;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
  std::vector<SpanRecord> spans;
  uint64_t spans_dropped = 0;
  /// One entry per alive obs::Scope at capture time (creation order):
  /// the query's metric delta, span count and any limits trip.
  std::vector<ScopeSnapshot> queries;

  /// Snapshots `GlobalMetrics()`, `GlobalTrace()` and every alive
  /// obs::Scope; surfaces the trace drop count as a synthetic
  /// `trace.dropped` counter so threshold alerts need only one section.
  static RunReport Capture();

  /// Machine-readable serialization:
  /// {"schema_version":2, "counters":{...}, "gauges":{...},
  ///  "histograms":{name:{count,sum,min,max,mean,p50,p90,p95,p99}},
  ///  "spans":[{id,parent,name,depth,start_us,duration_us,tid,scope}],
  ///  "spans_dropped":N,
  ///  "queries":{name:{id,counters,gauges,histograms,spans,
  ///                   spans_dropped,trip}}}
  /// Percentiles are interpolated from the log2 buckets
  /// (HistogramSnapshot::PercentileInterpolated) and serialized as
  /// doubles. Duplicate query names are disambiguated as "name#id".
  std::string ToJson() const;

  /// Aligned text table for terminals, one section per instrument kind,
  /// followed by the span tree when spans were buffered.
  std::string ToTable() const;

  Status WriteJsonFile(const std::string& path) const;
};

/// Validates that `document` is a well-formed run report: required
/// top-level keys with the right JSON types, non-negative counters,
/// histogram invariants (count==0 ⇒ sum==0, min ≤ max), span records with
/// parent ids that either are -1 or reference a span in the report.
/// Accepts schema v1 (no p95/tid/scope/queries — archived baselines) and
/// v2; v2-only fields are required when schema_version is 2.
Status ValidateRunReportJson(const JsonValue& document);

/// Parses and validates in one step (convenience for tools/tests).
Status ValidateRunReportJson(const std::string& json_text);

}  // namespace obs
}  // namespace psc

#endif  // PSC_OBS_REPORT_H_
