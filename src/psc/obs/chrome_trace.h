#ifndef PSC_OBS_CHROME_TRACE_H_
#define PSC_OBS_CHROME_TRACE_H_

/// \file
/// Chrome trace-event export: serializes a `RunReport`'s span buffer in
/// the Trace Event Format consumed by Perfetto (ui.perfetto.dev) and
/// chrome://tracing. Buffered spans become complete (`"ph":"X"`) events
/// laid out on per-thread tracks (`SpanRecord::tid`), with the span id,
/// parent id and owning query scope attached as event args; thread-name
/// metadata events label the tracks, and the report's counter totals are
/// appended as counter (`"ph":"C"`) events so key metrics plot alongside
/// the flame graph. Written by the CLI's `--trace-out`; validated by
/// tools/check_trace_schema.py.

#include <string>

#include "psc/obs/report.h"
#include "psc/util/status.h"

namespace psc {
namespace obs {

/// JSON Object Format document: {"traceEvents":[...], "displayTimeUnit":
/// "ms", "otherData":{"schema_version":…, "spans_dropped":…}}.
/// Timestamps/durations are microseconds since the process trace epoch,
/// which is what the Trace Event Format specifies.
std::string ToChromeTraceJson(const RunReport& report);

/// Serializes and writes atomically-truncating to `path`; NotFound when
/// the file cannot be opened, Internal on a short write.
Status WriteChromeTraceFile(const RunReport& report,
                            const std::string& path);

}  // namespace obs
}  // namespace psc

#endif  // PSC_OBS_CHROME_TRACE_H_
