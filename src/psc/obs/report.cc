#include "psc/obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>

#include "psc/util/string_util.h"

namespace psc {
namespace obs {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string HistogramJson(const HistogramSnapshot& snapshot) {
  return StrCat("{\"count\":", snapshot.count, ",\"sum\":", snapshot.sum,
                ",\"min\":", snapshot.min, ",\"max\":", snapshot.max,
                ",\"mean\":", FormatDouble(snapshot.Mean()), ",\"p50\":",
                FormatDouble(snapshot.PercentileInterpolated(0.5)),
                ",\"p90\":",
                FormatDouble(snapshot.PercentileInterpolated(0.9)),
                ",\"p95\":",
                FormatDouble(snapshot.PercentileInterpolated(0.95)),
                ",\"p99\":",
                FormatDouble(snapshot.PercentileInterpolated(0.99)), "}");
}

std::string SpanJson(const SpanRecord& span) {
  return StrCat("{\"id\":", span.id, ",\"parent\":", span.parent_id,
                ",\"name\":\"", JsonEscape(span.name),
                "\",\"depth\":", span.depth, ",\"start_us\":", span.start_us,
                ",\"duration_us\":", span.duration_us, ",\"tid\":", span.tid,
                ",\"scope\":", span.scope_id, "}");
}

}  // namespace

RunReport RunReport::Capture() {
  RunReport report;
  for (auto& [name, value] : GlobalMetrics().CounterValues()) {
    report.counters.push_back(CounterEntry{name, value});
  }
  for (auto& [name, value] : GlobalMetrics().GaugeValues()) {
    report.gauges.push_back(GaugeEntry{name, value});
  }
  for (auto& [name, snapshot] : GlobalMetrics().HistogramValues()) {
    report.histograms.push_back(HistogramEntry{name, std::move(snapshot)});
  }
  report.spans = GlobalTrace().Snapshot();
  report.spans_dropped = GlobalTrace().dropped();
  // Surface the drop count where counter-based alerting looks for it.
  // Synthesized at capture (not a registry counter) so it cannot drift
  // from spans_dropped; keep the counters sorted by name.
  const bool have_trace_dropped =
      std::any_of(report.counters.begin(), report.counters.end(),
                  [](const CounterEntry& entry) {
                    return entry.name == "trace.dropped";
                  });
  if (!have_trace_dropped) {
    report.counters.push_back(
        CounterEntry{"trace.dropped", report.spans_dropped});
    std::sort(report.counters.begin(), report.counters.end(),
              [](const CounterEntry& a, const CounterEntry& b) {
                return a.name < b.name;
              });
  }
  report.queries = CaptureScopeSnapshots();
  return report;
}

std::string RunReport::ToJson() const {
  std::string out = StrCat("{\"schema_version\":", kRunReportSchemaVersion,
                           ",\"counters\":{");
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrCat(i == 0 ? "" : ",", "\"", JsonEscape(counters[i].name),
                  "\":", counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrCat(i == 0 ? "" : ",", "\"", JsonEscape(gauges[i].name),
                  "\":", gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    out += StrCat(i == 0 ? "" : ",", "\"", JsonEscape(histograms[i].name),
                  "\":", HistogramJson(histograms[i].snapshot));
  }
  out += "},\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    out += StrCat(i == 0 ? "" : ",", SpanJson(spans[i]));
  }
  out += StrCat("],\"spans_dropped\":", spans_dropped, ",\"queries\":{");
  // Query names come from callers (CLI command names today, request ids
  // under pscd); duplicates are legal, so disambiguate the JSON keys with
  // the process-unique scope id.
  std::set<std::string> used_names;
  for (size_t i = 0; i < queries.size(); ++i) {
    const ScopeSnapshot& query = queries[i];
    std::string key = query.name;
    if (!used_names.insert(key).second) {
      key = StrCat(query.name, "#", query.id);
      used_names.insert(key);
    }
    out += StrCat(i == 0 ? "" : ",", "\"", JsonEscape(key),
                  "\":{\"id\":", query.id, ",\"counters\":{");
    for (size_t j = 0; j < query.counters.size(); ++j) {
      out += StrCat(j == 0 ? "" : ",", "\"",
                    JsonEscape(query.counters[j].first),
                    "\":", query.counters[j].second);
    }
    out += "},\"gauges\":{";
    for (size_t j = 0; j < query.gauges.size(); ++j) {
      out += StrCat(j == 0 ? "" : ",", "\"",
                    JsonEscape(query.gauges[j].first),
                    "\":", query.gauges[j].second);
    }
    out += "},\"histograms\":{";
    for (size_t j = 0; j < query.histograms.size(); ++j) {
      out += StrCat(j == 0 ? "" : ",", "\"",
                    JsonEscape(query.histograms[j].first),
                    "\":", HistogramJson(query.histograms[j].second));
    }
    out += StrCat("},\"spans\":", query.spans.size(),
                  ",\"spans_dropped\":", query.spans_dropped, ",\"trip\":\"",
                  JsonEscape(query.trip_reason), "\"}");
  }
  out += "}}";
  return out;
}

std::string RunReport::ToTable() const {
  size_t width = 4;  // "name"
  for (const CounterEntry& entry : counters) {
    width = std::max(width, entry.name.size());
  }
  for (const GaugeEntry& entry : gauges) {
    width = std::max(width, entry.name.size());
  }
  for (const HistogramEntry& entry : histograms) {
    width = std::max(width, entry.name.size());
  }
  const auto pad = [&](const std::string& name) {
    return name + std::string(width - name.size() + 2, ' ');
  };
  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterEntry& entry : counters) {
      out += StrCat("  ", pad(entry.name), entry.value, "\n");
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeEntry& entry : gauges) {
      out += StrCat("  ", pad(entry.name), entry.value, "\n");
    }
  }
  if (!histograms.empty()) {
    out += "histograms (us):\n";
    for (const HistogramEntry& entry : histograms) {
      const HistogramSnapshot& s = entry.snapshot;
      out += StrCat("  ", pad(entry.name), "count=", s.count,
                    " sum=", s.sum, " min=", s.min, " max=", s.max,
                    " mean=", FormatDouble(s.Mean()),
                    " p90=", s.Percentile(0.9), "\n");
    }
  }
  if (!queries.empty()) {
    out += "queries:\n";
    for (const ScopeSnapshot& query : queries) {
      out += StrCat("  ", query.name, "  spans=", query.spans.size());
      for (const auto& [name, value] : query.counters) {
        if (name == "consistency.nodes_expanded" || name == "eval.probes") {
          out += StrCat(" ", name, "=", value);
        }
      }
      if (!query.trip_reason.empty()) {
        out += StrCat(" trip=", query.trip_reason);
      }
      out += "\n";
    }
  }
  if (!spans.empty()) {
    out += StrCat("spans (", spans.size(), " buffered, ", spans_dropped,
                  " dropped):\n", FormatSpanTree(spans));
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::NotFound(StrCat("cannot open '", path, "' for writing"));
  }
  out << ToJson() << "\n";
  out.flush();
  if (!out) return Status::Internal(StrCat("short write to '", path, "'"));
  return Status::OK();
}

namespace {

Status Expect(bool condition, const std::string& message) {
  if (condition) return Status::OK();
  return Status::InvalidArgument(StrCat("run report: ", message));
}

Status ValidateNonNegativeNumber(const JsonValue& value,
                                 const std::string& what) {
  PSC_RETURN_NOT_OK(Expect(value.is_number(), StrCat(what, " not numeric")));
  return Expect(value.number() >= 0.0, StrCat(what, " negative"));
}

}  // namespace

namespace {

Status ValidateHistogramObject(const std::string& name,
                               const JsonValue& value, int version) {
  PSC_RETURN_NOT_OK(Expect(
      value.is_object(), StrCat("histogram '", name, "' not an object")));
  std::vector<const char*> fields = {"count", "sum",  "min", "max",
                                     "mean",  "p50", "p90", "p99"};
  if (version >= 2) fields.push_back("p95");
  for (const char* field : fields) {
    const JsonValue* member = value.Find(field);
    PSC_RETURN_NOT_OK(Expect(
        member != nullptr,
        StrCat("histogram '", name, "' missing field '", field, "'")));
    PSC_RETURN_NOT_OK(ValidateNonNegativeNumber(
        *member, StrCat("histogram '", name, "' field '", field, "'")));
  }
  const double count = value.Find("count")->number();
  const double sum = value.Find("sum")->number();
  const double min = value.Find("min")->number();
  const double max = value.Find("max")->number();
  PSC_RETURN_NOT_OK(Expect(
      count > 0 || sum == 0,
      StrCat("histogram '", name, "' has sum without samples")));
  PSC_RETURN_NOT_OK(
      Expect(min <= max, StrCat("histogram '", name, "' has min > max")));
  return Status::OK();
}

/// The counters/gauges/histograms triple appears at the top level and
/// inside every v2 query section; `where` labels errors.
Status ValidateInstrumentSections(const JsonValue& object, int version,
                                  const std::string& where) {
  const JsonValue* counters = object.Find("counters");
  PSC_RETURN_NOT_OK(Expect(counters != nullptr && counters->is_object(),
                           StrCat(where, "missing counters object")));
  for (const auto& [name, value] : counters->object()) {
    PSC_RETURN_NOT_OK(ValidateNonNegativeNumber(
        value, StrCat(where, "counter '", name, "'")));
  }

  const JsonValue* gauges = object.Find("gauges");
  PSC_RETURN_NOT_OK(Expect(gauges != nullptr && gauges->is_object(),
                           StrCat(where, "missing gauges object")));
  for (const auto& [name, value] : gauges->object()) {
    PSC_RETURN_NOT_OK(Expect(
        value.is_number(), StrCat(where, "gauge '", name, "' not numeric")));
  }

  const JsonValue* histograms = object.Find("histograms");
  PSC_RETURN_NOT_OK(Expect(histograms != nullptr && histograms->is_object(),
                           StrCat(where, "missing histograms object")));
  for (const auto& [name, value] : histograms->object()) {
    PSC_RETURN_NOT_OK(
        ValidateHistogramObject(StrCat(where, name), value, version));
  }
  return Status::OK();
}

}  // namespace

Status ValidateRunReportJson(const JsonValue& document) {
  PSC_RETURN_NOT_OK(Expect(document.is_object(), "document not an object"));

  const JsonValue* version_value = document.Find("schema_version");
  PSC_RETURN_NOT_OK(
      Expect(version_value != nullptr && version_value->is_number(),
             "missing numeric schema_version"));
  const int version = static_cast<int>(version_value->number());
  // v1 documents (archived bench baselines) stay valid; v2 adds fields.
  PSC_RETURN_NOT_OK(
      Expect(version >= 1 && version <= kRunReportSchemaVersion,
             StrCat("unsupported schema_version ", version_value->number())));

  PSC_RETURN_NOT_OK(ValidateInstrumentSections(document, version, ""));

  const JsonValue* spans = document.Find("spans");
  PSC_RETURN_NOT_OK(
      Expect(spans != nullptr && spans->is_array(), "missing spans array"));
  std::set<int64_t> span_ids;
  std::vector<const char*> span_fields = {"parent", "depth", "start_us",
                                          "duration_us"};
  if (version >= 2) {
    span_fields.push_back("tid");
    span_fields.push_back("scope");
  }
  for (const JsonValue& span : spans->array()) {
    PSC_RETURN_NOT_OK(Expect(span.is_object(), "span not an object"));
    const JsonValue* id = span.Find("id");
    PSC_RETURN_NOT_OK(Expect(id != nullptr && id->is_number(),
                             "span missing numeric id"));
    span_ids.insert(static_cast<int64_t>(id->number()));
    const JsonValue* name = span.Find("name");
    PSC_RETURN_NOT_OK(Expect(name != nullptr && name->is_string(),
                             "span missing name string"));
    for (const char* field : span_fields) {
      const JsonValue* member = span.Find(field);
      PSC_RETURN_NOT_OK(Expect(member != nullptr && member->is_number(),
                               StrCat("span missing field '", field, "'")));
    }
  }
  const JsonValue* dropped = document.Find("spans_dropped");
  PSC_RETURN_NOT_OK(Expect(dropped != nullptr && dropped->is_number(),
                           "missing numeric spans_dropped"));
  // Parent links are only guaranteed complete when nothing was dropped
  // (parents complete after their children, so a full buffer can retain a
  // child while dropping its parent).
  if (dropped->number() == 0) {
    for (const JsonValue& span : spans->array()) {
      const int64_t parent =
          static_cast<int64_t>(span.Find("parent")->number());
      PSC_RETURN_NOT_OK(Expect(
          parent == -1 || span_ids.count(parent) > 0,
          StrCat("span parent ", parent, " not present in the report")));
    }
  }

  if (version >= 2) {
    const JsonValue* queries = document.Find("queries");
    PSC_RETURN_NOT_OK(Expect(queries != nullptr && queries->is_object(),
                             "missing queries object"));
    for (const auto& [name, query] : queries->object()) {
      const std::string where = StrCat("query '", name, "' ");
      PSC_RETURN_NOT_OK(
          Expect(query.is_object(), StrCat(where, "not an object")));
      const JsonValue* id = query.Find("id");
      PSC_RETURN_NOT_OK(Expect(id != nullptr && id->is_number(),
                               StrCat(where, "missing numeric id")));
      PSC_RETURN_NOT_OK(ValidateInstrumentSections(query, version, where));
      for (const char* field : {"spans", "spans_dropped"}) {
        const JsonValue* member = query.Find(field);
        PSC_RETURN_NOT_OK(
            Expect(member != nullptr,
                   StrCat(where, "missing field '", field, "'")));
        PSC_RETURN_NOT_OK(ValidateNonNegativeNumber(
            *member, StrCat(where, "field '", field, "'")));
      }
      const JsonValue* trip = query.Find("trip");
      PSC_RETURN_NOT_OK(Expect(trip != nullptr && trip->is_string(),
                               StrCat(where, "missing trip string")));
    }
  }
  return Status::OK();
}

Status ValidateRunReportJson(const std::string& json_text) {
  PSC_ASSIGN_OR_RETURN(const JsonValue document, ParseJson(json_text));
  return ValidateRunReportJson(document);
}

}  // namespace obs
}  // namespace psc
