#include "psc/obs/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "psc/obs/json.h"
#include "psc/util/string_util.h"

namespace psc {
namespace obs {

namespace {

constexpr int kPid = 1;

}  // namespace

std::string ToChromeTraceJson(const RunReport& report) {
  // Scope id -> query name, for the event category and process labels.
  std::map<uint64_t, std::string> scope_names;
  for (const ScopeSnapshot& query : report.queries) {
    scope_names.emplace(query.id, query.name);
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    out += StrCat(first ? "" : ",", event);
    first = false;
  };

  emit(StrCat("{\"ph\":\"M\",\"pid\":", kPid,
              ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
              "\"psc\"}}"));

  // One metadata event per lane so Perfetto labels the tracks. Lane ids
  // are small and dense (trace.h CurrentThreadLaneId).
  std::set<uint64_t> lanes;
  uint64_t end_us = 0;
  for (const SpanRecord& span : report.spans) {
    lanes.insert(span.tid);
    end_us = std::max(end_us, span.start_us + span.duration_us);
  }
  for (const uint64_t lane : lanes) {
    emit(StrCat("{\"ph\":\"M\",\"pid\":", kPid, ",\"tid\":", lane,
                ",\"name\":\"thread_name\",\"args\":{\"name\":\"lane ",
                lane, "\"}}"));
  }

  for (const SpanRecord& span : report.spans) {
    const auto scope_it = scope_names.find(span.scope_id);
    const std::string category =
        scope_it == scope_names.end() ? "psc" : scope_it->second;
    emit(StrCat("{\"ph\":\"X\",\"pid\":", kPid, ",\"tid\":", span.tid,
                ",\"ts\":", span.start_us, ",\"dur\":", span.duration_us,
                ",\"name\":\"", JsonEscape(span.name), "\",\"cat\":\"",
                JsonEscape(category), "\",\"args\":{\"id\":", span.id,
                ",\"parent\":", span.parent_id, ",\"scope\":", span.scope_id,
                "}}"));
  }

  // Counter totals as single points at the trace end: Perfetto renders
  // them as value tracks under the flame graph.
  for (const RunReport::CounterEntry& counter : report.counters) {
    emit(StrCat("{\"ph\":\"C\",\"pid\":", kPid, ",\"tid\":0,\"ts\":", end_us,
                ",\"name\":\"", JsonEscape(counter.name),
                "\",\"args\":{\"value\":", counter.value, "}}"));
  }

  out += StrCat("],\"otherData\":{\"schema_version\":",
                kRunReportSchemaVersion,
                ",\"spans_dropped\":", report.spans_dropped, "}}");
  return out;
}

Status WriteChromeTraceFile(const RunReport& report,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::NotFound(StrCat("cannot open '", path, "' for writing"));
  }
  out << ToChromeTraceJson(report) << "\n";
  out.flush();
  if (!out) return Status::Internal(StrCat("short write to '", path, "'"));
  return Status::OK();
}

}  // namespace obs
}  // namespace psc
