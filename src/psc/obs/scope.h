#ifndef PSC_OBS_SCOPE_H_
#define PSC_OBS_SCOPE_H_

/// \file
/// Query-scoped telemetry: per-query metric deltas and span buffers.
///
/// The registry in metrics.h is process-global, which is the right grain
/// for a CLI run but useless once several queries are in flight at once
/// (the planned pscd service): two concurrent requests are
/// indistinguishable in the totals. An `obs::Scope` is a value-semantics
/// handle — the same shape as `limits::Budget`: null state by default,
/// copies share state — that accumulates a *delta* view of every
/// instrument hit and every trace span recorded while the scope is
/// installed on the executing thread.
///
/// Usage:
///
///   obs::Scope scope = obs::Scope::Create("q1:answer");
///   {
///     obs::ScopeGuard guard(scope);   // installs on this thread (RAII)
///     ... run the query ...           // macros/spans mirror into `scope`
///   }
///   obs::ScopeSnapshot delta = scope.Snapshot();
///
/// Installation is per thread. `exec::ParallelFor`/`ParallelReduce`
/// capture the submitting thread's scope (and innermost open span) in a
/// `TraceContext` and reinstall both in the workers, so a query's
/// attribution follows its work across the pool.
///
/// Cost contract: with no scope installed the macros pay one extra
/// thread-local load + branch and nothing else — scope-free runs keep the
/// historical global-only path. A null (default-constructed) `Scope` makes
/// `ScopeGuard` a no-op: it leaves whatever scope the thread already has
/// installed, so solver code can thread scopes unconditionally. With
/// `PSC_OBS=OFF` the macros compile to nothing, so a scope never sees an
/// instrument hit and snapshots are empty; the classes themselves stay
/// available so call sites build identically in both configurations.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"

namespace psc {
namespace obs {

namespace internal {

/// Shared state behind `Scope` copies. Lives in a header only so that
/// trace.cc and scope.cc can reach the members; instrumented code never
/// touches it directly.
struct ScopeState {
  std::string name;
  /// Process-unique, monotonically assigned; never reused, so caches may
  /// key on it without ABA hazards when a state's address is recycled.
  uint64_t id = 0;
  /// Per-scope delta instruments, same registry type as the global one.
  MetricsRegistry metrics;
  /// Per-scope span buffer; spans recorded while the scope is installed.
  TraceBuffer spans;
  sync::Mutex trip_mutex{"obs.scope.trip", sync::kRankObsScopeTrip};
  /// First `limits` trip attributed to this scope ("deadline", ...).
  std::string trip_reason PSC_GUARDED_BY(trip_mutex);
};

}  // namespace internal

/// Point-in-time copy of a scope's accumulated delta, consumed by
/// `RunReport::Capture` for the per-query report section.
struct ScopeSnapshot {
  std::string name;
  uint64_t id = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<SpanRecord> spans;
  uint64_t spans_dropped = 0;
  /// Why a `limits::Budget` created under this scope tripped, or empty.
  std::string trip_reason;
};

/// Value-semantics handle on a per-query telemetry accumulator. Copies
/// share state; a default-constructed scope is null (`active() == false`)
/// and behaves as "no scoping requested" everywhere it is passed.
class Scope {
 public:
  Scope() = default;

  /// A fresh scope registered for report capture. The registration is
  /// weak: once the last handle is dropped the scope vanishes from
  /// subsequent reports.
  static Scope Create(const std::string& name);

  bool active() const { return state_ != nullptr; }
  /// Process-unique id, 0 for a null scope.
  uint64_t id() const;
  /// The name given to Create; empty for a null scope.
  const std::string& name() const;

  /// Copies out the accumulated delta. Empty snapshot for a null scope.
  ScopeSnapshot Snapshot() const;

  /// Records why a budget under this scope stopped ("deadline",
  /// "node-budget", ...). First writer wins, matching Budget's
  /// first-trip-wins contract. No-op on a null scope.
  void SetTripReason(const std::string& reason) const;

  /// Internal: shared state for the guard/trace plumbing.
  const std::shared_ptr<internal::ScopeState>& state() const {
    return state_;
  }

 private:
  explicit Scope(std::shared_ptr<internal::ScopeState> state)
      : state_(std::move(state)) {}

  friend Scope CurrentScope();

  std::shared_ptr<internal::ScopeState> state_;
};

/// RAII installation of a scope on the current thread. Nests: the
/// previous scope is reinstalled on destruction. A null scope is a no-op
/// guard — the thread keeps whatever scope it already had, so callers can
/// install unconditionally.
class ScopeGuard {
 public:
  explicit ScopeGuard(const Scope& scope);
  ~ScopeGuard();

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  bool installed_ = false;
  std::shared_ptr<internal::ScopeState> previous_;
};

/// The scope installed on the current thread (null when none).
Scope CurrentScope();

/// Snapshots of every scope still alive, in creation order.
std::vector<ScopeSnapshot> CaptureScopeSnapshots();

/// What must travel with a task submitted to another thread so the
/// receiving thread keeps the submitter's attribution: the active scope
/// and the innermost open span (the task's logical parent).
struct TraceContext {
  /// Id of the submitting thread's innermost open span, or -1 when no
  /// span was open (or tracing is off).
  int64_t parent_span_id = -1;
  Scope scope;
};

/// Captures the calling thread's context at submission time.
TraceContext CaptureTraceContext();

/// RAII reinstallation of a captured context on a worker thread: installs
/// the scope and pushes `parent_span_id` as a virtual parent frame so
/// spans opened by the task nest under the submitting span — the query's
/// call tree stays one connected tree at any thread count.
class TraceContextGuard {
 public:
  explicit TraceContextGuard(const TraceContext& context);
  ~TraceContextGuard();

  TraceContextGuard(const TraceContextGuard&) = delete;
  TraceContextGuard& operator=(const TraceContextGuard&) = delete;

 private:
  ScopeGuard scope_guard_;
  bool pushed_parent_ = false;
};

}  // namespace obs
}  // namespace psc

#endif  // PSC_OBS_SCOPE_H_
