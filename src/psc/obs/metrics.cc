#include "psc/obs/metrics.h"

#include <algorithm>

namespace psc {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_trace_enabled{false};
std::atomic<size_t> g_trace_depth_limit{64};

}  // namespace

void SetOptions(const Options& options) {
  g_enabled.store(options.enabled, std::memory_order_relaxed);
  g_trace_enabled.store(options.trace_enabled, std::memory_order_relaxed);
  g_trace_depth_limit.store(options.trace_depth_limit,
                            std::memory_order_relaxed);
}

Options GetOptions() {
  Options options;
  options.enabled = g_enabled.load(std::memory_order_relaxed);
  options.trace_enabled = g_trace_enabled.load(std::memory_order_relaxed);
  options.trace_depth_limit =
      g_trace_depth_limit.load(std::memory_order_relaxed);
  return options;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

double HistogramSnapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; only interior quantiles go through
  // the log2 buckets.
  if (q == 0.0) return min;
  if (q == 1.0) return max;
  // Rank of the requested quantile, 1-based; q=1 must land on the last
  // recorded value.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      // Clamp the bucket bound into the observed range so p0/p100 are
      // exact and interior percentiles never exceed the true maximum.
      return std::clamp(Histogram::BucketUpperBound(b), min, max);
    }
  }
  return max;
}

double HistogramSnapshot::PercentileInterpolated(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return static_cast<double>(min);
  if (q == 1.0) return static_cast<double>(max);
  // Fractional rank of the quantile in (0, count]; find its bucket and
  // interpolate linearly across the bucket's value range.
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (cumulative + in_bucket >= target) {
      // Bucket 0 holds only the value 0; bucket b >= 1 covers
      // [2^(b-1), 2^b) (BucketUpperBound saturates at b >= 64).
      const double lower =
          b == 0 ? 0.0
                 : static_cast<double>(uint64_t{1} << (b - 1));
      const double upper =
          static_cast<double>(Histogram::BucketUpperBound(b));
      const double position = (target - cumulative) / in_bucket;
      const double value = lower + position * (upper - lower);
      // Clamp into the observed range: interpolation cannot know that
      // e.g. every sample in the top bucket equals max.
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // Bucket b >= 1 covers [2^(b-1), 2^b): 1 + floor(log2(value)) + ... i.e.
  // 64 - countl_zero(value).
  size_t bits = 0;
  while (value != 0) {
    value >>= 1;
    ++bits;
  }
  return bits;  // in [1, 64]
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return uint64_t{1} << bucket;
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t seen_min = min_.load(std::memory_order_relaxed);
  snapshot.min = seen_min == UINT64_MAX ? 0 : seen_min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.buckets.resize(kNumBuckets);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  sync::MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  sync::MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  sync::MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CounterValues() const {
  sync::MutexLock lock(&mutex_);
  std::vector<std::pair<std::string, uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->value());
  }
  return values;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  sync::MutexLock lock(&mutex_);
  std::vector<std::pair<std::string, int64_t>> values;
  values.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge->value());
  }
  return values;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  sync::MutexLock lock(&mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> values;
  values.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    values.emplace_back(name, histogram->Snapshot());
  }
  return values;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  sync::MutexLock lock(&mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::Reset() {
  sync::MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace psc
