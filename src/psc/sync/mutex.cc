#include "psc/sync/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace psc::sync {
namespace {

// This file deliberately depends on nothing but the C library: every
// other subsystem (including obs logging) sits above psc::sync in the
// lock hierarchy, so diagnostics go straight to stderr and abort().

bool RankCheckingDefault() {
  if (const char* env = std::getenv("PSC_SYNC_RANK_CHECKS")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
        std::strcmp(env, "off") == 0) {
      return false;
    }
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
        std::strcmp(env, "on") == 0) {
      return true;
    }
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

std::atomic<bool> g_rank_checks{RankCheckingDefault()};

struct HeldLock {
  const void* mu;
  const char* name;
  int rank;
};

// Deep enough for every legitimate nesting in the tree (the deepest real
// chain is ~6: serve queue -> delta data -> delta cache -> eval index ->
// memo shard -> obs metrics). Overflow aborts rather than silently
// dropping entries.
constexpr int kMaxHeld = 64;

thread_local HeldLock t_held[kMaxHeld];
thread_local int t_held_count = 0;

[[noreturn]] void Die(const char* format, const char* a, int ra,
                      const char* b, int rb) {
  std::fprintf(stderr, format, a, ra, b, rb);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool RankCheckingEnabled() {
  return g_rank_checks.load(std::memory_order_relaxed);
}

void SetRankCheckingEnabled(bool enabled) {
  g_rank_checks.store(enabled, std::memory_order_relaxed);
}

namespace internal {

void PushHeld(const void* mu, const char* name, int rank) {
  if (!RankCheckingEnabled()) return;
  if (t_held_count > 0) {
    const HeldLock& top = t_held[t_held_count - 1];
    if (rank <= top.rank) {
      Die(
          "psc::sync lock rank inversion: acquiring \"%s\" (rank %d) "
          "while holding \"%s\" (rank %d); see src/psc/sync/rank.h for "
          "the lock hierarchy\n",
          name, rank, top.name, top.rank);
    }
  }
  if (t_held_count >= kMaxHeld) {
    Die(
        "psc::sync held-lock stack overflow acquiring \"%s\" (rank %d) "
        "with innermost held lock \"%s\" (rank %d)\n",
        name, rank, t_held[t_held_count - 1].name,
        t_held[t_held_count - 1].rank);
  }
  t_held[t_held_count++] = HeldLock{mu, name, rank};
}

void PopHeld(const void* mu) {
  if (t_held_count == 0) return;  // acquired while checking was off
  // Almost always the top of the stack; search downward to tolerate
  // checking being toggled between acquire and release.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) {
      for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
      --t_held_count;
      return;
    }
  }
}

bool IsHeld(const void* mu) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) return true;
  }
  return false;
}

void CheckHeld(const void* mu, const char* name, const char* what) {
  if (!RankCheckingEnabled()) return;
  if (!IsHeld(mu)) {
    std::fprintf(stderr,
                 "psc::sync %s failed: thread does not hold \"%s\" "
                 "(%d lock(s) currently held)\n",
                 what, name, t_held_count);
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace psc::sync
