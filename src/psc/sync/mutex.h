#ifndef PSC_SYNC_MUTEX_H_
#define PSC_SYNC_MUTEX_H_

/// \file
/// Annotated locking primitives: the only mutexes allowed in psc.
///
/// `psc::sync::Mutex` and `SharedMutex` wrap the standard primitives with
/// three additions:
///   1. Clang thread-safety capabilities (annotations.h), so Clang builds
///      statically verify that every `PSC_GUARDED_BY` field is accessed
///      under its lock and every `PSC_REQUIRES` contract is met.
///   2. A name and a static rank (rank.h). Debug builds maintain a
///      thread-local stack of held locks and abort — printing both lock
///      names and ranks — the moment any thread acquires locks out of
///      rank order. That is the dynamic deadlock detector for the one
///      property the annotations cannot express.
///   3. A linter-enforced monopoly: tools/psc_lint.py rejects raw
///      `std::mutex` / `std::lock_guard` / `std::unique_lock` anywhere in
///      `src/psc/` outside this directory, so nothing bypasses the
///      annotations or the rank checker.
///
/// Locking style used throughout the tree:
///
///   class Cache {
///     mutable sync::Mutex mu_{"eval.index_cache", sync::kRankEvalIndexCache};
///     std::map<Key, Entry> entries_ PSC_GUARDED_BY(mu_);
///    public:
///     const Entry* Find(const Key& k) const {
///       sync::MutexLock lock(&mu_);
///       ...
///     }
///   };
///
/// Condition waits are written as explicit loops so the analysis can see
/// the guarded reads happen under the lock:
///
///   sync::MutexLock lock(&mu_);
///   while (!done_) cv_.Wait(mu_);

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "psc/sync/annotations.h"
#include "psc/sync/rank.h"

namespace psc::sync {

/// Returns true when lock-rank bookkeeping is active. Defaults to on in
/// debug builds (!NDEBUG) and to the PSC_SYNC_RANK_CHECKS environment
/// variable otherwise ("1"/"true"/"on" enable, "0"/"false"/"off"
/// disable).
bool RankCheckingEnabled();

/// Force rank checking on or off at runtime (tests use this to exercise
/// the checker in Release builds).
void SetRankCheckingEnabled(bool enabled);

namespace internal {
// Thread-local held-lock stack maintenance. `mu` is used only as an
// identity key; these never dereference it.
void PushHeld(const void* mu, const char* name, int rank);
void PopHeld(const void* mu);
bool IsHeld(const void* mu);
// Aborts (when checking is on) unless `mu` is on this thread's held
// stack; `what` names the violated contract in the diagnostic.
void CheckHeld(const void* mu, const char* name, const char* what);
}  // namespace internal

/// A standard exclusive mutex with a name, a rank, and thread-safety
/// capability annotations. Not recursive, not copyable, not movable.
class PSC_CAPABILITY("mutex") Mutex {
 public:
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PSC_ACQUIRE() {
    mu_.lock();
    internal::PushHeld(this, name_, rank_);
  }

  void Unlock() PSC_RELEASE() {
    internal::PopHeld(this);
    mu_.unlock();
  }

  /// Runtime + static assertion that the calling thread holds this lock.
  /// (Runtime part is a no-op when rank checking is disabled.)
  void AssertHeld() const PSC_ASSERT_CAPABILITY(this) {
    internal::CheckHeld(this, name_, "AssertHeld");
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex& native() { return mu_; }

  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

/// A readers-writer mutex. Shared holders participate in rank checking
/// exactly like exclusive holders: acquiring any lock — shared or not —
/// requires a rank above everything already held.
class PSC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(const char* name, int rank) : name_(name), rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PSC_ACQUIRE() {
    mu_.lock();
    internal::PushHeld(this, name_, rank_);
  }

  void Unlock() PSC_RELEASE() {
    internal::PopHeld(this);
    mu_.unlock();
  }

  void LockShared() PSC_ACQUIRE_SHARED() {
    mu_.lock_shared();
    internal::PushHeld(this, name_, rank_);
  }

  void UnlockShared() PSC_RELEASE_SHARED() {
    internal::PopHeld(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const PSC_ASSERT_CAPABILITY(this) {
    internal::CheckHeld(this, name_, "AssertHeld");
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* const name_;
  const int rank_;
};

/// RAII exclusive lock over Mutex.
class PSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PSC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PSC_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex.
class PSC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) PSC_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() PSC_RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (read) lock over SharedMutex.
class PSC_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) PSC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() PSC_RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to psc::sync::Mutex. Wait() requires the
/// mutex held and keeps its rank-stack entry in place while blocked: a
/// waiting thread acquires nothing, and on wakeup it again holds exactly
/// what it held before, so the recorded state stays accurate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Callers loop: `while (!pred) cv.Wait(mu);`.
  void Wait(Mutex& mu) PSC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// As Wait, but gives up after `timeout`. Returns false on timeout.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      PSC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    bool signalled = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return signalled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace psc::sync

#endif  // PSC_SYNC_MUTEX_H_
