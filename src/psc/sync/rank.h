#ifndef PSC_SYNC_RANK_H_
#define PSC_SYNC_RANK_H_

/// \file
/// The project-wide lock hierarchy.
///
/// Every psc::sync::Mutex/SharedMutex is constructed with a name and one
/// of these ranks. The invariant: a thread may only acquire a lock whose
/// rank is STRICTLY GREATER than every lock it already holds. Since the
/// relation is a total order, no cycle of acquisitions — and therefore no
/// deadlock among ranked locks — is possible. Debug builds (and any build
/// with PSC_SYNC_RANK_CHECKS=1 in the environment) enforce the invariant
/// at runtime and abort with both lock names on the first violation; see
/// mutex.cc.
///
/// Reading the table: low ranks are OUTER locks (taken first, near the
/// service edge), high ranks are INNER locks (leaf utilities such as the
/// metrics registry that any subsystem may call into while holding its
/// own lock). When adding a lock, place it after everything it may be
/// acquired under and before everything that may be acquired under it,
/// and record it in DESIGN.md §14. Gaps between values are intentional
/// room for insertion.

namespace psc::sync {

// serve:: — the daemon edge. Engine::mutex_ is the outermost lock in the
// process: dispatch holds it while touching queues and then emits
// metrics/traces (inner ranks) on the way out.
inline constexpr int kRankServeQueue = 10;        // serve.engine.queue
inline constexpr int kRankServeCollections = 20;  // serve.engine.collections
inline constexpr int kRankServeConnections = 30;  // serve.socket.connections
inline constexpr int kRankServeWrite = 35;        // serve.socket.write

// delta:: — collection state. ApplyDelta takes data exclusively, then the
// plan/report cache, then calls down into eval/exec.
inline constexpr int kRankDeltaData = 40;   // delta.data (SharedMutex)
inline constexpr int kRankDeltaCache = 50;  // delta.cache

// consistency:: — per-search coordination inside the parallel
// canonical-freeze solver.
inline constexpr int kRankSearchOutcome = 60;  // consistency.search
inline constexpr int kRankSearchBlocks = 65;   // consistency.blocks

// eval/exec:: — solver-internal caches and the thread-pool runtime. Query
// evaluation may populate the index cache or the containment memo while a
// delta lock is held; pool queue locks nest inside everything that
// submits work.
inline constexpr int kRankEvalIndexCache = 70;  // eval.index_cache
inline constexpr int kRankMemoShard = 75;       // exec.memo_shard
inline constexpr int kRankExecQueue = 80;       // exec.pool.queue
inline constexpr int kRankExecWake = 85;        // exec.pool.wake
inline constexpr int kRankExecLatch = 90;       // exec.parallel.latch
inline constexpr int kRankServeDone = 95;       // serve.engine.call_done

// obs:: — the leaves. Any lock holder may emit a metric, append a trace
// record, or log a warning, so these must outrank the entire solver and
// service stack. Within obs, the one nesting that exists is
// log-once(seen) -> log sink.
inline constexpr int kRankObsScopeTrip = 100;      // obs.scope.trip
inline constexpr int kRankObsScopeRegistry = 105;  // obs.scope.registry
inline constexpr int kRankObsTraceBuffer = 110;    // obs.trace.buffer
inline constexpr int kRankObsMetrics = 115;        // obs.metrics.registry
inline constexpr int kRankObsLogSeen = 120;        // obs.log.seen
inline constexpr int kRankObsLogSink = 125;        // obs.log.sink

}  // namespace psc::sync

#endif  // PSC_SYNC_RANK_H_
