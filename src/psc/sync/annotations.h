#ifndef PSC_SYNC_ANNOTATIONS_H_
#define PSC_SYNC_ANNOTATIONS_H_

/// \file
/// Clang thread-safety annotation macros (PSC_GUARDED_BY and friends).
///
/// Under Clang, `-Wthread-safety` turns these into a compile-time proof
/// obligation: every access to a `PSC_GUARDED_BY(mu)` field must happen
/// with `mu` held, every caller of a `PSC_REQUIRES(mu)` function must
/// hold `mu`, and the RAII lock types in mutex.h discharge those
/// obligations mechanically. Under any other compiler the macros expand
/// to nothing, so the annotations are free documentation there and a
/// static race detector wherever Clang builds the tree (CMake adds
/// `-Wthread-safety` automatically for Clang; with the default
/// PSC_WERROR=ON every violation is a build break).
///
/// The vocabulary mirrors the Clang documentation's canonical mutex.h so
/// the analysis semantics are exactly the documented ones:
///
///   PSC_CAPABILITY("mutex")      class is a lockable capability
///   PSC_SCOPED_CAPABILITY        RAII class acquiring in ctor, releasing
///                                in dtor (MutexLock, ReaderLock, ...)
///   PSC_GUARDED_BY(mu)           field needs `mu` held for any access
///   PSC_PT_GUARDED_BY(mu)        pointee needs `mu` held (field itself
///                                freely readable)
///   PSC_REQUIRES(mu...)          function must be called with `mu` held
///                                exclusively (PSC_REQUIRES_SHARED: held
///                                at least shared)
///   PSC_ACQUIRE / PSC_RELEASE    function acquires/releases `mu` itself
///                                (+ _SHARED variants)
///   PSC_EXCLUDES(mu...)          function must NOT be called with `mu`
///                                held (non-reentrant entry points)
///   PSC_ASSERT_CAPABILITY(mu)    runtime assertion that `mu` is held;
///                                teaches the analysis the fact
///   PSC_RETURN_CAPABILITY(mu)    accessor returning a reference to `mu`
///   PSC_ACQUIRED_BEFORE/AFTER    declared lock ordering (the static
///                                sibling of the runtime rank checker)
///   PSC_NO_THREAD_SAFETY_ANALYSIS  opt a function out (used only where
///                                exclusivity is external by contract,
///                                e.g. move assignment)
///
/// Keep these macros attribute-thin: no code, no includes beyond the
/// attribute test, so they are safe in any header.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PSC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PSC_THREAD_ANNOTATION
#define PSC_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define PSC_CAPABILITY(x) PSC_THREAD_ANNOTATION(capability(x))
#define PSC_SCOPED_CAPABILITY PSC_THREAD_ANNOTATION(scoped_lockable)

#define PSC_GUARDED_BY(x) PSC_THREAD_ANNOTATION(guarded_by(x))
#define PSC_PT_GUARDED_BY(x) PSC_THREAD_ANNOTATION(pt_guarded_by(x))

#define PSC_REQUIRES(...) \
  PSC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PSC_REQUIRES_SHARED(...) \
  PSC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define PSC_ACQUIRE(...) \
  PSC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PSC_ACQUIRE_SHARED(...) \
  PSC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PSC_RELEASE(...) \
  PSC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PSC_RELEASE_SHARED(...) \
  PSC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PSC_TRY_ACQUIRE(...) \
  PSC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define PSC_EXCLUDES(...) PSC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define PSC_ASSERT_CAPABILITY(x) PSC_THREAD_ANNOTATION(assert_capability(x))
#define PSC_ASSERT_SHARED_CAPABILITY(x) \
  PSC_THREAD_ANNOTATION(assert_shared_capability(x))

#define PSC_RETURN_CAPABILITY(x) PSC_THREAD_ANNOTATION(lock_returned(x))

#define PSC_ACQUIRED_BEFORE(...) \
  PSC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PSC_ACQUIRED_AFTER(...) \
  PSC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define PSC_NO_THREAD_SAFETY_ANALYSIS \
  PSC_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PSC_SYNC_ANNOTATIONS_H_
