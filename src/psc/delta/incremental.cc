#include "psc/delta/incremental.h"

#include <algorithm>
#include <utility>

#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"
#include "psc/util/string_util.h"

namespace psc {
namespace delta {

IncrementalSystem::IncrementalSystem(SourceCollection collection,
                                     QuerySystem::Options options)
    : collection_(std::move(collection)), options_(std::move(options)) {
  groups_ = collection_.RelationGroups();
  for (const auto& group : groups_) {
    for (const size_t i : group) {
      for (const Atom& atom : collection_.source(i).view().relational_body()) {
        relation_to_group_[atom.predicate()] = group;
      }
    }
  }
}

IncrementalSystem::IncrementalSystem(IncrementalSystem&& o) noexcept
    : collection_(std::move(o.collection_)),
      options_(std::move(o.options_)),
      groups_(std::move(o.groups_)),
      relation_to_group_(std::move(o.relation_to_group_)),
      system_(std::move(o.system_)),
      report_(std::move(o.report_)),
      answers_(std::move(o.answers_)) {}

IncrementalSystem& IncrementalSystem::operator=(
    IncrementalSystem&& o) noexcept {
  if (this == &o) return *this;
  collection_ = std::move(o.collection_);
  options_ = std::move(o.options_);
  groups_ = std::move(o.groups_);
  relation_to_group_ = std::move(o.relation_to_group_);
  system_ = std::move(o.system_);
  report_ = std::move(o.report_);
  answers_ = std::move(o.answers_);
  return *this;
}

Result<IncrementalSystem> IncrementalSystem::Create(
    SourceCollection collection, QuerySystem::Options options) {
  // Surface construction errors eagerly rather than on the first query.
  PSC_ASSIGN_OR_RETURN(QuerySystem probe,
                       QuerySystem::Create(collection, options));
  IncrementalSystem system(std::move(collection), std::move(options));
  {
    // Uncontended (the object is local) but keeps the guarded-field
    // access provable to the thread-safety analysis.
    sync::MutexLock lock(&system.cache_mutex_);
    system.system_.emplace(std::move(probe));
  }
  return system;
}

Result<const QuerySystem*> IncrementalSystem::GetOrBuildSystem() const {
  sync::MutexLock lock(&cache_mutex_);
  if (!system_.has_value()) {
    PSC_ASSIGN_OR_RETURN(QuerySystem system,
                         QuerySystem::Create(collection_, options_));
    system_.emplace(std::move(system));
  }
  return &*system_;
}

std::vector<size_t> IncrementalSystem::DirtySourcesSince(uint64_t since) const {
  std::vector<size_t> dirty;
  for (size_t i = 0; i < collection_.size(); ++i) {
    if (collection_.source_generation(i) > since) dirty.push_back(i);
  }
  return dirty;
}

std::vector<size_t> IncrementalSystem::RelevantSources(
    const std::set<std::string>& relations) const {
  std::set<size_t> relevant;
  for (const std::string& relation : relations) {
    const auto it = relation_to_group_.find(relation);
    if (it == relation_to_group_.end()) continue;  // outside sch(S)
    relevant.insert(it->second.begin(), it->second.end());
  }
  return std::vector<size_t>(relevant.begin(), relevant.end());
}

Result<CollectionDeltaSummary> IncrementalSystem::ApplyDelta(
    const CollectionDelta& delta) {
  sync::WriterLock data_lock(&data_mutex_);
  PSC_OBS_SPAN("delta.apply");
  PSC_ASSIGN_OR_RETURN(const CollectionDeltaSummary summary,
                       collection_.ApplyDelta(delta));
  PSC_OBS_COUNTER_INC("delta.batches_applied");
  if (summary.changed()) {
    sync::MutexLock cache_lock(&cache_mutex_);
    // The QuerySystem snapshots the collection, so it must be rebuilt; the
    // report and answer caches self-invalidate through their generation
    // stamps and stay for dirty-scoped reuse.
    system_.reset();
  }
  return summary;
}

Result<ConsistencyReport> IncrementalSystem::CheckConsistency() const {
  sync::ReaderLock data_lock(&data_mutex_);
  PSC_OBS_SPAN("delta.check_consistency");
  const uint64_t now = collection_.generation();
  CachedReport snapshot;
  {
    sync::MutexLock cache_lock(&cache_mutex_);
    snapshot = report_;
  }

  // Nothing mutated since the cached report: return it outright.
  if (snapshot.valid && snapshot.generation == now) {
    PSC_OBS_COUNTER_INC("delta.consistency.cache_hits");
    PSC_OBS_COUNTER_ADD("delta.consistency.combinations_skipped",
                        snapshot.last_full_combinations);
    ConsistencyReport report = snapshot.report;
    report.method = "delta-cache";
    report.combinations_tried = 0;
    report.candidates_checked = 0;
    report.combinations_skipped = snapshot.last_full_combinations;
    return report;
  }

  if (snapshot.valid &&
      snapshot.report.verdict == ConsistencyVerdict::kConsistent &&
      snapshot.report.witness.has_value()) {
    const std::vector<size_t> dirty = DirtySourcesSince(snapshot.generation);
    // Clean sources kept their measures against the unchanged witness, so
    // only the dirty ones can newly fail (see general_consistency.h).
    PSC_ASSIGN_OR_RETURN(
        const bool survives,
        WitnessSatisfiesSources(collection_, *snapshot.report.witness, dirty));
    if (survives) {
      PSC_OBS_COUNTER_INC("delta.consistency.revalidations");
      PSC_OBS_COUNTER_ADD("delta.consistency.combinations_skipped",
                          snapshot.last_full_combinations);
      ConsistencyReport report;
      report.verdict = ConsistencyVerdict::kConsistent;
      report.witness = snapshot.report.witness;
      report.method = "delta-revalidate";
      report.candidates_checked = 1;
      report.combinations_skipped = snapshot.last_full_combinations;
      sync::MutexLock cache_lock(&cache_mutex_);
      report_ = CachedReport{true, now, report, snapshot.last_full_combinations};
      return report;
    }
    // The witness broke. For identity views a cheap repair often works:
    // missing sound facts can only be the dirty sources' new extension
    // tuples, so try the witness plus those before paying for the full
    // pipeline. The repaired candidate is verified against *every* source
    // (growing D can lower clean sources' completeness).
    std::string identity_relation;
    if (collection_.AllIdentityViews(&identity_relation)) {
      Database repaired = *snapshot.report.witness;
      for (const size_t i : dirty) {
        for (const Tuple& tuple : collection_.source(i).extension()) {
          repaired.AddFact(identity_relation, tuple);
        }
      }
      PSC_ASSIGN_OR_RETURN(const bool possible,
                           collection_.IsPossibleWorld(repaired));
      if (possible) {
        PSC_OBS_COUNTER_INC("delta.consistency.repairs");
        PSC_OBS_COUNTER_ADD("delta.consistency.combinations_skipped",
                            snapshot.last_full_combinations);
        ConsistencyReport report;
        report.verdict = ConsistencyVerdict::kConsistent;
        report.witness = std::move(repaired);
        report.method = "delta-repair";
        report.candidates_checked = 2;
        report.combinations_skipped = snapshot.last_full_combinations;
        sync::MutexLock cache_lock(&cache_mutex_);
        report_ =
            CachedReport{true, now, report, snapshot.last_full_combinations};
        return report;
      }
    }
  }

  PSC_ASSIGN_OR_RETURN(const QuerySystem* system, GetOrBuildSystem());
  PSC_ASSIGN_OR_RETURN(ConsistencyReport report, system->CheckConsistency());
  PSC_OBS_COUNTER_INC("delta.consistency.full_checks");
  sync::MutexLock cache_lock(&cache_mutex_);
  report_ = CachedReport{true, now, report, report.combinations_tried};
  return report;
}

Result<QueryAnswer> IncrementalSystem::AnswerExact(
    const ConjunctiveQuery& query, const std::vector<Value>& domain) const {
  sync::ReaderLock data_lock(&data_mutex_);
  PSC_OBS_SPAN("delta.answer_exact");
  const uint64_t now = collection_.generation();
  std::string key = query.ToString();
  for (const Value& value : domain) key += StrCat("|", value.ToString());

  {
    sync::MutexLock cache_lock(&cache_mutex_);
    const auto it = answers_.find(key);
    if (it != answers_.end()) {
      // Group-scoped reuse is only sound while the collection is known
      // consistent at the *current* generation (file comment).
      const bool consistent_now =
          report_.valid && report_.generation == now &&
          report_.report.verdict == ConsistencyVerdict::kConsistent;
      bool untouched = true;
      for (const size_t i : it->second.relevant_sources) {
        if (collection_.source_generation(i) > it->second.generation) {
          untouched = false;
          break;
        }
      }
      if (consistent_now && untouched) {
        PSC_OBS_COUNTER_INC("delta.answers.cache_hits");
        QueryAnswer answer = it->second.answer;
        answer.from_cache = true;
        return answer;
      }
      if (!untouched) answers_.erase(it);  // a relevant source mutated
    }
  }

  PSC_ASSIGN_OR_RETURN(const QuerySystem* system, GetOrBuildSystem());
  PSC_ASSIGN_OR_RETURN(QueryAnswer answer, system->AnswerExact(query, domain));
  PSC_OBS_COUNTER_INC("delta.answers.computed");
  std::set<std::string> relations;
  for (const Atom& atom : query.relational_body()) {
    relations.insert(atom.predicate());
  }
  CachedAnswer cached;
  cached.answer = answer;
  cached.generation = now;
  cached.relevant_sources = RelevantSources(relations);
  sync::MutexLock cache_lock(&cache_mutex_);
  answers_[key] = std::move(cached);
  return answer;
}

SourceCollection IncrementalSystem::CollectionSnapshot() const {
  sync::ReaderLock data_lock(&data_mutex_);
  return collection_;
}

uint64_t IncrementalSystem::generation() const {
  sync::ReaderLock data_lock(&data_mutex_);
  return collection_.generation();
}

size_t IncrementalSystem::AnswerCacheSize() const {
  sync::MutexLock lock(&cache_mutex_);
  return answers_.size();
}

}  // namespace delta
}  // namespace psc
