#ifndef PSC_DELTA_INCREMENTAL_H_
#define PSC_DELTA_INCREMENTAL_H_

/// \file
/// The incremental-maintenance layer over an evolving source collection
/// (ROADMAP item 2; the paper's §6 caches and mirrors whose extensions
/// drift over time).
///
/// An `IncrementalSystem` owns a mutable `SourceCollection` plus caches of
/// the expensive derived state — the consistency report with its witness
/// world, and exact query answers — and keeps both warm across
/// `ApplyDelta` calls by *dirty-scoped invalidation*:
///
///  * **Consistency.** Bounds are checked per source, and a source whose
///    extension did not change keeps its measured c_D/s_D against an
///    unchanged witness. So after a delta only the *dirty* sources (those
///    with a generation newer than the cached report) are re-checked
///    against the cached witness ("delta-revalidate"). If a dirty source's
///    bounds newly fail, an identity-view repair tries the witness plus
///    the dirty extensions ("delta-repair") before falling back to the
///    full strategy pipeline. Every avoided combination is surfaced in
///    `ConsistencyReport::combinations_skipped` and the
///    `delta.consistency.combinations_skipped` counter.
///
///  * **Answers.** poss(S) factorizes across *relation groups* — connected
///    components of the "shares a body relation" graph
///    (`SourceCollection::RelationGroups`). Worlds restricted to different
///    groups vary independently, so under the uniform possible-world
///    semantics the marginal confidence of a query touching only group G
///    is invariant under deltas confined to other groups, as long as the
///    collection stays consistent (an inconsistent group empties poss(S)
///    globally). A cached answer is therefore reused iff the current
///    verdict is kConsistent and no source in the query's relevant groups
///    has mutated since the answer was computed.
///
/// Thread safety: queries and consistency checks take a shared lock,
/// `ApplyDelta` an exclusive one, so readers stream against a stable
/// snapshot while writers serialize — the pattern a long-lived `pscd`
/// service needs (ROADMAP item 1). Cache bookkeeping uses a second small
/// mutex; two concurrent cache misses may duplicate work but produce
/// bit-identical results.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "psc/core/query_system.h"
#include "psc/source/source_collection.h"
#include "psc/sync/mutex.h"
#include "psc/util/result.h"

namespace psc {
namespace delta {

/// \brief A `QuerySystem` façade that survives mutations.
class IncrementalSystem {
 public:
  /// Builds an incremental system over `collection`. `options` configures
  /// the underlying `QuerySystem` (threads, budgets, compiled eval, …).
  static Result<IncrementalSystem> Create(SourceCollection collection,
                                          QuerySystem::Options options = {});

  // Moves transfer guarded state without locks: the contract (as for any
  // std type) is that no other thread touches either operand during the
  // move, so the analysis is waived for both.
  IncrementalSystem(IncrementalSystem&&) noexcept;
  IncrementalSystem& operator=(IncrementalSystem&&) noexcept
      PSC_NO_THREAD_SAFETY_ANALYSIS;

  /// \brief Applies a batched extension delta (exclusive; serializes with
  /// queries). Validation is all-or-nothing (see
  /// `SourceCollection::ApplyDelta`); a no-op delta invalidates nothing.
  Result<CollectionDeltaSummary> ApplyDelta(const CollectionDelta& delta);

  /// \brief Consistency of the current collection, reusing the cached
  /// witness where the dirty-source argument allows (method
  /// "delta-cache", "delta-revalidate" or "delta-repair"); otherwise the
  /// full `GeneralConsistencyChecker` pipeline runs and its report is
  /// cached.
  Result<ConsistencyReport> CheckConsistency() const;

  /// \brief Exact query answering with group-scoped caching (see file
  /// comment). Cache hits return `QueryAnswer::from_cache = true` and are
  /// bit-identical to recomputation. NOTE: reuse requires a current
  /// kConsistent report — in streaming loops call `CheckConsistency()`
  /// after each delta (the CLI's `--apply-delta` mode does), or every
  /// answer recomputes.
  Result<QueryAnswer> AnswerExact(const ConjunctiveQuery& query,
                                  const std::vector<Value>& domain) const;

  /// Snapshot accessors (take the shared lock).
  SourceCollection CollectionSnapshot() const;
  uint64_t generation() const;

  /// Number of cached query answers currently stored (tests).
  size_t AnswerCacheSize() const;

 private:
  IncrementalSystem(SourceCollection collection, QuerySystem::Options options);

  struct CachedReport {
    bool valid = false;
    /// collection.generation() the report describes.
    uint64_t generation = 0;
    ConsistencyReport report;
    /// combinations_tried by the last *full* check — the work a
    /// revalidation hit avoids.
    uint64_t last_full_combinations = 0;
  };

  struct CachedAnswer {
    QueryAnswer answer;
    /// collection.generation() at compute time.
    uint64_t generation = 0;
    /// Sources (full relevant groups) the answer depends on.
    std::vector<size_t> relevant_sources;
  };

  /// Builds (once per mutation) the QuerySystem over the current
  /// collection. Caller must hold the shared data lock.
  Result<const QuerySystem*> GetOrBuildSystem() const
      PSC_REQUIRES_SHARED(data_mutex_);

  /// Source indices whose generation is newer than `since`.
  std::vector<size_t> DirtySourcesSince(uint64_t since) const
      PSC_REQUIRES_SHARED(data_mutex_);

  /// Sources in every relation group that mentions one of `relations`.
  std::vector<size_t> RelevantSources(
      const std::set<std::string>& relations) const;

  mutable sync::SharedMutex data_mutex_{"delta.data", sync::kRankDeltaData};
  SourceCollection collection_ PSC_GUARDED_BY(data_mutex_);
  QuerySystem::Options options_;
  /// Source index → relation-group id, fixed at Create (views are
  /// immutable; only extensions drift).
  std::vector<std::vector<size_t>> groups_;
  std::map<std::string, std::vector<size_t>> relation_to_group_;

  mutable sync::Mutex cache_mutex_{"delta.cache", sync::kRankDeltaCache};
  mutable std::optional<QuerySystem> system_ PSC_GUARDED_BY(cache_mutex_);
  mutable CachedReport report_ PSC_GUARDED_BY(cache_mutex_);
  mutable std::map<std::string, CachedAnswer> answers_
      PSC_GUARDED_BY(cache_mutex_);
};

}  // namespace delta
}  // namespace psc

#endif  // PSC_DELTA_INCREMENTAL_H_
