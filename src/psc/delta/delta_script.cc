#include "psc/delta/delta_script.h"

#include <fstream>
#include <sstream>

#include "psc/parser/parser.h"
#include "psc/util/string_util.h"

namespace psc {
namespace delta {

Result<std::vector<CollectionDelta>> ParseDeltaScript(const std::string& text) {
  std::vector<CollectionDelta> batches;
  CollectionDelta current;
  size_t line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string line = raw;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line == "--") {
      if (!current.empty()) batches.push_back(std::move(current));
      current = CollectionDelta();
      continue;
    }
    const char op = line[0];
    if (op != '+' && op != '-') {
      return Status::InvalidArgument(
          StrCat("delta script line ", line_number, ": expected '+', '-' or "
                 "'--', got '", line, "'"));
    }
    const std::string fact_text = Trim(line.substr(1));
    auto fact = ParseFact(fact_text);
    if (!fact.ok()) {
      return Status::InvalidArgument(
          StrCat("delta script line ", line_number, ": ",
                 fact.status().message()));
    }
    if (op == '+') {
      current.Insert(fact->relation(), fact->tuple());
    } else {
      current.Retract(fact->relation(), fact->tuple());
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

Result<std::vector<CollectionDelta>> ParseDeltaScriptFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open delta script '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDeltaScript(buffer.str());
}

}  // namespace delta
}  // namespace psc
