#ifndef PSC_DELTA_DELTA_SCRIPT_H_
#define PSC_DELTA_DELTA_SCRIPT_H_

#include <string>
#include <vector>

#include "psc/source/source_collection.h"
#include "psc/util/result.h"

namespace psc {
namespace delta {

/// \brief Parses a *delta script*: the text format behind the CLI's
/// `--apply-delta <file>` streaming mode.
///
/// One mutation per line:
///
///     # mirror drift, day 1
///     + Cache(1, 2)          insert tuple (1, 2) into source Cache's extension
///     - Cache(3, "x")        retract tuple (3, "x")
///     --                     batch separator: apply-and-requery point
///     + Mirror(7, 8)
///
/// `#` starts a comment (whole line); blank lines are ignored; `--` closes
/// the current batch (an empty batch, e.g. a trailing separator, is
/// dropped). The identifier names a *source*, not a global relation — the
/// tuple mutates that source's view extension v.
///
/// Returns the batches in script order. Arity and source-name validation
/// happens at apply time (`SourceCollection::ApplyDelta`), not here, since
/// the script parses independently of any collection.
Result<std::vector<CollectionDelta>> ParseDeltaScript(const std::string& text);

/// \brief Reads `path` and parses it as a delta script.
Result<std::vector<CollectionDelta>> ParseDeltaScriptFile(
    const std::string& path);

}  // namespace delta
}  // namespace psc

#endif  // PSC_DELTA_DELTA_SCRIPT_H_
