#include "psc/limits/budget.h"

#include "psc/obs/metrics.h"
#include "psc/obs/scope.h"
#include "psc/util/string_util.h"

namespace psc {
namespace limits {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

thread_local const CallLimits* t_ambient_limits = nullptr;

/// min of two "0 = unlimited" limits: the tighter nonzero value wins.
template <typename T>
T TightenLimit(T a, T b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

}  // namespace

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kNodeBudget:
      return "node-budget";
    case StopReason::kMemoryBudget:
      return "memory-budget";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct Budget::State {
  BudgetOptions options;
  /// Absolute deadline; Clock::time_point::max() when no deadline is set.
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<uint64_t> nodes{0};
  std::atomic<uint64_t> memory_bytes{0};
  /// StopReason of the first tripped limit; kNone while within budget.
  std::atomic<int> reason{static_cast<int>(StopReason::kNone)};
  /// Steady micros at the moment of the trip, for observer latency.
  std::atomic<uint64_t> trip_micros{0};
  CancelToken token;
  /// The obs::Scope installed when the budget was built: trips attribute
  /// to the query that configured the limit, no matter which worker
  /// thread observes the trip first (its own installed scope may be the
  /// same one, another query's, or none).
  obs::Scope scope;

  /// Records the first trip (later trips keep the original reason) and
  /// cancels the token so workers blocked on coarser checks see it.
  /// Returns false always, for tail-calling from the check functions.
  bool Trip(StopReason why) {
    const obs::ScopeGuard scope_guard(scope);
    int expected = static_cast<int>(StopReason::kNone);
    if (reason.compare_exchange_strong(expected, static_cast<int>(why),
                                       std::memory_order_acq_rel)) {
      trip_micros.store(NowMicros(), std::memory_order_release);
      token.Cancel();
      if (why != StopReason::kNone) {
        scope.SetTripReason(StopReasonToString(why));
      }
      switch (why) {
        case StopReason::kDeadline:
          PSC_OBS_COUNTER_INC("limits.deadline_hits");
          break;
        case StopReason::kNodeBudget:
        case StopReason::kMemoryBudget:
          PSC_OBS_COUNTER_INC("limits.budget_hits");
          break;
        case StopReason::kCancelled:
          PSC_OBS_COUNTER_INC("limits.cancellations");
          break;
        case StopReason::kNone:
          break;
      }
    } else {
      // An already-tripped budget: this thread is observing the trip,
      // possibly for the first time. Record how stale its view was.
      const uint64_t tripped_at =
          trip_micros.load(std::memory_order_acquire);
      const uint64_t now = NowMicros();
      PSC_OBS_HISTOGRAM_RECORD("limits.cancel_latency_us",
                               now > tripped_at ? now - tripped_at : 0);
    }
    return false;
  }

  StopReason CurrentReason() const {
    return static_cast<StopReason>(reason.load(std::memory_order_acquire));
  }
};

Budget::Budget(const BudgetOptions& options)
    : state_(std::make_shared<State>()) {
  state_->options = options;
  if (const CallLimits* ambient = AmbientCallLimits(); ambient != nullptr) {
    state_->options.deadline_ms =
        TightenLimit(state_->options.deadline_ms, ambient->deadline_ms);
    state_->options.node_budget =
        TightenLimit(state_->options.node_budget, ambient->node_budget);
  }
  // Budgets are built on the query's entry path, before fan-out, so the
  // scope installed here is the query the limits belong to.
  state_->scope = obs::CurrentScope();
  if (options.cancel.has_value()) state_->token = *options.cancel;
  if (state_->options.deadline_ms > 0) {
    state_->deadline =
        Clock::now() + std::chrono::milliseconds(state_->options.deadline_ms);
  }
}

Budget Budget::WithDeadline(int64_t deadline_ms) {
  BudgetOptions options;
  options.deadline_ms = deadline_ms;
  return Budget(options);
}

Budget Budget::WithNodeBudget(uint64_t nodes) {
  BudgetOptions options;
  options.node_budget = nodes;
  return Budget(options);
}

bool Budget::Charge(uint64_t n) const {
  if (state_ == nullptr) return true;
  State& s = *state_;
  if (s.CurrentReason() != StopReason::kNone) {
    return s.Trip(StopReason::kNone);  // records observer latency
  }
  const uint64_t total = s.nodes.fetch_add(n, std::memory_order_relaxed) + n;
  if (s.token.cancelled()) return s.Trip(StopReason::kCancelled);
  if (s.options.node_budget != 0 && total > s.options.node_budget) {
    return s.Trip(StopReason::kNodeBudget);
  }
  // Poll the clock when this charge crossed a stride boundary (always,
  // for charges of at least one full stride).
  if (s.deadline != Clock::time_point::max() &&
      (total % kDeadlineStride < n || n >= kDeadlineStride)) {
    if (Clock::now() >= s.deadline) return s.Trip(StopReason::kDeadline);
  }
  return true;
}

bool Budget::Expired() const {
  if (state_ == nullptr) return false;
  State& s = *state_;
  if (s.CurrentReason() != StopReason::kNone) {
    s.Trip(StopReason::kNone);  // records observer latency
    return true;
  }
  if (s.token.cancelled()) return !s.Trip(StopReason::kCancelled);
  if (s.options.node_budget != 0 &&
      s.nodes.load(std::memory_order_relaxed) > s.options.node_budget) {
    return !s.Trip(StopReason::kNodeBudget);
  }
  if (s.deadline != Clock::time_point::max() && Clock::now() >= s.deadline) {
    return !s.Trip(StopReason::kDeadline);
  }
  return false;
}

bool Budget::ChargeMemory(uint64_t bytes) const {
  if (state_ == nullptr) return true;
  State& s = *state_;
  const uint64_t total =
      s.memory_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (s.CurrentReason() != StopReason::kNone) {
    return s.Trip(StopReason::kNone);
  }
  if (s.options.memory_budget_bytes != 0 &&
      total > s.options.memory_budget_bytes) {
    return s.Trip(StopReason::kMemoryBudget);
  }
  return true;
}

void Budget::ReleaseMemory(uint64_t bytes) const {
  if (state_ == nullptr) return;
  state_->memory_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

void Budget::Cancel() const {
  if (state_ == nullptr) return;
  state_->token.Cancel();
  state_->Trip(StopReason::kCancelled);
}

CancelToken Budget::token() const {
  if (state_ == nullptr) return CancelToken();
  return state_->token;
}

StopReason Budget::reason() const {
  if (state_ == nullptr) return StopReason::kNone;
  return state_->CurrentReason();
}

uint64_t Budget::nodes_charged() const {
  if (state_ == nullptr) return 0;
  return state_->nodes.load(std::memory_order_relaxed);
}

Status Budget::ToStatus() const {
  const StopReason why = reason();
  const State* s = state_.get();
  switch (why) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded(
          StrCat("deadline of ", s->options.deadline_ms, " ms exceeded after ",
                 nodes_charged(), " nodes"));
    case StopReason::kNodeBudget:
      return Status::ResourceExhausted(
          StrCat("node budget of ", s->options.node_budget,
                 " exhausted"));
    case StopReason::kMemoryBudget:
      return Status::ResourceExhausted(
          StrCat("memory budget of ", s->options.memory_budget_bytes,
                 " bytes exhausted"));
    case StopReason::kCancelled:
      return Status::DeadlineExceeded(
          StrCat("work cancelled after ", nodes_charged(), " nodes"));
  }
  return Status::Internal("unreachable budget state");
}

ScopedCallLimits::ScopedCallLimits(const CallLimits& limits)
    : limits_(limits) {
  if (!limits_.any()) return;  // empty overlay: keep the null fast path
  installed_ = true;
  previous_ = t_ambient_limits;
  if (previous_ != nullptr) {
    // Nested overlays tighten: the inner guard already sees the outer
    // limits merged in, so one thread-local read suffices in the ctor.
    limits_.deadline_ms =
        TightenLimit(limits_.deadline_ms, previous_->deadline_ms);
    limits_.node_budget =
        TightenLimit(limits_.node_budget, previous_->node_budget);
  }
  t_ambient_limits = &limits_;
}

ScopedCallLimits::~ScopedCallLimits() {
  if (installed_) t_ambient_limits = previous_;
}

const CallLimits* AmbientCallLimits() { return t_ambient_limits; }

}  // namespace limits
}  // namespace psc
