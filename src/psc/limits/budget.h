#ifndef PSC_LIMITS_BUDGET_H_
#define PSC_LIMITS_BUDGET_H_

/// \file
/// Unified resource limits for the solver stack.
///
/// Every solver in this library (consistency search, template enumeration,
/// the Section 5.1 counters, Monte-Carlo answering) is worst-case
/// exponential — Theorem 3.2 proves CONSISTENCY NP-complete — so a serving
/// deployment must be able to bound latency and degrade gracefully. A
/// `Budget` packages the three limits every hot path understands:
///
///  * a **wall-clock deadline** (steady_clock; immune to NTP jumps),
///  * an **explored-node budget** (combinations, count vectors, worlds,
///    samples — whatever "one unit of search work" means locally),
///  * an optional advisory **memory budget** checked by solvers that can
///    attribute their allocations (the DP counter's state maps).
///
/// plus a shared `CancelToken` so an external caller (RPC teardown, a
/// user's ^C) can revoke in-flight work.
///
/// Copies of a `Budget` share state: hand the same budget to every worker
/// thread and the first observer of an exceeded limit trips it for all of
/// them. A default-constructed budget is *unlimited* and its checks are a
/// single null test — solvers therefore thread budgets unconditionally and
/// pay nothing when no limit was configured, keeping limit-free runs
/// bit-identical to historical behaviour.
///
/// Cooperative protocol: hot loops call `Charge(n)` per unit of work and
/// unwind (returning `ToStatus()`, or a structured partial result where
/// one exists) as soon as it returns false. Coarse-grained loops whose
/// units are expensive call `Expired()` — an unconditional clock poll —
/// between units. Nothing is ever killed mid-flight.
///
/// Observability: tripping increments `limits.deadline_hits` /
/// `limits.budget_hits` / `limits.cancellations`, and every thread that
/// subsequently observes the trip records how stale its view was into the
/// `limits.cancel_latency_us` histogram.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "psc/util/status.h"

namespace psc {
namespace limits {

/// \brief Shared sticky cancellation flag.
///
/// Copies observe the same underlying state; `Cancel()` is sticky and
/// thread-safe. Workers poll `cancelled()` — one relaxed atomic load —
/// between units of work.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { state_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief Why a budget stopped admitting work.
enum class StopReason {
  kNone = 0,
  kDeadline,
  kNodeBudget,
  kMemoryBudget,
  kCancelled,
};

const char* StopReasonToString(StopReason reason);

/// \brief Limit configuration; zero always means "unlimited".
struct BudgetOptions {
  /// Wall-clock deadline in milliseconds from budget construction.
  int64_t deadline_ms = 0;
  /// Maximum units of search work (`Charge` calls, weighted).
  uint64_t node_budget = 0;
  /// Advisory memory ceiling for solvers that report via `ChargeMemory`.
  uint64_t memory_budget_bytes = 0;
  /// External cancellation source adopted as *the* budget token: a
  /// `Cancel()` on any copy of it trips the budget at its next check,
  /// exactly like `Budget::Cancel`. Lets one long-lived token (a server's
  /// shutdown drain, the CLI's ^C handler) revoke many per-call budgets
  /// built after it. Unset: the budget creates a private token.
  std::optional<CancelToken> cancel;
};

/// \brief Shared deadline / work-budget context. Cheap to copy (one
/// shared_ptr); copies share the node counter, the trip state and the
/// cancel token. See the file comment for the protocol.
class Budget {
 public:
  /// Unlimited budget: every check passes, at the cost of one null test.
  Budget() = default;

  explicit Budget(const BudgetOptions& options);

  static Budget Unlimited() { return Budget(); }
  static Budget WithDeadline(int64_t deadline_ms);
  static Budget WithNodeBudget(uint64_t nodes);

  /// True when any limit (or a cancel token) is attached.
  bool active() const { return state_ != nullptr; }

  /// \brief Charges `n` units of work; returns true while within budget.
  ///
  /// The node counter is exact; the wall clock is polled every
  /// `kDeadlineStride` charged units (and on every call with n >=
  /// kDeadlineStride), so deadline detection lags at most one stride of
  /// cheap work. Thread-safe; the first failing observer trips the shared
  /// state and cancels the token.
  bool Charge(uint64_t n = 1) const;

  /// \brief Polls every limit, including an unconditional clock read,
  /// without charging work. For coarse loops with expensive units.
  bool Expired() const;

  /// Advisory memory accounting; trips kMemoryBudget when the running
  /// total exceeds the configured ceiling. `Release` undoes a charge.
  bool ChargeMemory(uint64_t bytes) const;
  void ReleaseMemory(uint64_t bytes) const;

  /// Revokes all work sharing this budget (sticky).
  void Cancel() const;

  /// The shared token; observed by `exec::ParallelFor` between shards.
  /// Cancelling the token trips the budget at its next check and vice
  /// versa. Null-state (unlimited) budgets return a token that is never
  /// cancelled by the budget, but `Cancel()` on a *copy* of it still
  /// propagates to other copies of that same token.
  CancelToken token() const;

  /// Why the budget tripped (kNone while within limits).
  StopReason reason() const;

  /// Units charged so far.
  uint64_t nodes_charged() const;

  /// OK while within limits; otherwise `DeadlineExceeded` (deadline or
  /// cancellation) or `ResourceExhausted` (node / memory budget) with a
  /// message naming the bound reached.
  Status ToStatus() const;

  /// Wall-clock poll stride for `Charge`, in charged units.
  static constexpr uint64_t kDeadlineStride = 64;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// \name Ambient per-call limits
///
/// A thread-local overlay merged into every `Budget` constructed while it
/// is installed — the same design as `obs::Scope`: solver facades
/// (`QuerySystem`, `delta::IncrementalSystem`) build budgets from options
/// fixed at *creation* time, but a serving dispatcher admits each request
/// with its own deadline and node ceiling decided at *dispatch* time.
/// Installing a `ScopedCallLimits` around the call makes every budget the
/// call builds respect the tighter of the two configurations:
///
///   limits::CallLimits admitted;
///   admitted.deadline_ms = 50;           // this request's admission slice
///   {
///     limits::ScopedCallLimits guard(admitted);
///     system->CheckConsistency();        // per-call budgets now run with
///   }                                    // min(option, ambient) limits
///
/// Merging always tightens: a nonzero ambient deadline/node budget caps
/// the option value (min of the two nonzero values); it never loosens a
/// configured limit and never touches budgets built on other threads.
/// Workers reached through `exec` fan-out inherit the *budget*, which was
/// built on the installing thread, so no per-worker reinstallation is
/// needed. With empty limits the guard is a no-op and budget construction
/// keeps the historical zero-overhead null path.
/// @{

struct CallLimits {
  /// Wall-clock ceiling for budgets built under the guard; 0 = none.
  int64_t deadline_ms = 0;
  /// Explored-node ceiling for budgets built under the guard; 0 = none.
  uint64_t node_budget = 0;

  bool any() const { return deadline_ms > 0 || node_budget > 0; }
};

/// RAII installation on the current thread; nests (the previous overlay
/// is reinstalled on destruction). Empty limits install nothing.
class ScopedCallLimits {
 public:
  explicit ScopedCallLimits(const CallLimits& limits);
  ~ScopedCallLimits();

  ScopedCallLimits(const ScopedCallLimits&) = delete;
  ScopedCallLimits& operator=(const ScopedCallLimits&) = delete;

 private:
  bool installed_ = false;
  CallLimits limits_;
  const CallLimits* previous_ = nullptr;
};

/// The overlay installed on the calling thread, or nullptr. Facades use
/// this to keep building the zero-overhead null budget when neither their
/// options nor the ambient overlay configure any limit.
const CallLimits* AmbientCallLimits();

/// @}

}  // namespace limits
}  // namespace psc

#endif  // PSC_LIMITS_BUDGET_H_
