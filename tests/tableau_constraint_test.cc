// Covers constraints (U, Θ) and rep(𝒯) membership, including the paper's
// Example 4.1 / 4.2 template verbatim.

#include "psc/tableau/constraint.h"

#include "gtest/gtest.h"
#include "psc/tableau/database_template.h"

namespace psc {
namespace {

Term V(const std::string& name) { return Term::Var(name); }
Term CS(const char* v) { return Term::ConstStr(v); }

TEST(ConstraintTest, CompatibleChecksBindings) {
  Valuation sigma = {{"x", Value("b")}, {"y", Value("c")}};
  EXPECT_TRUE(Constraint::Compatible(sigma, {{"x", CS("b")}}));
  EXPECT_FALSE(Constraint::Compatible(sigma, {{"x", CS("c")}}));
  EXPECT_FALSE(Constraint::Compatible(sigma, {{"x", V("y")}}));
  sigma["y"] = Value("b");
  EXPECT_TRUE(Constraint::Compatible(sigma, {{"x", V("y")}}));
  // Unbound variables on either side cannot certify compatibility.
  EXPECT_FALSE(Constraint::Compatible(sigma, {{"z", CS("b")}}));
  EXPECT_FALSE(Constraint::Compatible(sigma, {{"x", V("unbound")}}));
  // The empty substitution is compatible with anything.
  EXPECT_TRUE(Constraint::Compatible(sigma, {}));
}

/// The paper's Example 4.1 template:
/// T1 = {R(a,x), S(b,c), S(b,c')}, T2 = {R(a',b'), S(b,c)},
/// C = {({R(a,x)}, {{x/b}, {x/b'}})}, with a,b,c,a',b',c' constants.
DatabaseTemplate Example41() {
  const Term a = CS("a");
  const Term b = CS("b");
  const Term c = CS("c");
  const Term a2 = CS("a'");
  const Term b2 = CS("b'");
  const Term c2 = CS("c'");
  Tableau t1 = {Atom("R", {a, V("x")}), Atom("S", {b, c}),
                Atom("S", {b, c2})};
  Tableau t2 = {Atom("R", {a2, b2}), Atom("S", {b, c})};
  Constraint constraint;
  constraint.pattern = {Atom("R", {a, V("x")})};
  constraint.options = {{{"x", b}}, {{"x", b2}}};
  return DatabaseTemplate({t1, t2}, {constraint});
}

Database Db(const std::vector<std::pair<const char*, std::vector<const char*>>>&
                facts) {
  Database db;
  for (const auto& [relation, strings] : facts) {
    Tuple tuple;
    for (const char* s : strings) tuple.push_back(Value(s));
    db.AddFact(relation, std::move(tuple));
  }
  return db;
}

TEST(Example42Test, ListedDatabasesAreRepresented) {
  const DatabaseTemplate t = Example41();
  // The three minimal databases of Example 4.2.
  EXPECT_TRUE(t.RepContains(
      Db({{"R", {"a", "b"}}, {"S", {"b", "c"}}, {"S", {"b", "c'"}}})));
  EXPECT_TRUE(t.RepContains(
      Db({{"R", {"a", "b'"}}, {"S", {"b", "c"}}, {"S", {"b", "c'"}}})));
  EXPECT_TRUE(t.RepContains(Db({{"R", {"a'", "b'"}}, {"S", {"b", "c"}}})));
}

TEST(Example42Test, SupersetSatisfyingConstraintIsRepresented) {
  // {R(a,b), R(a,b'), S(b,c), S(b,c')} ∈ rep(𝒯) per the paper.
  const DatabaseTemplate t = Example41();
  EXPECT_TRUE(t.RepContains(Db({{"R", {"a", "b"}},
                                {"R", {"a", "b'"}},
                                {"S", {"b", "c"}},
                                {"S", {"b", "c'"}}})));
}

TEST(Example42Test, ConstraintViolationExcludes) {
  // {R(a,c), R(a,b'), S(b,c), S(b,c')} ∉ rep(𝒯): R(a,c) embeds the
  // constraint pattern with x = c, incompatible with both substitutions.
  const DatabaseTemplate t = Example41();
  EXPECT_FALSE(t.RepContains(Db({{"R", {"a", "c"}},
                                 {"R", {"a", "b'"}},
                                 {"S", {"b", "c"}},
                                 {"S", {"b", "c'"}}})));
}

TEST(Example42Test, NoTableauEmbeddingExcludes) {
  const DatabaseTemplate t = Example41();
  EXPECT_FALSE(t.RepContains(Db({{"S", {"b", "c"}}})));
  EXPECT_FALSE(t.RepContains(Database()));
}

TEST(ConstraintTest, SatisfiedVacuouslyWhenPatternDoesNotEmbed) {
  Constraint constraint;
  constraint.pattern = {Atom("R", {V("x")})};
  constraint.options = {};  // nothing is compatible
  // No embedding → satisfied.
  EXPECT_TRUE(constraint.SatisfiedBy(Database()));
  // One embedding and empty Θ → violated.
  Database db;
  db.AddFact("R", {Value(int64_t{1})});
  EXPECT_FALSE(constraint.SatisfiedBy(db));
}

TEST(DatabaseTemplateTest, FreezeTableauProducesCanonicalDb) {
  Tableau tableau = {Atom("R", {V("x"), V("y")}), Atom("S", {V("y")})};
  DatabaseTemplate t({tableau}, {});
  const Database frozen = t.FreezeTableau(0);
  EXPECT_EQ(frozen.size(), 2u);
  // The frozen database embeds its own tableau.
  EXPECT_TRUE(HasEmbedding(tableau, frozen));
  // Distinct variables got distinct constants: R's two columns differ.
  const Relation& r = frozen.GetRelation("R");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NE((*r.begin())[0], (*r.begin())[1]);
}

TEST(DatabaseTemplateTest, ToStringListsParts) {
  const DatabaseTemplate t = Example41();
  const std::string text = t.ToString();
  EXPECT_NE(text.find("T1 ="), std::string::npos);
  EXPECT_NE(text.find("T2 ="), std::string::npos);
  EXPECT_NE(text.find("C: "), std::string::npos);
}

}  // namespace
}  // namespace psc
