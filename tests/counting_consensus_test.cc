#include "psc/counting/consensus.h"

#include <map>

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/source/measures.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

/// Oracle: average measured soundness/completeness over the brute-forced
/// world set.
struct OracleConsensus {
  std::vector<double> soundness;
  std::vector<double> completeness;
};

OracleConsensus Oracle(const SourceCollection& collection,
                       const std::vector<Value>& domain) {
  BruteForceWorldEnumerator enumerator(&collection, domain);
  OracleConsensus oracle;
  oracle.soundness.assign(collection.size(), 0.0);
  oracle.completeness.assign(collection.size(), 0.0);
  uint64_t worlds = 0;
  auto status = enumerator.ForEachPossibleWorld([&](const Database& world) {
    ++worlds;
    for (size_t i = 0; i < collection.size(); ++i) {
      auto measures = ComputeMeasures(collection.source(i), world);
      EXPECT_TRUE(measures.ok());
      oracle.soundness[i] += measures->soundness.ToDouble();
      oracle.completeness[i] += measures->completeness.ToDouble();
    }
    return true;
  });
  EXPECT_TRUE(status.ok());
  EXPECT_GT(worlds, 0u);
  for (size_t i = 0; i < collection.size(); ++i) {
    oracle.soundness[i] /= static_cast<double>(worlds);
    oracle.completeness[i] /= static_cast<double>(worlds);
  }
  return oracle;
}

void ExpectConsensusMatchesOracle(const SourceCollection& collection,
                                  const std::vector<Value>& domain) {
  auto instance = IdentityInstance::Create(collection, domain);
  ASSERT_TRUE(instance.ok());
  auto consensus = ComputeSourceConsensus(*instance);
  ASSERT_TRUE(consensus.ok()) << consensus.status().ToString();
  const OracleConsensus oracle = Oracle(collection, domain);
  ASSERT_EQ(consensus->size(), collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    EXPECT_NEAR((*consensus)[i].expected_soundness, oracle.soundness[i],
                1e-9)
        << collection.ToString();
    EXPECT_NEAR((*consensus)[i].expected_completeness,
                oracle.completeness[i], 1e-9)
        << collection.ToString();
  }
}

TEST(ConsensusTest, MatchesOracleOnOverlappingSources) {
  ExpectConsensusMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      IntDomain(5));
}

TEST(ConsensusTest, MatchesOracleWithZeroBounds) {
  ExpectConsensusMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")}),
      IntDomain(4));
}

TEST(ConsensusTest, ExactSourceHasExpectedSoundnessOne) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("Exact", {0, 1}, "1", "1"),
                           MakeUnarySource("Loose", {1, 2}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(4));
  ASSERT_TRUE(instance.ok());
  auto consensus = ComputeSourceConsensus(*instance);
  ASSERT_TRUE(consensus.ok());
  EXPECT_DOUBLE_EQ((*consensus)[0].expected_soundness, 1.0);
  EXPECT_DOUBLE_EQ((*consensus)[0].expected_completeness, 1.0);
  EXPECT_DOUBLE_EQ((*consensus)[0].soundness_slack, 0.0);
  // The exact source pins D = {0,1} (soundness forces ⊇, completeness
  // forces ⊆), so the loose source's soundness is exactly |{1}|/2.
  EXPECT_DOUBLE_EQ((*consensus)[1].expected_soundness, 0.5);
  EXPECT_DOUBLE_EQ((*consensus)[1].expected_completeness, 0.5);
}

TEST(ConsensusTest, CorroborationRaisesExpectedSoundness) {
  // A fully sound anchor vouches for fact 1. "Corroborated" shares that
  // fact; "Loner" claims two facts nobody backs. With otherwise zero
  // bounds, poss(S) = supersets of {1}: conf(1) = 1, every other fact 1/2,
  // so E[s_Corroborated] = 3/4 > E[s_Loner] = 1/2.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("Anchor", {1}, "0", "1"),
                           MakeUnarySource("Corroborated", {0, 1}, "0", "0"),
                           MakeUnarySource("Loner", {2, 3}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(5));
  ASSERT_TRUE(instance.ok());
  auto consensus = ComputeSourceConsensus(*instance);
  ASSERT_TRUE(consensus.ok());
  EXPECT_NEAR((*consensus)[1].expected_soundness, 0.75, 1e-12);
  EXPECT_NEAR((*consensus)[2].expected_soundness, 0.5, 1e-12);
  EXPECT_GT((*consensus)[1].soundness_slack,
            (*consensus)[2].soundness_slack);
}

TEST(ConsensusTest, InconsistentCollectionIsAnError) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(ComputeSourceConsensus(*instance).status().code(),
            StatusCode::kInconsistent);
}

TEST(ConsensusTest, EmptyExtensionIsVacuouslySound) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("Empty", {}, "0", "1"),
                           MakeUnarySource("Other", {0}, "0", "1")});
  auto instance = IdentityInstance::Create(collection, IntDomain(2));
  ASSERT_TRUE(instance.ok());
  auto consensus = ComputeSourceConsensus(*instance);
  ASSERT_TRUE(consensus.ok());
  EXPECT_DOUBLE_EQ((*consensus)[0].expected_soundness, 1.0);
}

}  // namespace
}  // namespace psc
