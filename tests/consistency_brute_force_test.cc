#include "psc/consistency/possible_worlds.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(BruteForceTest, CountsExampleCollection) {
  // Example 5.1 with m = 1: 2m+5 = 7 worlds.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(4));
  auto count = enumerator.CountPossibleWorlds();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 7u);
}

TEST(BruteForceTest, EveryEnumeratedWorldSatisfiesBounds) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(4));
  ASSERT_TRUE(enumerator
                  .ForEachPossibleWorld([&](const Database& world) {
                    auto ok = collection.IsPossibleWorld(world);
                    EXPECT_TRUE(ok.ok() && *ok);
                    return true;
                  })
                  .ok());
}

TEST(BruteForceTest, CollectRespectsCap) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")});
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(5));
  EXPECT_EQ(enumerator.CollectPossibleWorlds(/*max_worlds=*/3)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  auto all = enumerator.CollectPossibleWorlds();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 32u);
}

TEST(BruteForceTest, UniverseCapEnforced) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")});
  BruteForceWorldEnumerator::Options options;
  options.max_universe_bits = 4;
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(10), options);
  EXPECT_EQ(enumerator.CountPossibleWorlds().status().code(),
            StatusCode::kResourceExhausted);
}

TEST(BruteForceTest, MultiRelationSchema) {
  // A join view over E and N; brute force handles arbitrary schemas.
  auto view = testing::Q("V(x) <- E(x, y), N(y)");
  Relation extension = {testing::U(0)};
  auto source = SourceDescriptor::Create("J", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  BruteForceWorldEnumerator enumerator(&*collection, IntDomain(2));
  auto count = enumerator.CountPossibleWorlds();
  ASSERT_TRUE(count.ok());
  // Worlds where 0 ∈ V(D): E(0,y) and N(y) for some y. Verified > 0 and
  // < 2^6 (both trivial bounds wrong only if evaluation is broken).
  EXPECT_GT(*count, 0u);
  EXPECT_LT(*count, 64u);
}

TEST(BruteForceTest, EarlyStopPropagates) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")});
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(3));
  int seen = 0;
  auto completed = enumerator.ForEachPossibleWorld([&](const Database&) {
    return ++seen < 2;
  });
  ASSERT_TRUE(completed.ok());
  EXPECT_FALSE(*completed);
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace psc
