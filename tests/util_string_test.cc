#include "psc/util/string_util.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"", ""}, "-"), "-");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string text = "alpha|beta||gamma";
  EXPECT_EQ(Join(Split(text, '|'), "|"), text);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StringUtilTest, StrCatMixedTypes) {
  EXPECT_EQ(StrCat("n=", 3, " ratio=", 0.5, " flag=", true), "n=3 ratio=0.5 flag=1");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

}  // namespace
}  // namespace psc
