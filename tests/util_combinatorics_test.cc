#include "psc/util/combinatorics.h"

#include <set>

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(BinomialTableTest, SmallValues) {
  BinomialTable table;
  EXPECT_EQ(table.Choose(0, 0).ToUint64(), 1u);
  EXPECT_EQ(table.Choose(5, 0).ToUint64(), 1u);
  EXPECT_EQ(table.Choose(5, 5).ToUint64(), 1u);
  EXPECT_EQ(table.Choose(5, 2).ToUint64(), 10u);
  EXPECT_EQ(table.Choose(10, 3).ToUint64(), 120u);
  EXPECT_TRUE(table.Choose(3, 4).IsZero());
}

TEST(BinomialTableTest, PascalIdentityHoldsForLargeRows) {
  BinomialTable table;
  for (int64_t n = 1; n <= 80; n += 13) {
    for (int64_t k = 1; k < n; k += 7) {
      EXPECT_EQ(table.Choose(n, k),
                table.Choose(n - 1, k - 1) + table.Choose(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTableTest, RowSumsArePowersOfTwo) {
  BinomialTable table;
  for (int64_t n = 0; n <= 40; n += 8) {
    BigInt sum;
    for (int64_t k = 0; k <= n; ++k) sum += table.Choose(n, k);
    BigInt expected(1);
    for (int64_t i = 0; i < n; ++i) expected = expected * BigInt(2);
    EXPECT_EQ(sum, expected) << "n=" << n;
  }
}

TEST(BinomialTableTest, CentralBinomialBeyond64Bits) {
  BinomialTable table;
  // C(100, 50) is a well-known 30-digit constant.
  EXPECT_EQ(table.Choose(100, 50).ToString(),
            "100891344545564193334812497256");
}

TEST(SubsetEnumerationTest, FixedSizeSubsetsAreExhaustiveAndSorted) {
  std::set<std::vector<int64_t>> seen;
  ForEachSubsetOfSize(5, 3, [&](const std::vector<int64_t>& subset) {
    EXPECT_EQ(subset.size(), 3u);
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    seen.insert(subset);
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);  // C(5,3)
}

TEST(SubsetEnumerationTest, EdgeSizes) {
  int count = 0;
  ForEachSubsetOfSize(4, 0, [&](const std::vector<int64_t>& subset) {
    EXPECT_TRUE(subset.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  ForEachSubsetOfSize(4, 4, [&](const std::vector<int64_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  ForEachSubsetOfSize(4, 5, [&](const std::vector<int64_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(SubsetEnumerationTest, EarlyStopPropagates) {
  int count = 0;
  const bool completed =
      ForEachSubsetOfSize(6, 2, [&](const std::vector<int64_t>&) {
        return ++count < 4;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 4);
}

TEST(SubsetEnumerationTest, AtLeastThresholdCountsMatchBinomials) {
  BinomialTable table;
  for (int64_t n = 0; n <= 8; ++n) {
    for (int64_t min_size = 0; min_size <= n; ++min_size) {
      uint64_t count = 0;
      ForEachSubsetAtLeast(n, min_size, [&](uint64_t) {
        ++count;
        return true;
      });
      BigInt expected;
      for (int64_t k = min_size; k <= n; ++k) expected += table.Choose(n, k);
      EXPECT_EQ(count, expected.ToUint64()) << "n=" << n << " min=" << min_size;
    }
  }
}

TEST(SubsetEnumerationTest, AtLeastRespectsMask) {
  ForEachSubsetAtLeast(5, 3, [&](uint64_t mask) {
    EXPECT_GE(__builtin_popcountll(mask), 3);
    EXPECT_LT(mask, uint64_t{1} << 5);
    return true;
  });
}

}  // namespace
}  // namespace psc
