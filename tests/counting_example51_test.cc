// Reproduction of Example 5.1 of the paper: two sources
//   S1 = ⟨Id_R, {R(a), R(b)}, 0.5, 0.5⟩
//   S2 = ⟨Id_R, {R(b), R(c)}, 0.5, 0.5⟩
// over dom = {a, b, c, d₁, …, d_m}.
//
// The paper reports confidence(R(b)) = (2m+2)/(2m+3),
// confidence(R(a)) = confidence(R(c)) = (m+2)/(2m+3) and
// confidence(R(dᵢ)) = 2/(2m+3). Careful re-derivation (confirmed here by
// three independent implementations: the signature counter, the 2^N
// linear-system enumeration, and the measure-based brute-force world
// enumerator) gives |poss(S)| = 2m+5 with
//   confidence(R(b))  = (2m+4)/(2m+5)
//   confidence(R(a))  = confidence(R(c)) = (m+3)/(2m+5)
//   confidence(R(dᵢ)) = 2/(2m+5),
// i.e. the paper's closed forms miss the two worlds {a,b} and {b,c}
// (both satisfy every ≥-bound). The asymptotic behaviour the paper
// emphasises — conf(b) → 1, conf(a) = conf(c) → 1/2, conf(dᵢ) → 0 —
// is identical. EXPERIMENTS.md E1 records this discrepancy.

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/counting/confidence.h"
#include "psc/counting/linear_system.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

// a = 0, b = 1, c = 2, d_i = 3 … m+2.
SourceCollection Example51Collection() {
  return MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                              MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
}

std::vector<Value> Example51Domain(int64_t m) {
  return testing::IntDomain(3 + m);
}

class Example51Test : public ::testing::TestWithParam<int64_t> {};

TEST_P(Example51Test, CounterMatchesDerivedClosedForms) {
  const int64_t m = GetParam();
  auto instance = IdentityInstance::Create(Example51Collection(),
                                           Example51Domain(m));
  ASSERT_TRUE(instance.ok());
  auto table = ComputeBaseFactConfidences(*instance);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  EXPECT_EQ(table->world_count.ToUint64(),
            static_cast<uint64_t>(2 * m + 5));

  const double denom = static_cast<double>(2 * m + 5);
  auto conf = [&](int64_t v) {
    auto c = table->ConfidenceOf(testing::U(v));
    EXPECT_TRUE(c.ok());
    return *c;
  };
  EXPECT_NEAR(conf(0), (m + 3) / denom, 1e-12);          // a
  EXPECT_NEAR(conf(1), (2 * m + 4) / denom, 1e-12);      // b
  EXPECT_NEAR(conf(2), (m + 3) / denom, 1e-12);          // c
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_NEAR(conf(3 + i), 2 / denom, 1e-12);          // d_i
  }
}

TEST_P(Example51Test, LinearSystemOracleAgrees) {
  const int64_t m = GetParam();
  if (m > 10) GTEST_SKIP() << "2^N oracle too large";
  auto instance = IdentityInstance::Create(Example51Collection(),
                                           Example51Domain(m));
  ASSERT_TRUE(instance.ok());
  auto system = LinearSystem::FromIdentityInstance(*instance);
  ASSERT_TRUE(system.ok());
  auto total = system->CountSolutionsBruteForce();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->ToUint64(), static_cast<uint64_t>(2 * m + 5));
  // b is variable index 1 in the universe enumeration.
  auto with_b = system->CountSolutionsWithFixed(1, true);
  ASSERT_TRUE(with_b.ok());
  EXPECT_EQ(with_b->ToUint64(), static_cast<uint64_t>(2 * m + 4));
}

TEST_P(Example51Test, MeasureBasedEnumeratorAgrees) {
  const int64_t m = GetParam();
  if (m > 8) GTEST_SKIP() << "2^N oracle too large";
  const SourceCollection collection = Example51Collection();
  BruteForceWorldEnumerator enumerator(&collection, Example51Domain(m));
  auto count = enumerator.CountPossibleWorlds();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, static_cast<uint64_t>(2 * m + 5));
}

INSTANTIATE_TEST_SUITE_P(DomainSweep, Example51Test,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 16, 64));

TEST(Example51AsymptoticsTest, LimitsMatchThePaper) {
  // The paper's qualitative claim: as m → ∞, conf(b) ≈ 1,
  // conf(a) = conf(c) ≈ 1/2, conf(dᵢ) ≈ 0.
  const int64_t m = 2000;
  auto instance = IdentityInstance::Create(Example51Collection(),
                                           Example51Domain(m));
  ASSERT_TRUE(instance.ok());
  auto table = ComputeBaseFactConfidences(*instance);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(*table->ConfidenceOf(testing::U(1)), 1.0, 1e-3);
  EXPECT_NEAR(*table->ConfidenceOf(testing::U(0)), 0.5, 1e-3);
  EXPECT_NEAR(*table->ConfidenceOf(testing::U(3)), 0.0, 1e-3);
}

TEST(Example51OrderingTest, SharedFactAlwaysMostConfident) {
  // b (in both sources) beats a and c (one source each) beats d (none).
  for (const int64_t m : {1, 4, 10}) {
    auto instance = IdentityInstance::Create(Example51Collection(),
                                             Example51Domain(m));
    ASSERT_TRUE(instance.ok());
    auto table = ComputeBaseFactConfidences(*instance);
    ASSERT_TRUE(table.ok());
    const double b = *table->ConfidenceOf(testing::U(1));
    const double a = *table->ConfidenceOf(testing::U(0));
    const double d = *table->ConfidenceOf(testing::U(3));
    EXPECT_GT(b, a);
    EXPECT_GT(a, d);
    EXPECT_GT(d, 0.0);
  }
}

}  // namespace
}  // namespace psc
