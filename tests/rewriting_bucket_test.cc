#include "psc/rewriting/bucket_rewriter.h"

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/rewriting/containment.h"
#include "psc/workload/ghcn.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::Q;
using testing::U;

SourceDescriptor MakeSource(const std::string& name,
                            const std::string& view_text, Relation extension,
                            const std::string& s = "1") {
  auto view = Q(view_text);
  auto source = SourceDescriptor::Create(name, view, std::move(extension),
                                         Rational::Zero(),
                                         *Rational::Parse(s));
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return std::move(source).ValueOrDie();
}

TEST(BucketRewriterTest, IdentityViewCoversIdentityQuery) {
  auto collection = SourceCollection::Create(
      {MakeSource("S1", "V(x) <- R(x)", {U(1), U(2)})});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  auto rewritings = rewriter.Rewrite(Q("Ans(x) <- R(x)"));
  ASSERT_TRUE(rewritings.ok()) << rewritings.status().ToString();
  ASSERT_EQ(rewritings->size(), 1u);
  EXPECT_EQ((*rewritings)[0].sources, std::vector<size_t>{0});
  auto answer = rewriter.EvaluateOverExtensions((*rewritings)[0]);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer, (Relation{U(1), U(2)}));
}

TEST(BucketRewriterTest, UncoverableSubgoalYieldsNoRewritings) {
  auto collection = SourceCollection::Create(
      {MakeSource("S1", "V(x) <- R(x)", {U(1)})});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  auto rewritings = rewriter.Rewrite(Q("Ans(x) <- Other(x)"));
  ASSERT_TRUE(rewritings.ok());
  EXPECT_TRUE(rewritings->empty());
}

TEST(BucketRewriterTest, ExistentialViewVariableCannotExposeJoin) {
  // View projects away the join column: V(x) ← E(x, y). The query joins
  // on y, so the view cannot answer it.
  auto collection = SourceCollection::Create(
      {MakeSource("S1", "V(x) <- E(x, y)", {U(1)})});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  auto rewritings = rewriter.Rewrite(Q("Ans(x, z) <- E(x, y), E(y, z)"));
  ASSERT_TRUE(rewritings.ok());
  EXPECT_TRUE(rewritings->empty());
  // A view exposing both columns can.
  auto full = SourceCollection::Create(
      {MakeSource("S2", "W(x, y) <- E(x, y)",
                  {Tuple{Value(int64_t{1}), Value(int64_t{2})},
                   Tuple{Value(int64_t{2}), Value(int64_t{3})}})});
  ASSERT_TRUE(full.ok());
  BucketRewriter full_rewriter(&*full);
  auto full_rewritings =
      full_rewriter.Rewrite(Q("Ans(x, z) <- E(x, y), E(y, z)"));
  ASSERT_TRUE(full_rewritings.ok());
  ASSERT_EQ(full_rewritings->size(), 1u);
  auto answer =
      full_rewriter.EvaluateOverExtensions((*full_rewritings)[0]);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer,
            (Relation{Tuple{Value(int64_t{1}), Value(int64_t{3})}}));
}

TEST(BucketRewriterTest, ExpansionsAreAlwaysContained) {
  auto collection = SourceCollection::Create({
      MakeSource("S1", "V1(x, y) <- E(x, y)", {}),
      MakeSource("S2", "V2(y) <- N(y)", {}),
      MakeSource("S3", "V3(x) <- E(x, y), N(y)", {}),
  });
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  const ConjunctiveQuery query = Q("Ans(x) <- E(x, y), N(y)");
  auto rewritings = rewriter.Rewrite(query);
  ASSERT_TRUE(rewritings.ok());
  EXPECT_GE(rewritings->size(), 1u);
  for (const Rewriting& rewriting : *rewritings) {
    auto contained = IsContainedIn(rewriting.expansion, query);
    ASSERT_TRUE(contained.ok());
    EXPECT_TRUE(*contained) << rewriting.expansion.ToString();
  }
}

TEST(BucketRewriterTest, ViewWithBuiltinRewritesMatchingQuery) {
  // The climatology case: view and query share After(y, 1900) verbatim.
  auto collection = SourceCollection::Create({MakeSource(
      "S1",
      "V1(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)",
      {Tuple{Value(int64_t{100}), Value(int64_t{1990}), Value(int64_t{1}),
             Value(int64_t{-105})}})});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  const ConjunctiveQuery query = Q(
      "Ans(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)");
  auto answer = rewriter.AnswerUsingViews(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ(*answer->begin(),
            (Tuple{Value(int64_t{100}), Value(int64_t{1990}),
                   Value(int64_t{1}), Value(int64_t{-105})}));
  // A query *without* the built-in is more general and is still
  // answerable by the same (more specific) view.
  auto general = rewriter.AnswerUsingViews(
      Q("Ans(s, y, m, v) <- Temperature(s, y, m, v), "
        "Station(s, lat, lon, \"Canada\")"));
  ASSERT_TRUE(general.ok());
  EXPECT_EQ(general->size(), 1u);
}

TEST(BucketRewriterTest, SoundViewsGiveCertainAnswers) {
  // Property: with fully sound sources, every view-based answer lies in
  // Q(D) for every possible world D.
  auto collection = SourceCollection::Create({
      MakeSource("S1", "V1(x) <- E(x, y), N(y)", {U(0)}, "1"),
      MakeSource("S2", "V2(x, y) <- E(x, y)",
                 {Tuple{Value(int64_t{0}), Value(int64_t{1})}}, "1"),
  });
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  const ConjunctiveQuery query = Q("Ans(x) <- E(x, y)");
  auto answer = rewriter.AnswerUsingViews(query);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->count(U(0)), 1u);

  BruteForceWorldEnumerator oracle(&*collection, testing::IntDomain(3));
  uint64_t worlds = 0;
  ASSERT_TRUE(oracle
                  .ForEachPossibleWorld([&](const Database& world) {
                    ++worlds;
                    auto in_world = query.Evaluate(world);
                    EXPECT_TRUE(in_world.ok());
                    for (const Tuple& tuple : *answer) {
                      EXPECT_EQ(in_world->count(tuple), 1u)
                          << world.ToString();
                    }
                    return true;
                  })
                  .ok());
  EXPECT_GT(worlds, 0u);
}

TEST(BucketRewriterTest, GhcnEndToEnd) {
  GhcnConfig config;
  config.num_stations = 6;
  config.start_year = 1990;
  config.end_year = 1990;
  GhcnGenerator generator(config, 77);
  const GhcnWorld world = generator.GenerateTruth();
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada", 1900, 1.0,
                                        0.0);  // sound & complete
  ASSERT_TRUE(s0.ok() && s1.ok());
  auto collection = SourceCollection::Create({*s0, *s1});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  const ConjunctiveQuery query = Q(
      "Ans(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)");
  auto answer = rewriter.AnswerUsingViews(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  // The sound+complete Canadian source answers the query exactly.
  auto truth_answer = query.Evaluate(world.truth);
  ASSERT_TRUE(truth_answer.ok());
  EXPECT_EQ(*answer, *truth_answer);
  EXPECT_FALSE(answer->empty());
}

TEST(BucketRewriterTest, NoRelationalSubgoalUnimplemented) {
  auto collection = SourceCollection::Create(
      {MakeSource("S1", "V(x) <- R(x)", {U(1)})});
  ASSERT_TRUE(collection.ok());
  BucketRewriter rewriter(&*collection);
  // Cannot even construct such a query through the validated API, so use
  // the rewriter contract on an empty collection instead: a query over a
  // relation no view mentions yields zero rewritings (covered above);
  // here just confirm AnswerUsingViews degrades to the empty answer.
  auto answer = rewriter.AnswerUsingViews(Q("Ans(x) <- Missing(x)"));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
}

}  // namespace
}  // namespace psc
