#include "psc/relational/value.h"

#include <set>

#include "gtest/gtest.h"
#include "psc/relational/term.h"

namespace psc {
namespace {

TEST(ValueTest, Kinds) {
  Value i(int64_t{42});
  Value s("hello");
  EXPECT_TRUE(i.is_int());
  EXPECT_FALSE(i.is_string());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value(int64_t{1}), Value("1"));  // kinds never compare equal
}

TEST(ValueTest, TotalOrderIntsBeforeStrings) {
  EXPECT_LT(Value(int64_t{5}), Value(int64_t{6}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(int64_t{1000000}), Value("0"));  // every int < every string
  EXPECT_GT(Value(""), Value(int64_t{-1}));
}

TEST(ValueTest, OrderingIsStrictWeak) {
  const std::vector<Value> values = {Value(int64_t{3}), Value(int64_t{-2}),
                                     Value("z"), Value("a"),
                                     Value(int64_t{3})};
  std::set<Value> sorted(values.begin(), values.end());
  EXPECT_EQ(sorted.size(), 4u);
  auto it = sorted.begin();
  EXPECT_EQ(*it++, Value(int64_t{-2}));
  EXPECT_EQ(*it++, Value(int64_t{3}));
  EXPECT_EQ(*it++, Value("a"));
  EXPECT_EQ(*it++, Value("z"));
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
  EXPECT_EQ(Value("Canada").ToString(), "\"Canada\"");
}

TEST(ValueTest, ToStringEscapesSpecials) {
  EXPECT_EQ(Value("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value("back\\slash").ToString(), "\"back\\\\slash\"");
  EXPECT_EQ(Value("line\nbreak").ToString(), "\"line\\nbreak\"");
  EXPECT_EQ(Value("tab\there").ToString(), "\"tab\\there\"");
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(TupleToString({}), "()");
  EXPECT_EQ(TupleToString({Value(int64_t{1})}), "(1)");
  EXPECT_EQ(TupleToString({Value(int64_t{1}), Value("x")}), "(1, \"x\")");
}

TEST(TupleTest, LexicographicComparison) {
  Tuple a = {Value(int64_t{1}), Value(int64_t{2})};
  Tuple b = {Value(int64_t{1}), Value(int64_t{3})};
  Tuple c = {Value(int64_t{1})};
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // prefix sorts first
}

TEST(TermTest, VariableAndConstant) {
  Term var = Term::Var("x");
  Term constant = Term::ConstInt(5);
  Term str = Term::ConstStr("s");
  EXPECT_TRUE(var.is_variable());
  EXPECT_FALSE(var.is_constant());
  EXPECT_TRUE(constant.is_constant());
  EXPECT_EQ(var.var_name(), "x");
  EXPECT_EQ(constant.constant().AsInt(), 5);
  EXPECT_EQ(str.constant().AsString(), "s");
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Var("x"), Term::Var("x"));
  EXPECT_NE(Term::Var("x"), Term::Var("y"));
  EXPECT_NE(Term::Var("x"), Term::ConstStr("x"));
  EXPECT_EQ(Term::ConstInt(1), Term::ConstInt(1));
}

TEST(TermTest, OrderVariablesFirst) {
  EXPECT_LT(Term::Var("z"), Term::ConstInt(0));
  EXPECT_LT(Term::Var("a"), Term::Var("b"));
  EXPECT_LT(Term::ConstInt(1), Term::ConstInt(2));
}

TEST(TermTest, ToString) {
  EXPECT_EQ(Term::Var("year").ToString(), "year");
  EXPECT_EQ(Term::ConstInt(1900).ToString(), "1900");
  EXPECT_EQ(Term::ConstStr("US").ToString(), "\"US\"");
}

}  // namespace
}  // namespace psc
