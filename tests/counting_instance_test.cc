#include "psc/counting/identity_instance.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

SourceCollection TwoSourceOverlap() {
  // v1 = {0,1}, v2 = {1,2}, c = s = 1/2 — the Example 5.1 shape.
  return MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                              MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
}

TEST(IdentityInstanceTest, CreateOverDomainBuildsFullUniverse) {
  auto instance = IdentityInstance::Create(TwoSourceOverlap(), IntDomain(5));
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->relation(), "R");
  EXPECT_EQ(instance->arity(), 1u);
  EXPECT_EQ(instance->universe().size(), 5u);
  EXPECT_EQ(instance->num_sources(), 2u);
}

TEST(IdentityInstanceTest, GroupsPartitionBySignature) {
  auto instance = IdentityInstance::Create(TwoSourceOverlap(), IntDomain(5));
  ASSERT_TRUE(instance.ok());
  // Signatures: {} (facts 3,4), {S1} (0), {S1,S2} (1), {S2} (2).
  ASSERT_EQ(instance->groups().size(), 4u);
  int64_t total = 0;
  for (const auto& group : instance->groups()) total += group.size;
  EXPECT_EQ(total, 5);
  // Signature 0 group holds the two out-of-extension facts.
  EXPECT_EQ(instance->groups()[0].signature, 0u);
  EXPECT_EQ(instance->groups()[0].size, 2);
  // Group lookup agrees with membership.
  auto g1 = instance->GroupIndexOf(U(1));
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(instance->groups()[*g1].signature, 0b11u);
}

TEST(IdentityInstanceTest, CreateOverExtensionsOmitsOutsideFacts) {
  auto instance = IdentityInstance::CreateOverExtensions(TwoSourceOverlap());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->universe().size(), 3u);
  EXPECT_EQ(instance->groups().size(), 3u);  // no signature-0 group
  EXPECT_EQ(instance->GroupIndexOf(U(7)).status().code(),
            StatusCode::kNotFound);
}

TEST(IdentityInstanceTest, DomainMustCoverExtensions) {
  auto instance = IdentityInstance::Create(TwoSourceOverlap(), IntDomain(2));
  EXPECT_EQ(instance.status().code(), StatusCode::kInvalidArgument);
}

TEST(IdentityInstanceTest, NonIdentityViewRejected) {
  auto proj = testing::Q("V(x) <- R2(x, y)");
  auto source = SourceDescriptor::Create("P", proj, {}, Rational::One(),
                                         Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(IdentityInstance::Create(*collection, IntDomain(2))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(IdentityInstanceTest, EmptyCollectionRejected) {
  auto empty = SourceCollection::Create({});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(IdentityInstance::Create(*empty, IntDomain(2)).ok());
}

TEST(IdentityInstanceTest, ConstraintPrecomputation) {
  auto collection = MakeUnaryCollection(
      {MakeUnarySource("S", {0, 1, 2}, "2/3", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(4));
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance->constraints().size(), 1u);
  const auto& constraint = instance->constraints()[0];
  EXPECT_EQ(constraint.extension_size, 3);
  EXPECT_EQ(constraint.min_sound, 2);  // ⌈3/2⌉
  EXPECT_EQ(constraint.completeness, Rational(2, 3));
}

TEST(IdentityInstanceTest, CheckCountsMatchesSemantics) {
  // v = {0,1}, c = s = 1/2 over a 3-fact universe {0,1,2}.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(3));
  ASSERT_TRUE(instance.ok());
  // Groups in signature order: {} = {2}, {S} = {0,1}.
  ASSERT_EQ(instance->groups().size(), 2u);
  ASSERT_EQ(instance->groups()[0].signature, 0u);
  // counts = (outside, inside):
  EXPECT_FALSE(instance->CheckCounts({0, 0}));  // soundness needs 1
  EXPECT_TRUE(instance->CheckCounts({0, 1}));
  EXPECT_TRUE(instance->CheckCounts({1, 1}));   // 1 ≥ (1/2)·2 ✓
  EXPECT_TRUE(instance->CheckCounts({0, 2}));
  EXPECT_TRUE(instance->CheckCounts({1, 2}));
  EXPECT_FALSE(instance->CheckCounts({1, 0}));  // soundness 0
}

TEST(IdentityInstanceTest, CheckCountsVacuousWhenEmptyWorldAllowed) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(3));
  ASSERT_TRUE(instance.ok());
  // Empty world: soundness threshold 0 ✓, completeness vacuous ✓.
  EXPECT_TRUE(instance->CheckCounts({0, 0}));
  // Any fact outside v breaks completeness 1.
  EXPECT_FALSE(instance->CheckCounts({1, 0}));
  EXPECT_FALSE(instance->CheckCounts({1, 2}));
  EXPECT_TRUE(instance->CheckCounts({0, 2}));
}

TEST(IdentityInstanceTest, TooManySourcesRejected) {
  std::vector<SourceDescriptor> sources;
  for (int i = 0; i < 64; ++i) {
    sources.push_back(
        MakeUnarySource("S" + std::to_string(i), {0}, "0", "0"));
  }
  auto collection = SourceCollection::Create(std::move(sources));
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(IdentityInstance::CreateOverExtensions(*collection)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace psc
