#include "psc/util/random.h"

#include <set>

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = rng.UniformInt(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int64_t> sample = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const int64_t value : sample) {
      EXPECT_GE(value, 0);
      EXPECT_LT(value, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(7);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  const std::vector<int64_t> all = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(all, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementIsUnbiasedish) {
  // Every element of {0..9} should be picked roughly k/n of the time.
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (const int64_t v : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  for (const int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.3, 0.05);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_TRUE(std::is_permutation(items.begin(), items.end(),
                                  shuffled.begin()));
}

}  // namespace
}  // namespace psc
