// End-to-end check that the solver stack actually feeds the metrics
// registry: running the general consistency checker on a satisfiable
// collection must leave search-effort counters behind, and the captured
// run report must validate against the schema.

#include "gtest/gtest.h"
#include "psc/consistency/general_consistency.h"
#include "psc/obs/metrics.h"
#include "psc/obs/report.h"
#include "psc/obs/trace.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
};

#if PSC_OBS_ENABLED

TEST_F(ObsIntegrationTest, ConsistencyCheckExpandsNodes) {
  // Known-satisfiable identity collection: {1} (or {0,1,2} etc.) is a
  // possible world for both sources at bounds 1/2.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  auto report = GeneralConsistencyChecker().Check(collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);

  const obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  EXPECT_EQ(metrics.CounterValue("consistency.checks"), 1u);
  EXPECT_GT(metrics.CounterValue("consistency.nodes_expanded"), 0u);
}

TEST_F(ObsIntegrationTest, ConsistencyCheckTimesItsSpan) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1/2")});
  ASSERT_TRUE(GeneralConsistencyChecker().Check(collection).ok());
  // The consistency.check span always times its scope, traced or not.
  EXPECT_GE(
      obs::GlobalMetrics().GetHistogram("consistency.check").count(), 1u);
}

TEST_F(ObsIntegrationTest, TracedRunBuffersSolverSpans) {
  obs::Options options;
  options.trace_enabled = true;
  obs::SetOptions(options);
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  ASSERT_TRUE(GeneralConsistencyChecker().Check(collection).ok());
  const std::vector<obs::SpanRecord> spans = obs::GlobalTrace().Snapshot();
  bool found_check = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "consistency.check") found_check = true;
  }
  EXPECT_TRUE(found_check);
}

TEST_F(ObsIntegrationTest, CapturedSolverReportValidates) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  ASSERT_TRUE(GeneralConsistencyChecker().Check(collection).ok());
  const std::string json = obs::RunReport::Capture().ToJson();
  const Status status = obs::ValidateRunReportJson(json);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(json.find("consistency.checks"), std::string::npos);
}

TEST_F(ObsIntegrationTest, RuntimeSwitchSilencesSolverCounters) {
  obs::Options off;
  off.enabled = false;
  obs::SetOptions(off);
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  ASSERT_TRUE(GeneralConsistencyChecker().Check(collection).ok());
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("consistency.checks"), 0u);
  EXPECT_EQ(
      obs::GlobalMetrics().CounterValue("consistency.nodes_expanded"), 0u);
}

#else  // PSC_OBS_ENABLED

TEST_F(ObsIntegrationTest, SolverRunsLeaveNoCountersWhenCompiledOut) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  auto report = GeneralConsistencyChecker().Check(collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("consistency.checks"), 0u);
  EXPECT_EQ(
      obs::GlobalMetrics().CounterValue("consistency.nodes_expanded"), 0u);
}

#endif  // PSC_OBS_ENABLED

}  // namespace
}  // namespace psc
