#include "psc/consistency/identity_consistency.h"

#include "gtest/gtest.h"
#include "psc/source/measures.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(IdentityConsistencyTest, ConsistentCollectionYieldsValidWitness) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  ASSERT_TRUE(report->witness.has_value());
  auto valid = collection.IsPossibleWorld(*report->witness);
  ASSERT_TRUE(valid.ok());
  EXPECT_TRUE(*valid) << report->witness->ToString();
}

TEST(IdentityConsistencyTest, ContradictoryExactSources) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  EXPECT_FALSE(report->witness.has_value());
}

TEST(IdentityConsistencyTest, SoundnessVsCompletenessTension) {
  // S1 claims full completeness on {0}: every world ⊆ {0}.
  // S2 claims full soundness on {1}: every world ⊇ {1}. Contradiction.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "0"),
                           MakeUnarySource("S2", {1}, "0", "1")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
}

TEST(IdentityConsistencyTest, RelaxedBoundsRestoreConsistency) {
  // Same shape but S1 only claims completeness 1/2: {0,1} works.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1/2", "0"),
                           MakeUnarySource("S2", {1}, "0", "1")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

TEST(IdentityConsistencyTest, EmptyExtensionWithFullBoundsIsConsistent) {
  // v = ∅ is vacuously sound; full completeness forces φ(D) = ∅,
  // i.e. the empty world — which is fine.
  auto collection = MakeUnaryCollection({MakeUnarySource("S", {}, "1", "1")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  EXPECT_TRUE(report->witness->empty());
}

TEST(IdentityConsistencyTest, WitnessStaysInsideUnionOfExtensions) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {3, 4}, "1/2", "1/2"),
                           MakeUnarySource("S2", {4, 5}, "1/2", "1/2")});
  auto report = CheckIdentityConsistency(collection);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->witness.has_value());
  for (const Fact& fact : report->witness->AllFacts()) {
    const int64_t v = fact.tuple()[0].AsInt();
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(IdentityConsistencyTest, BudgetExhaustionSurfaces) {
  // Many singleton groups with s = 0 explode the shape space; a tiny
  // budget must be reported, not silently mis-answered.
  std::vector<SourceDescriptor> sources;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(MakeUnarySource("S" + std::to_string(i),
                                      {2 * i, 2 * i + 1}, "1/2", "0"));
  }
  auto collection = MakeUnaryCollection(std::move(sources));
  auto report = CheckIdentityConsistency(collection, /*max_shapes=*/0);
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(IdentityConsistencyTest, MatchesSemanticDefinitionOnSweep) {
  // For a parameterized family, consistency flips exactly where the
  // semantics say: v1 = {0..k-1} fully sound, v2 = {0} fully complete
  // → consistent iff k ≤ 1... plus the soundness threshold scaling.
  for (int k = 1; k <= 4; ++k) {
    std::vector<int64_t> facts;
    for (int i = 0; i < k; ++i) facts.push_back(i);
    auto collection =
        MakeUnaryCollection({MakeUnarySource("S1", facts, "0", "1"),
                             MakeUnarySource("S2", {0}, "1", "0")});
    auto report = CheckIdentityConsistency(collection);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->consistent, k <= 1) << "k=" << k;
  }
}

}  // namespace
}  // namespace psc
