#include "psc/parser/lexer.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

std::vector<TokenKind> Kinds(const std::string& input) {
  auto tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& token : *tokens) kinds.push_back(token.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(Kinds("(){},:/"),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
                TokenKind::kRBrace, TokenKind::kComma, TokenKind::kColon,
                TokenKind::kSlash, TokenKind::kEnd}));
}

TEST(LexerTest, Arrow) {
  EXPECT_EQ(Kinds("<-"),
            (std::vector<TokenKind>{TokenKind::kArrow, TokenKind::kEnd}));
  EXPECT_FALSE(Tokenize("<x").ok());
}

TEST(LexerTest, Integers) {
  auto tokens = Tokenize("42 -17 0");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -17);
  EXPECT_EQ((*tokens)[2].int_value, 0);
}

TEST(LexerTest, MinusWithoutDigitIsError) {
  EXPECT_FALSE(Tokenize("-x").ok());
}

TEST(LexerTest, Decimals) {
  auto tokens = Tokenize("0.75 1.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDecimal);
  EXPECT_EQ((*tokens)[0].text, "0.75");
  EXPECT_EQ((*tokens)[1].text, "1.5");
}

TEST(LexerTest, IntegerDotWithoutDigitSplits) {
  // "1." with no following digit is not a decimal; '.' is an error char.
  EXPECT_FALSE(Tokenize("1. ").ok());
}

TEST(LexerTest, Identifiers) {
  auto tokens = Tokenize("Temperature V1 _x after_1900");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Temperature");
  EXPECT_EQ((*tokens)[1].text, "V1");
  EXPECT_EQ((*tokens)[2].text, "_x");
  EXPECT_EQ((*tokens)[3].text, "after_1900");
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize(R"("Canada" "a\"b" "line\nbreak" "tab\t" "back\\")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Canada");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "line\nbreak");
  EXPECT_EQ((*tokens)[3].text, "tab\t");
  EXPECT_EQ((*tokens)[4].text, "back\\");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("\"open").ok());
  EXPECT_FALSE(Tokenize("\"dangling\\").ok());
  EXPECT_FALSE(Tokenize("\"bad\\q\"").ok());
}

TEST(LexerTest, Comments) {
  EXPECT_EQ(Kinds("# full line\nx"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kEnd}));
  EXPECT_EQ(Kinds("x // trailing\ny"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, PositionsAreOneBased) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, ErrorsCarryPosition) {
  auto status = Tokenize("ok ?").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("1:4"), std::string::npos)
      << status.message();
}

TEST(LexerTest, DescribeIsHumanReadable) {
  auto tokens = Tokenize("abc 42 \"s\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].Describe(), "identifier 'abc'");
  EXPECT_EQ((*tokens)[1].Describe(), "integer 42");
  EXPECT_EQ((*tokens)[2].Describe(), "string \"s\"");
  EXPECT_EQ((*tokens)[3].Describe(), "end of input");
}

}  // namespace
}  // namespace psc
