// Resource-budget behaviour of the facade: every cap must surface as a
// typed error, never as silent truncation or a wrong answer.

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/relational/query_plan.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(QuerySystemOptionsTest, WorldCapSurfacesAsResourceExhausted) {
  QuerySystem::Options options;
  options.max_worlds = 3;  // far fewer than 2^6 unconstrained worlds
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")}), options);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(6))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(QuerySystemOptionsTest, ShapeCapSurfacesInBaseConfidences) {
  QuerySystem::Options options;
  options.max_shapes = 1;
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")}),
      options);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->BaseConfidences(IntDomain(4)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(QuerySystemOptionsTest, UniverseBitsCapOnBruteForceFallback) {
  // Non-identity collection with a domain whose fact universe exceeds the
  // configured bit budget.
  auto view = testing::Q("V(x) <- E(x, y)");
  auto source = SourceDescriptor::Create("J", view, {testing::U(0)},
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  QuerySystem::Options options;
  options.max_universe_bits = 4;  // E over {0..2}² = 9 facts > 4
  auto system = QuerySystem::Create(*collection, options);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->AnswerExact(AlgebraExpr::Base("E", 2), IntDomain(3))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(QuerySystemOptionsTest, GenerousBudgetsSucceedOnTheSameInputs) {
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")}));
  ASSERT_TRUE(system.ok());
  auto answer = system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(6));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->worlds_used, 64u);  // 2^6
}

TEST(QuerySystemOptionsTest, DomainMustCoverExtensions) {
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {7}, "0", "0")}));
  ASSERT_TRUE(system.ok());
  // Domain {0,1} misses the claimed fact 7.
  EXPECT_EQ(system->BaseConfidences(IntDomain(2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(2)).ok());
}

TEST(QuerySystemOptionsTest, UseCompiledEvalTogglesTheGlobalEngine) {
  // The option is process-global by design (see Options docs): Create
  // applies it immediately, and both settings answer identically.
  const bool was_enabled = eval::CompiledEvalEnabled();

  QuerySystem::Options options;
  options.use_compiled_eval = false;
  auto legacy_system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")}), options);
  ASSERT_TRUE(legacy_system.ok());
  EXPECT_FALSE(eval::CompiledEvalEnabled());
  auto legacy =
      legacy_system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(4));
  ASSERT_TRUE(legacy.ok());

  options.use_compiled_eval = true;
  auto compiled_system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")}), options);
  ASSERT_TRUE(compiled_system.ok());
  EXPECT_TRUE(eval::CompiledEvalEnabled());
  auto compiled =
      compiled_system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(4));
  ASSERT_TRUE(compiled.ok());

  EXPECT_EQ(compiled->certain, legacy->certain);
  EXPECT_EQ(compiled->possible, legacy->possible);
  EXPECT_EQ(compiled->confidences.entries(), legacy->confidences.entries());

  eval::SetCompiledEvalEnabled(was_enabled);
}

TEST(QuerySystemOptionsTest, MonteCarloSamplerRespectsShapeBudget) {
  QuerySystem::Options options;
  options.max_worlds = 1;  // doubles as the sampler's shape budget
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")}),
      options);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->AnswerMonteCarlo(AlgebraExpr::Base("R", 1), IntDomain(4),
                                     10, 1)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace psc
