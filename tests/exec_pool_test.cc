#include "psc/exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "psc/exec/memo_cache.h"
#include "psc/exec/parallel.h"
#include "psc/obs/log.h"

namespace psc {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> executed{0};
  {
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
  }  // the destructor waits for every submitted task
  EXPECT_EQ(executed.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> executed{0};
  pool.Submit([&executed] { executed.fetch_add(1); });
  while (executed.load() < 1) std::this_thread::yield();
}

TEST(ThreadPoolTest, NestedSubmissionFromWorkersRuns) {
  std::atomic<int> executed{0};
  exec::ThreadPool pool(2);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &executed] {
      pool.Submit([&executed] { executed.fetch_add(1); });
    });
  }
  while (executed.load() < 16) std::this_thread::yield();
  EXPECT_EQ(executed.load(), 16);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  exec::ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<size_t> order;
  exec::ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelReduceTest, MergesInShardOrder) {
  // String concatenation is order-sensitive: any merge reordering would
  // scramble the digits.
  const auto shard = [](size_t i) { return std::to_string(i) + ","; };
  const auto merge = [](std::string& acc, std::string part) {
    acc += part;
  };
  const std::string sequential = exec::ParallelReduce<std::string>(
      nullptr, 20, std::string(), shard, merge);
  exec::ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(exec::ParallelReduce<std::string>(&pool, 20, std::string(),
                                                shard, merge),
              sequential);
  }
}

TEST(ParallelReduceTest, MatchesSequentialSum) {
  const auto shard = [](size_t i) {
    return static_cast<uint64_t>(i) * static_cast<uint64_t>(i);
  };
  const auto merge = [](uint64_t& acc, uint64_t part) { acc += part; };
  const uint64_t expected = exec::ParallelReduce<uint64_t>(
      nullptr, 1000, uint64_t{0}, shard, merge);
  exec::ThreadPool pool(3);
  EXPECT_EQ(exec::ParallelReduce<uint64_t>(&pool, 1000, uint64_t{0}, shard,
                                           merge),
            expected);
}

TEST(CancellationTokenTest, CopiesShareStickyState) {
  exec::CancellationToken token;
  const exec::CancellationToken copy = token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(copy.cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(ResolveThreadCountTest, ExplicitRequestWinsOverEnvironment) {
  setenv("PSC_THREADS", "7", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(3), 3u);
  unsetenv("PSC_THREADS");
}

TEST(ResolveThreadCountTest, AutoReadsEnvironment) {
  setenv("PSC_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), 5u);
  unsetenv("PSC_THREADS");
}

TEST(ResolveThreadCountTest, InvalidEnvironmentFallsBackToHardware) {
  setenv("PSC_THREADS", "banana", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  setenv("PSC_THREADS", "0", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  unsetenv("PSC_THREADS");
  EXPECT_GE(exec::HardwareThreads(), 1u);
}

TEST(ResolveThreadCountTest, EdgeValuesFallBackToHardware) {
  // Boundary cases around the [1, 1024] accepted range.
  setenv("PSC_THREADS", "1024", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), 1024u);
  setenv("PSC_THREADS", "1025", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  setenv("PSC_THREADS", "-1", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  setenv("PSC_THREADS", "18446744073709551617", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  unsetenv("PSC_THREADS");
}

TEST(ResolveThreadCountTest, JunkEnvironmentWarnsOncePerValue) {
  std::vector<std::string> warnings;
  obs::SetWarningSink(
      [&warnings](const std::string& message) { warnings.push_back(message); });

  setenv("PSC_THREADS", "bogus-threads", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("bogus-threads"), std::string::npos);
  EXPECT_NE(warnings[0].find("PSC_THREADS"), std::string::npos);

  // The same junk value warns only once per process...
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  EXPECT_EQ(warnings.size(), 1u);

  // ...but a different junk value gets its own warning.
  setenv("PSC_THREADS", "-12", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), exec::HardwareThreads());
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[1].find("-12"), std::string::npos);

  // A valid setting stays silent.
  setenv("PSC_THREADS", "2", /*overwrite=*/1);
  EXPECT_EQ(exec::ResolveThreadCount(0), 2u);
  EXPECT_EQ(warnings.size(), 2u);

  unsetenv("PSC_THREADS");
  obs::SetWarningSink(nullptr);
}

TEST(ShardedMemoCacheTest, LookupAfterInsert) {
  exec::ShardedMemoCache<int> cache;
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  EXPECT_EQ(*cache.Lookup("a"), 1);
  EXPECT_EQ(*cache.Lookup("b"), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedMemoCacheTest, FirstWriterWins) {
  exec::ShardedMemoCache<int> cache(4);
  cache.Insert("key", 10);
  cache.Insert("key", 99);  // no-op: entries are immutable once inserted
  EXPECT_EQ(*cache.Lookup("key"), 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedMemoCacheTest, ClearEmptiesEveryShard) {
  exec::ShardedMemoCache<int> cache(4);
  for (int i = 0; i < 100; ++i) cache.Insert(std::to_string(i), i);
  EXPECT_EQ(cache.size(), 100u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("42").has_value());
}

TEST(ShardedMemoCacheTest, ConcurrentMixedUseIsSafe) {
  exec::ShardedMemoCache<int> cache;
  exec::ThreadPool pool(4);
  exec::ParallelFor(&pool, 256, [&](size_t i) {
    const std::string key = std::to_string(i % 32);
    cache.Insert(key, static_cast<int>(i % 32));
    const auto hit = cache.Lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, static_cast<int>(i % 32));
  });
  EXPECT_EQ(cache.size(), 32u);
}

}  // namespace
}  // namespace psc
