#ifndef PSC_TESTS_TEST_UTIL_H_
#define PSC_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/parser/parser.h"
#include "psc/relational/value.h"
#include "psc/source/source_collection.h"
#include "psc/source/source_descriptor.h"
#include "psc/util/result.h"

namespace psc::testing {

/// gtest helpers for Status/Result.
#define PSC_EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()
#define PSC_ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define PSC_ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PSC_CONCAT(_psc_test_res_, __LINE__) = (rexpr);   \
  ASSERT_TRUE(PSC_CONCAT(_psc_test_res_, __LINE__).ok()) \
      << PSC_CONCAT(_psc_test_res_, __LINE__).status().ToString(); \
  lhs = std::move(PSC_CONCAT(_psc_test_res_, __LINE__)).ValueOrDie()

/// Unary integer tuple {Value(v)}.
inline Tuple U(int64_t v) { return Tuple{Value(v)}; }

/// A unary identity-view source over relation "R" with integer facts.
inline SourceDescriptor MakeUnarySource(const std::string& name,
                                        const std::vector<int64_t>& facts,
                                        const std::string& completeness,
                                        const std::string& soundness) {
  Relation extension;
  for (const int64_t fact : facts) extension.insert(U(fact));
  auto c = Rational::Parse(completeness);
  auto s = Rational::Parse(soundness);
  EXPECT_TRUE(c.ok() && s.ok());
  auto source = SourceDescriptor::Create(
      name, ConjunctiveQuery::Identity("R", 1), std::move(extension),
      *c, *s);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return std::move(source).ValueOrDie();
}

/// A collection of unary identity sources.
inline SourceCollection MakeUnaryCollection(
    std::vector<SourceDescriptor> sources) {
  auto collection = SourceCollection::Create(std::move(sources));
  EXPECT_TRUE(collection.ok()) << collection.status().ToString();
  return std::move(collection).ValueOrDie();
}

/// Integer domain {0, …, n−1}.
inline std::vector<Value> IntDomain(int64_t n) {
  std::vector<Value> domain;
  domain.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) domain.push_back(Value(i));
  return domain;
}

/// Parses a query or aborts the test.
inline ConjunctiveQuery Q(const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return std::move(query).ValueOrDie();
}

}  // namespace psc::testing

#endif  // PSC_TESTS_TEST_UTIL_H_
