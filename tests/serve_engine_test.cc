// Deterministic engine tests (serve/engine.h) in manual-dispatch mode
// (dispatch_threads = 0, owner pumps with PumpOne): verb round-trips,
// warm-state reuse, answer batching and dedup, round-robin fairness,
// admission control and the shutdown drain contract.

#include "psc/serve/engine.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/serve/protocol.h"
#include "test_util.h"

namespace psc::serve {
namespace {

/// Two half-sound mirrors of R (the Example 5.1 shape).
constexpr const char* kCollectionText =
    "source S1 {\n"
    "  view: V1(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V1(\"a\"), V1(\"b\")\n"
    "}\n"
    "source S2 {\n"
    "  view: V2(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V2(\"b\"), V2(\"c\")\n"
    "}\n";

EngineOptions ManualOptions() {
  EngineOptions options;
  options.dispatch_threads = 0;
  options.solver_threads = 1;
  return options;
}

std::string LoadLine(const std::string& collection = "") {
  JsonObjectWriter writer;
  writer.String("verb", "load");
  if (!collection.empty()) writer.String("collection", collection);
  writer.String("text", kCollectionText);
  return writer.Finish();
}

std::string AnswerLine(const std::string& query, const std::string& id = "") {
  JsonObjectWriter writer;
  writer.String("verb", "answer");
  if (!id.empty()) writer.String("id", id);
  writer.String("query", query);
  return writer.Finish();
}

bool IsOk(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

class ServeEngineTest : public ::testing::Test {
 protected:
  ServeEngineTest() : engine_(ManualOptions()) {}

  void Load() { ASSERT_TRUE(IsOk(engine_.Call(0, LoadLine()))); }

  Engine engine_;
};

TEST_F(ServeEngineTest, LoadCheckAnswerRoundTrip) {
  const std::string loaded = engine_.Call(0, LoadLine());
  ASSERT_TRUE(IsOk(loaded)) << loaded;
  EXPECT_NE(loaded.find("\"sources\":2"), std::string::npos) << loaded;

  const std::string checked = engine_.Call(0, "{\"verb\":\"check\"}");
  ASSERT_TRUE(IsOk(checked)) << checked;
  EXPECT_NE(checked.find("\"verdict\":"), std::string::npos) << checked;

  const std::string answered =
      engine_.Call(0, AnswerLine("Ans(x) <- R(x)", "q1"));
  ASSERT_TRUE(IsOk(answered)) << answered;
  EXPECT_NE(answered.find("\"id\":\"q1\""), std::string::npos) << answered;
  EXPECT_NE(answered.find("\"confidences\":"), std::string::npos) << answered;
}

TEST_F(ServeEngineTest, WarmRepeatHitsTheAnswerCache) {
  Load();
  const std::string first = engine_.Call(0, AnswerLine("Ans(x) <- R(x)"));
  ASSERT_TRUE(IsOk(first)) << first;
  EXPECT_NE(first.find("\"from_cache\":false"), std::string::npos) << first;
  const std::string repeat = engine_.Call(0, AnswerLine("Ans(x) <- R(x)"));
  ASSERT_TRUE(IsOk(repeat)) << repeat;
  // The resident system's answer cache survives between requests — the
  // entire point of serving warm.
  EXPECT_NE(repeat.find("\"from_cache\":true"), std::string::npos) << repeat;
}

TEST_F(ServeEngineTest, ApplyDeltaInvalidatesAndAdvancesGeneration) {
  Load();
  const std::string before = engine_.Call(0, AnswerLine("Ans(x) <- R(x)"));
  ASSERT_TRUE(IsOk(before));

  JsonObjectWriter delta;
  delta.String("verb", "apply-delta");
  delta.String("script", "+ S1(\"c\")");
  const std::string applied = engine_.Call(0, delta.Finish());
  ASSERT_TRUE(IsOk(applied)) << applied;
  EXPECT_NE(applied.find("\"inserted\":1"), std::string::npos) << applied;

  const std::string after = engine_.Call(0, AnswerLine("Ans(x) <- R(x)"));
  ASSERT_TRUE(IsOk(after));
  // The mutation must invalidate the cached answer, not serve it stale.
  EXPECT_NE(after.find("\"from_cache\":false"), std::string::npos) << after;
  EXPECT_NE(after, before);
}

TEST_F(ServeEngineTest, UnknownCollectionIsNotFound) {
  const std::string response =
      engine_.Call(0, "{\"verb\":\"check\",\"collection\":\"nope\"}");
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(response.find("nope"), std::string::npos) << response;
}

TEST_F(ServeEngineTest, ParseErrorsComeBackAsErrorResponses) {
  const std::string malformed = engine_.Call(0, "{\"verb\":");
  EXPECT_NE(malformed.find("\"ok\":false"), std::string::npos) << malformed;
  const std::string unknown = engine_.Call(0, "{\"verb\":\"frobnicate\"}");
  EXPECT_NE(unknown.find("unknown verb"), std::string::npos) << unknown;
}

TEST_F(ServeEngineTest, CompatibleAnswersBatchInOnePump) {
  Load();
  std::vector<std::string> responses;
  for (uint64_t session = 1; session <= 3; ++session) {
    engine_.Submit(session, AnswerLine("Ans(x) <- R(x)"),
                   [&](const std::string& line) { responses.push_back(line); });
  }
  EXPECT_TRUE(responses.empty());
  // One batch: the answer at the first session's front steals the
  // identical answers from the other sessions' fronts.
  EXPECT_TRUE(engine_.PumpOne());
  ASSERT_EQ(responses.size(), 3u);
  for (const std::string& line : responses) EXPECT_TRUE(IsOk(line)) << line;
  // Identical (query, domain) pairs are computed once and fanned out —
  // all three responses carry the same payload.
  EXPECT_EQ(responses[0], responses[1]);
  EXPECT_EQ(responses[1], responses[2]);
  EXPECT_FALSE(engine_.PumpOne());
}

TEST_F(ServeEngineTest, NonAnswerVerbsDoNotBatch) {
  Load();
  size_t delivered = 0;
  for (uint64_t session = 1; session <= 2; ++session) {
    engine_.Submit(session, "{\"verb\":\"check\"}",
                   [&](const std::string&) { ++delivered; });
  }
  EXPECT_TRUE(engine_.PumpOne());
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(engine_.PumpOne());
  EXPECT_EQ(delivered, 2u);
}

TEST_F(ServeEngineTest, SessionsAreServedRoundRobin) {
  Load();
  std::vector<std::string> order;
  const auto submit = [&](uint64_t session, const std::string& tag) {
    JsonObjectWriter writer;
    writer.String("verb", "check");
    writer.String("id", tag);
    engine_.Submit(session, writer.Finish(), [&order, tag](const std::string&) {
      order.push_back(tag);
    });
  };
  // Session 1 floods three requests before session 2's single one.
  submit(1, "a1");
  submit(1, "a2");
  submit(1, "a3");
  submit(2, "b1");
  while (engine_.PumpOne()) {
  }
  // Fair share: the flood cannot starve session 2 until the flood ends.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a1");
  EXPECT_EQ(order[1], "b1");
  EXPECT_EQ(order[2], "a2");
  EXPECT_EQ(order[3], "a3");
}

TEST_F(ServeEngineTest, AdmissionControlRejectsBeyondMaxQueue) {
  EngineOptions options = ManualOptions();
  options.max_queue = 1;
  Engine engine(options);
  ASSERT_TRUE(IsOk(engine.Call(0, LoadLine())));

  std::vector<std::string> responses;
  const auto record = [&](const std::string& line) {
    responses.push_back(line);
  };
  engine.Submit(1, "{\"verb\":\"check\"}", record);
  // Queue is at capacity: the second submit is rejected synchronously.
  engine.Submit(2, "{\"verb\":\"check\"}", record);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("admission queue full"), std::string::npos)
      << responses[0];
  while (engine.PumpOne()) {
  }
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(IsOk(responses[1])) << responses[1];
}

TEST_F(ServeEngineTest, StatsReportsCachesAndCollections) {
  Load();
  ASSERT_TRUE(IsOk(engine_.Call(0, AnswerLine("Ans(x) <- R(x)"))));
  const std::string stats = engine_.Call(0, "{\"verb\":\"stats\"}");
  ASSERT_TRUE(IsOk(stats)) << stats;
  EXPECT_NE(stats.find("\"plan_cache\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"containment_cache\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"default\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"answer_cache\":"), std::string::npos) << stats;
}

TEST_F(ServeEngineTest, ShutdownDrainsAcceptedAndRejectsNew) {
  Load();
  size_t delivered = 0;
  engine_.Submit(1, "{\"verb\":\"check\"}",
                 [&](const std::string&) { ++delivered; });
  engine_.BeginShutdown();
  EXPECT_TRUE(engine_.draining());

  // Post-shutdown submissions are rejected synchronously...
  std::string rejected;
  engine_.Submit(2, "{\"verb\":\"check\"}",
                 [&](const std::string& line) { rejected = line; });
  EXPECT_NE(rejected.find("draining"), std::string::npos) << rejected;

  // ...but everything accepted beforehand still gets its response.
  engine_.Drain();
  EXPECT_EQ(delivered, 1u);
}

TEST_F(ServeEngineTest, ShutdownVerbTriggersDraining) {
  bool notified = false;
  engine_.SetShutdownNotify([&] { notified = true; });
  const std::string response = engine_.Call(0, "{\"verb\":\"shutdown\"}");
  EXPECT_TRUE(IsOk(response)) << response;
  EXPECT_NE(response.find("\"draining\":true"), std::string::npos) << response;
  EXPECT_TRUE(engine_.draining());
  EXPECT_TRUE(notified);
}

TEST_F(ServeEngineTest, LoadReplacesCollectionAndReportsReload) {
  Load();
  const std::string reloaded = engine_.Call(0, LoadLine());
  ASSERT_TRUE(IsOk(reloaded)) << reloaded;
  EXPECT_NE(reloaded.find("\"reloaded\":true"), std::string::npos) << reloaded;
}

TEST_F(ServeEngineTest, ExplicitDomainIsHonored) {
  Load();
  JsonObjectWriter writer;
  writer.String("verb", "answer");
  writer.String("query", "Ans(x) <- R(x)");
  writer.Raw("domain", "[\"a\",\"b\",\"c\",\"d\"]");
  const std::string wide = engine_.Call(0, writer.Finish());
  ASSERT_TRUE(IsOk(wide)) << wide;
  const std::string defaulted = engine_.Call(0, AnswerLine("Ans(x) <- R(x)"));
  ASSERT_TRUE(IsOk(defaulted)) << defaulted;
  // Different domains are distinct cache keys and distinct computations.
  EXPECT_NE(wide.find("\"from_cache\":false"), std::string::npos) << wide;
}

}  // namespace
}  // namespace psc::serve
