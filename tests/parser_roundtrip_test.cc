// Randomized round-trip: every collection the library can generate must
// re-parse from its own ToString() into an equivalent collection.

#include "gtest/gtest.h"
#include "psc/parser/parser.h"
#include "psc/workload/cache_workload.h"
#include "psc/workload/ghcn.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

void ExpectRoundTrip(const SourceCollection& original) {
  auto reparsed = ParseCollection(original.ToString());
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\n---\n" << original.ToString();
  ASSERT_EQ(reparsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const SourceDescriptor& before = original.source(i);
    const SourceDescriptor& after = reparsed->source(i);
    EXPECT_EQ(after.name(), before.name());
    EXPECT_EQ(after.view(), before.view()) << before.view().ToString();
    EXPECT_EQ(after.extension(), before.extension());
    EXPECT_EQ(after.completeness_bound(), before.completeness_bound());
    EXPECT_EQ(after.soundness_bound(), before.soundness_bound());
  }
  EXPECT_EQ(reparsed->schema(), original.schema());
}

TEST(ParserRoundTripTest, RandomIdentityCollections) {
  Rng rng(987);
  RandomIdentityConfig config;
  config.num_sources = 4;
  config.universe_size = 8;
  config.min_extension = 0;
  config.max_extension = 6;
  config.bound_granularity = 7;  // awkward denominators
  for (int trial = 0; trial < 40; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    ExpectRoundTrip(*collection);
  }
}

TEST(ParserRoundTripTest, CacheWorkloads) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    CacheConfig config;
    config.num_objects = 20;
    config.num_caches = 3;
    config.coverage = 0.6;
    config.staleness = 0.25;
    config.seed = seed;
    auto workload = MakeCacheWorkload(config);
    ASSERT_TRUE(workload.ok());
    ExpectRoundTrip(workload->collection);
  }
}

TEST(ParserRoundTripTest, GhcnFederations) {
  // Views with join bodies, string constants and built-ins.
  GhcnConfig config;
  config.num_stations = 5;
  GhcnGenerator generator(config, 321);
  const GhcnWorld world = generator.GenerateTruth();
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada", 1900, 0.5,
                                        0.3);
  auto s3 = generator.MakeStationSource(world, "S3", world.station_ids[2],
                                        0.7, 0.1);
  ASSERT_TRUE(s0.ok() && s1.ok() && s3.ok());
  auto collection = SourceCollection::Create({*s0, *s1, *s3});
  ASSERT_TRUE(collection.ok());
  ExpectRoundTrip(*collection);
}

TEST(ParserRoundTripTest, NegativeValuesAndEmptyExtensions) {
  Relation extension = {Tuple{Value(int64_t{-42}), Value("quo\"te")}};
  auto weird = SourceDescriptor::Create(
      "Weird", ConjunctiveQuery::Identity("R", 2), extension,
      Rational(1, 3), Rational(2, 7));
  auto empty = SourceDescriptor::Create(
      "Empty", ConjunctiveQuery::Identity("R", 2), Relation{},
      Rational::Zero(), Rational::One());
  ASSERT_TRUE(weird.ok() && empty.ok());
  auto collection = SourceCollection::Create({*weird, *empty});
  ASSERT_TRUE(collection.ok());
  ExpectRoundTrip(*collection);
}

}  // namespace
}  // namespace psc
