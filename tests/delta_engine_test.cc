// Unit tests for the incremental delta engine: Database/SourceCollection
// batched deltas, per-relation generations, in-place index maintenance,
// delta scripts, and the IncrementalSystem invalidation ladder.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/delta/delta_script.h"
#include "psc/delta/incremental.h"
#include "psc/obs/metrics.h"
#include "psc/parser/parser.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/relational/eval_index.h"
#include "psc/source/source_collection.h"
#include "psc/tableau/template_builder.h"
#include "psc/util/rational.h"

namespace psc {
namespace {

Tuple T(int64_t a) { return {Value(a)}; }
Tuple T(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

ConjunctiveQuery Q(const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *std::move(query);
}

SourceDescriptor MakeSource(const std::string& name, const std::string& view,
                            std::vector<Tuple> tuples, Rational completeness,
                            Rational soundness) {
  Relation extension(tuples.begin(), tuples.end());
  auto source = SourceDescriptor::Create(name, Q(view), std::move(extension),
                                         completeness, soundness);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return *std::move(source);
}

// ---------------------------------------------------------------------------
// Database::ApplyDelta
// ---------------------------------------------------------------------------

TEST(DatabaseDeltaTest, ApplyDeltaInsertsAndRetracts) {
  Database db;
  db.AddFact("R", T(1));
  db.AddFact("R", T(2));
  db.AddFact("S", T(1, 2));

  DatabaseDelta delta;
  delta.Insert("R", T(3));
  delta.Retract("R", T(1));
  delta.Retract("S", T(1, 2));
  const DeltaSummary summary = db.ApplyDelta(delta);

  EXPECT_EQ(summary.inserted, 1u);
  EXPECT_EQ(summary.retracted, 2u);
  EXPECT_EQ(summary.noops, 0u);
  EXPECT_TRUE(summary.changed());
  EXPECT_EQ(summary.DirtyRelations(), (std::vector<std::string>{"R", "S"}));

  EXPECT_FALSE(db.Contains("R", T(1)));
  EXPECT_TRUE(db.Contains("R", T(2)));
  EXPECT_TRUE(db.Contains("R", T(3)));
  // The emptied relation leaves no residue (operator== stays structural).
  EXPECT_TRUE(db.GetRelation("S").empty());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"R"}));
}

TEST(DatabaseDeltaTest, InsertWinsOverRetractOfSameTuple) {
  Database db;
  db.AddFact("R", T(1));
  DatabaseDelta delta;
  delta.Insert("R", T(1));
  delta.Retract("R", T(1));  // dropped: the delta declares T(1) present
  const DeltaSummary summary = db.ApplyDelta(delta);
  EXPECT_EQ(summary.inserted, 0u);
  EXPECT_EQ(summary.retracted, 0u);
  EXPECT_EQ(summary.noops, 2u);
  EXPECT_TRUE(db.Contains("R", T(1)));
}

TEST(DatabaseDeltaTest, NoopDeltaLeavesGenerationsUntouched) {
  Database db;
  db.AddFact("R", T(1));
  const uint64_t generation = db.generation();
  const uint64_t r_generation = db.relation_generation("R");

  DatabaseDelta delta;
  delta.Insert("R", T(1));   // already present
  delta.Retract("R", T(9));  // never present
  const DeltaSummary summary = db.ApplyDelta(delta);

  EXPECT_FALSE(summary.changed());
  EXPECT_EQ(summary.noops, 2u);
  EXPECT_EQ(db.generation(), generation);
  EXPECT_EQ(db.relation_generation("R"), r_generation);
}

// Regression: before the delta engine, UnionWith bumped the generation (and
// thereby invalidated every cached index) even when it added nothing.
TEST(DatabaseDeltaTest, SubsetUnionIsACompleteNoop) {
  Database db;
  db.AddFact("R", T(1));
  db.AddFact("R", T(2));
  Database subset;
  subset.AddFact("R", T(1));

  const uint64_t generation = db.generation();
  db.UnionWith(subset);
  EXPECT_EQ(db.generation(), generation);

  // A union that does add tuples bumps exactly the gaining relations.
  Database more;
  more.AddFact("R", T(3));
  more.AddFact("S", T(1, 1));
  const uint64_t s_generation = db.relation_generation("S");
  db.UnionWith(more);
  EXPECT_GT(db.generation(), generation);
  EXPECT_GT(db.relation_generation("S"), s_generation);
}

TEST(DatabaseDeltaTest, NoopSingleFactMutationsLeaveGenerations) {
  Database db;
  db.AddFact("R", T(1));
  const uint64_t generation = db.generation();
  EXPECT_FALSE(db.AddFact("R", T(1)));
  EXPECT_FALSE(db.RemoveFact(Fact("R", T(7))));
  EXPECT_EQ(db.generation(), generation);
}

TEST(DatabaseDeltaTest, GenerationsAreRelationScoped) {
  Database db;
  db.AddFact("R", T(1));
  db.AddFact("S", T(1, 2));
  const uint64_t s_generation = db.relation_generation("S");
  db.AddFact("R", T(2));
  EXPECT_EQ(db.relation_generation("S"), s_generation);
  EXPECT_GT(db.relation_generation("R"), s_generation);
}

// ---------------------------------------------------------------------------
// In-place index maintenance
// ---------------------------------------------------------------------------

/// Evaluates `query` against `db` and against a fresh structurally-equal
/// database (whose indexes are built from scratch), expecting identical
/// results — the patched-index correctness oracle.
void ExpectFreshEquivalence(const Database& db, const ConjunctiveQuery& query) {
  Database fresh;
  for (const Fact& fact : db.AllFacts()) fresh.AddFact(fact);
  ASSERT_EQ(db, fresh);
  auto patched = query.Evaluate(db);
  auto rebuilt = query.Evaluate(fresh);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(*patched, *rebuilt);
}

TEST(IndexMaintenanceTest, PatchedIndexMatchesRebuiltIndex) {
  Database db;
  for (int64_t i = 0; i < 64; ++i) db.AddFact("E", T(i % 16, (i * 7) % 16));
  const ConjunctiveQuery query = Q("V(x, z) <- E(x, y), E(y, z)");
  ASSERT_TRUE(query.Evaluate(db).ok());  // warm the index cache

  const uint64_t builds = obs::GlobalMetrics().CounterValue("eval.index.builds");
  DatabaseDelta delta;
  delta.Insert("E", T(20, 21));
  delta.Insert("E", T(21, 22));
  delta.Retract("E", T(0, 0));
  db.ApplyDelta(delta);
  ExpectFreshEquivalence(db, query);
  // The live database's index was patched, never rebuilt: the only build
  // recorded is the fresh oracle database's. (Counter assertions need the
  // instrumentation compiled in; the equivalence oracle above does not.)
#if PSC_OBS_ENABLED
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("eval.index.builds"),
            builds + 1);
#else
  (void)builds;
#endif
}

TEST(IndexMaintenanceTest, SingleFactMutationsPatchWarmIndexes) {
  Database db;
  for (int64_t i = 0; i < 64; ++i) db.AddFact("E", T(i, i + 1));
  const ConjunctiveQuery query = Q("V(x, z) <- E(x, y), E(y, z)");
  ASSERT_TRUE(query.Evaluate(db).ok());
  db.AddFact("E", T(100, 101));
  db.RemoveFact(Fact("E", T(0, 1)));
  ExpectFreshEquivalence(db, query);
}

TEST(IndexMaintenanceTest, HighChurnFallsBackToRebuild) {
  Database db;
  for (int64_t i = 0; i < 64; ++i) db.AddFact("E", T(i, i + 1));
  const ConjunctiveQuery query = Q("V(x, z) <- E(x, y), E(y, z)");
  ASSERT_TRUE(query.Evaluate(db).ok());

  const uint64_t rebuilds =
      obs::GlobalMetrics().CounterValue("delta.index.rebuilds");
  DatabaseDelta delta;  // churn 64 > size_after/4: drop, don't patch
  for (int64_t i = 0; i < 32; ++i) {
    delta.Retract("E", T(i, i + 1));
    delta.Insert("E", T(200 + i, 201 + i));
  }
  db.ApplyDelta(delta);
#if PSC_OBS_ENABLED
  EXPECT_GT(obs::GlobalMetrics().CounterValue("delta.index.rebuilds"),
            rebuilds);
#else
  (void)rebuilds;
#endif
  ExpectFreshEquivalence(db, query);
}

TEST(IndexMaintenanceTest, WholesaleInvalidationStillWorks) {
  Database db;
  for (int64_t i = 0; i < 32; ++i) db.AddFact("E", T(i, i + 1));
  const ConjunctiveQuery query = Q("V(x, z) <- E(x, y), E(y, z)");
  ASSERT_TRUE(query.Evaluate(db).ok());
  EXPECT_GT(db.index_cache().size(), 0u);
  db.InvalidateIndexCache();
  EXPECT_EQ(db.index_cache().size(), 0u);
  ExpectFreshEquivalence(db, query);
}

// ---------------------------------------------------------------------------
// SourceCollection::ApplyDelta
// ---------------------------------------------------------------------------

SourceCollection TwoMirrors() {
  std::vector<SourceDescriptor> sources;
  sources.push_back(MakeSource("S1", "V1(x) <- R(x)", {T(1), T(2)},
                               Rational(1, 16), Rational(1, 2)));
  sources.push_back(MakeSource("S2", "V2(x) <- R(x)", {T(2), T(3)},
                               Rational(1, 16), Rational(1, 2)));
  auto collection = SourceCollection::Create(std::move(sources));
  EXPECT_TRUE(collection.ok()) << collection.status().ToString();
  return *std::move(collection);
}

TEST(CollectionDeltaTest, ApplyDeltaBumpsOnlyDirtySources) {
  SourceCollection collection = TwoMirrors();
  EXPECT_EQ(collection.generation(), 0u);

  CollectionDelta delta;
  delta.Insert("S1", T(9));
  auto summary = collection.ApplyDelta(delta);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->inserted, 1u);
  EXPECT_EQ(summary->DirtySources(), (std::vector<std::string>{"S1"}));
  EXPECT_EQ(collection.generation(), 1u);
  EXPECT_EQ(collection.source_generation(0), 1u);
  EXPECT_EQ(collection.source_generation(1), 0u);
  EXPECT_TRUE(collection.source(0).extension().count(T(9)) > 0);
}

TEST(CollectionDeltaTest, NoopDeltaLeavesGenerations) {
  SourceCollection collection = TwoMirrors();
  CollectionDelta delta;
  delta.Insert("S1", T(1));   // already present
  delta.Retract("S2", T(9));  // never present
  auto summary = collection.ApplyDelta(delta);
  ASSERT_TRUE(summary.ok());
  EXPECT_FALSE(summary->changed());
  EXPECT_EQ(summary->noops, 2u);
  EXPECT_EQ(collection.generation(), 0u);
}

TEST(CollectionDeltaTest, ValidationIsAllOrNothing) {
  SourceCollection collection = TwoMirrors();

  CollectionDelta unknown;
  unknown.Insert("S1", T(9));
  unknown.Insert("Nope", T(1));
  EXPECT_FALSE(collection.ApplyDelta(unknown).ok());
  // The valid half of the failed delta was not applied.
  EXPECT_EQ(collection.source(0).extension().count(T(9)), 0u);
  EXPECT_EQ(collection.generation(), 0u);

  CollectionDelta arity;
  arity.Insert("S1", T(9));
  arity.Insert("S2", T(1, 2));  // head arity is 1
  EXPECT_FALSE(collection.ApplyDelta(arity).ok());
  EXPECT_EQ(collection.source(0).extension().count(T(9)), 0u);
  EXPECT_EQ(collection.generation(), 0u);
}

TEST(CollectionDeltaTest, RelationGroupsPartitionBySharedBodyRelations) {
  std::vector<SourceDescriptor> sources;
  sources.push_back(MakeSource("A", "V(x) <- R(x)", {T(1)}, Rational(0),
                               Rational(0)));
  sources.push_back(MakeSource("B", "V(x) <- S(x, y)", {T(1)}, Rational(0),
                               Rational(0)));
  sources.push_back(MakeSource("C", "V(x) <- R(x), S(x, y)", {T(1)},
                               Rational(0), Rational(0)));
  sources.push_back(MakeSource("D", "V(x) <- U(x)", {T(1)}, Rational(0),
                               Rational(0)));
  auto collection = SourceCollection::Create(std::move(sources));
  ASSERT_TRUE(collection.ok());
  // C bridges R and S, merging A and B into one group; D stands alone.
  const auto groups = collection->RelationGroups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{3}));
}

TEST(TemplateBuilderTest, IsAllowableChecksSizeAndMembership) {
  SourceCollection collection = TwoMirrors();  // thresholds ⌈|v|/2⌉ = 1
  TemplateBuilder builder(&collection);

  Combination ok(2);
  ok[0] = {T(1)};
  ok[1] = {T(2), T(3)};
  EXPECT_TRUE(builder.IsAllowable(ok));

  Combination too_small(2);
  too_small[0] = {};  // below t₁ = 1
  too_small[1] = {T(2)};
  EXPECT_FALSE(builder.IsAllowable(too_small));

  Combination not_subset(2);
  not_subset[0] = {T(9)};  // ∉ v₁
  not_subset[1] = {T(2)};
  EXPECT_FALSE(builder.IsAllowable(not_subset));

  EXPECT_FALSE(builder.IsAllowable(Combination(1)));  // wrong source count
}

// ---------------------------------------------------------------------------
// Delta scripts
// ---------------------------------------------------------------------------

TEST(DeltaScriptTest, ParsesBatchesCommentsAndBlanks) {
  auto batches = delta::ParseDeltaScript(
      "# drift day 1\n"
      "+ Cache(1, 2)\n"
      "- Cache(3, 4)  # evict\n"
      "\n"
      "--\n"
      "+ Mirror(7)\n"
      "--\n");  // trailing separator: no empty batch
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  ASSERT_EQ(batches->size(), 2u);
  EXPECT_EQ((*batches)[0].sources.at("Cache").inserts.count(T(1, 2)), 1u);
  EXPECT_EQ((*batches)[0].sources.at("Cache").retracts.count(T(3, 4)), 1u);
  EXPECT_EQ((*batches)[1].sources.at("Mirror").inserts.count(T(7)), 1u);
}

TEST(DeltaScriptTest, ErrorsCarryLineNumbers) {
  auto missing_op = delta::ParseDeltaScript("+ A(1)\nA(2)\n");
  ASSERT_FALSE(missing_op.ok());
  EXPECT_NE(missing_op.status().message().find("line 2"), std::string::npos);

  auto bad_fact = delta::ParseDeltaScript("+ A(x)\n");  // variables forbidden
  EXPECT_FALSE(bad_fact.ok());

  auto file = delta::ParseDeltaScriptFile("/nonexistent/deltas.txt");
  EXPECT_FALSE(file.ok());
}

// ---------------------------------------------------------------------------
// IncrementalSystem: the invalidation ladder
// ---------------------------------------------------------------------------

TEST(IncrementalSystemTest, CacheRevalidateRepairFullLadder) {
  auto system = delta::IncrementalSystem::Create(TwoMirrors());
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  // First check is a full run; the second is served from cache.
  auto first = system->CheckConsistency();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, ConsistencyVerdict::kConsistent);
  ASSERT_TRUE(first->witness.has_value());
  auto cached = system->CheckConsistency();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->method, "delta-cache");
  EXPECT_EQ(cached->verdict, ConsistencyVerdict::kConsistent);

  // Insert a witness fact into S1: the cached witness still satisfies the
  // dirty source (soundness and completeness both improve), so only a
  // dirty-scoped revalidation runs.
  const Relation& truth = first->witness->GetRelation("R");
  ASSERT_FALSE(truth.empty());
  CollectionDelta drift;
  drift.Insert("S1", *truth.begin());
  auto summary = system->ApplyDelta(drift);
  ASSERT_TRUE(summary.ok());
  auto revalidated = system->CheckConsistency();
  ASSERT_TRUE(revalidated.ok());
  EXPECT_EQ(revalidated->verdict, ConsistencyVerdict::kConsistent);
  if (summary->changed()) {
    EXPECT_EQ(revalidated->method, "delta-revalidate");
  }

  // Flood S1 with fresh junk: the witness D ⊆ {1,2,3} now covers at most 2
  // of S1's ≥6 tuples, below the s = 1/2 threshold, so revalidation fails —
  // but the identity repair (witness plus the dirty extension) restores a
  // possible world without entering the full pipeline.
  CollectionDelta junk;
  for (int64_t i = 0; i < 4; ++i) junk.Insert("S1", T(100 + i));
  ASSERT_TRUE(system->ApplyDelta(junk).ok());
  auto repaired = system->CheckConsistency();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_EQ(repaired->method, "delta-repair");
}

TEST(IncrementalSystemTest, RevalidationIsDirtyScoped) {
  // S2's exact bounds pin the witness to exactly {1, 2}, making every step
  // of this test deterministic.
  std::vector<SourceDescriptor> sources;
  sources.push_back(MakeSource("S1", "V1(x) <- R(x)", {T(1), T(2)},
                               Rational(0), Rational(1, 2)));
  sources.push_back(MakeSource("S2", "V2(x) <- R(x)", {T(1), T(2)},
                               Rational(1), Rational(1)));
  auto collection = SourceCollection::Create(std::move(sources));
  ASSERT_TRUE(collection.ok());
  auto system = delta::IncrementalSystem::Create(*collection);
  ASSERT_TRUE(system.ok());
  auto first = system->CheckConsistency();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->verdict, ConsistencyVerdict::kConsistent);

  // {1,2} still covers 2 of S1's 3 tuples (s = 1/2), so the cached witness
  // survives a check scoped to the one dirty source.
  CollectionDelta delta;
  delta.Insert("S1", T(3));
  ASSERT_TRUE(system->ApplyDelta(delta).ok());
  auto revalidated = system->CheckConsistency();
  ASSERT_TRUE(revalidated.ok());
  EXPECT_EQ(revalidated->method, "delta-revalidate");
  EXPECT_EQ(revalidated->verdict, ConsistencyVerdict::kConsistent);
  ASSERT_TRUE(revalidated->witness.has_value());
  EXPECT_EQ(*revalidated->witness, *first->witness);

  // Overwhelm S1 with junk: no world satisfies both S2's exact bounds
  // (D = {1,2}) and S1's soundness threshold, and the delta engine agrees
  // with the from-scratch verdict.
  CollectionDelta flood;
  for (int64_t i = 0; i < 4; ++i) flood.Insert("S1", T(10 + i));
  ASSERT_TRUE(system->ApplyDelta(flood).ok());
  auto inconsistent = system->CheckConsistency();
  ASSERT_TRUE(inconsistent.ok());
  EXPECT_EQ(inconsistent->verdict, ConsistencyVerdict::kInconsistent);
}

TEST(IncrementalSystemTest, RejectedDeltaInvalidatesNothing) {
  auto system = delta::IncrementalSystem::Create(TwoMirrors());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE(system->CheckConsistency().ok());
  const uint64_t generation = system->generation();

  CollectionDelta bad;
  bad.Insert("S1", T(5));
  bad.Insert("Nope", T(1));
  EXPECT_FALSE(system->ApplyDelta(bad).ok());
  EXPECT_EQ(system->generation(), generation);
  auto report = system->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->method, "delta-cache");
}

TEST(IncrementalSystemTest, AnswerCacheIsGroupScoped) {
  // Two independent relation groups: mirrors of R and a mirror of W.
  std::vector<SourceDescriptor> sources;
  sources.push_back(MakeSource("S1", "V1(x) <- R(x)", {T(1), T(2)},
                               Rational(1, 8), Rational(1, 8)));
  sources.push_back(MakeSource("S2", "V2(x) <- W(x)", {T(3)}, Rational(1, 8),
                               Rational(1, 8)));
  auto collection = SourceCollection::Create(std::move(sources));
  ASSERT_TRUE(collection.ok());

  QuerySystem::Options options;
  options.threads = 1;
  auto system = delta::IncrementalSystem::Create(*collection, options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_TRUE(system->CheckConsistency().ok());

  const ConjunctiveQuery query = Q("Ans(x) <- R(x)");
  const std::vector<Value> domain = {Value(int64_t{1}), Value(int64_t{2}),
                                     Value(int64_t{3}), Value(int64_t{4})};
  auto computed = system->AnswerExact(query, domain);
  ASSERT_TRUE(computed.ok()) << computed.status().ToString();
  EXPECT_FALSE(computed->from_cache);
  EXPECT_EQ(system->AnswerCacheSize(), 1u);

  auto hit = system->AnswerExact(query, domain);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->certain, computed->certain);
  EXPECT_EQ(hit->possible, computed->possible);

  // Mutating the W group leaves the R-group answer warm...
  CollectionDelta other_group;
  other_group.Insert("S2", T(4));
  ASSERT_TRUE(system->ApplyDelta(other_group).ok());
  auto report = system->CheckConsistency();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  auto still_warm = system->AnswerExact(query, domain);
  ASSERT_TRUE(still_warm.ok());
  EXPECT_TRUE(still_warm->from_cache);

  // ...while mutating the R group forces a recomputation.
  CollectionDelta same_group;
  same_group.Insert("S1", T(4));
  ASSERT_TRUE(system->ApplyDelta(same_group).ok());
  ASSERT_TRUE(system->CheckConsistency().ok());
  auto recomputed = system->AnswerExact(query, domain);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed->from_cache);
}

TEST(WitnessRevalidationTest, OutOfRangeIndexIsAnError) {
  SourceCollection collection = TwoMirrors();
  Database witness;
  witness.AddFact("R", T(2));
  auto ok = WitnessSatisfiesSources(collection, witness, {0, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_FALSE(WitnessSatisfiesSources(collection, witness, {2}).ok());
}

}  // namespace
}  // namespace psc
