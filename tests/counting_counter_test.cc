#include "psc/counting/model_counter.h"

#include "gtest/gtest.h"
#include "psc/counting/confidence.h"
#include "psc/counting/linear_system.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

/// Counts worlds and per-fact containment by checking all 2^N subsets via
/// the explicit linear system — the independent oracle.
struct OracleCounts {
  BigInt total;
  std::vector<BigInt> per_fact;
};

OracleCounts Oracle(const IdentityInstance& instance) {
  auto system = LinearSystem::FromIdentityInstance(instance);
  EXPECT_TRUE(system.ok());
  OracleCounts counts;
  auto total = system->CountSolutionsBruteForce();
  EXPECT_TRUE(total.ok());
  counts.total = *total;
  for (size_t j = 0; j < instance.universe().size(); ++j) {
    auto with = system->CountSolutionsWithFixed(j, true);
    EXPECT_TRUE(with.ok());
    counts.per_fact.push_back(*with);
  }
  return counts;
}

void ExpectCounterMatchesOracle(const SourceCollection& collection,
                                const std::vector<Value>& domain) {
  auto instance = IdentityInstance::Create(collection, domain);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  auto outcome = counter.Count();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  const OracleCounts oracle = Oracle(*instance);
  EXPECT_EQ(outcome->world_count, oracle.total);
  for (size_t j = 0; j < instance->universe().size(); ++j) {
    auto group = instance->GroupIndexOf(instance->universe()[j]);
    ASSERT_TRUE(group.ok());
    EXPECT_EQ(outcome->worlds_containing[*group], oracle.per_fact[j])
        << "fact " << TupleToString(instance->universe()[j]);
  }
}

TEST(SignatureCounterTest, MatchesOracleOnOverlappingSources) {
  ExpectCounterMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      IntDomain(5));
}

TEST(SignatureCounterTest, MatchesOracleOnDisjointSources) {
  ExpectCounterMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/3", "1"),
                           MakeUnarySource("S2", {2, 3}, "1/3", "1/2")}),
      IntDomain(6));
}

TEST(SignatureCounterTest, MatchesOracleOnNestedSources) {
  ExpectCounterMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1, 2, 3}, "1/4", "1/4"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1")}),
      IntDomain(6));
}

TEST(SignatureCounterTest, MatchesOracleWithExactSource) {
  ExpectCounterMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1", "1"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      IntDomain(4));
}

TEST(SignatureCounterTest, MatchesOracleThreeSources) {
  ExpectCounterMatchesOracle(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1, 2}, "1/2", "2/3"),
                           MakeUnarySource("S2", {2, 3}, "1/2", "1/2"),
                           MakeUnarySource("S3", {3, 4}, "1/3", "1/2")}),
      IntDomain(6));
}

TEST(SignatureCounterTest, UnconstrainedCollectionCountsAllSubsets) {
  // c = s = 0: every subset of the universe is a possible world.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(10));
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  auto outcome = counter.Count();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->world_count.ToString(), "1024");  // 2^10
}

TEST(SignatureCounterTest, InconsistentCollectionCountsZero) {
  // Two exact sources with different extensions cannot both hold.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  auto outcome = counter.Count();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->world_count.IsZero());
}

TEST(SignatureCounterTest, FirstFeasibleShapeStopsEarly) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(12));
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  uint64_t visited = 0;
  auto first = counter.FirstFeasibleShape(uint64_t{1} << 26, &visited);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(visited, 1u);  // the empty world is feasible immediately
}

TEST(SignatureCounterTest, FeasibleShapesSumToWorldCount) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(5));
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  auto shapes = counter.FeasibleShapes();
  ASSERT_TRUE(shapes.ok());
  BigInt sum;
  for (const WorldShape& shape : *shapes) sum += shape.weight;
  auto outcome = counter.Count();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(sum, outcome->world_count);
  EXPECT_EQ(shapes->size(), outcome->feasible_shapes);
}

TEST(SignatureCounterTest, ShapeBudgetEnforced) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(8));
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter counter(&*instance, &binomials);
  EXPECT_EQ(counter.Count(/*max_shapes=*/3).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ConfidenceTableTest, CertainAndPossibleFacts) {
  // S1 exact on {0}: fact 0 is certain; fact 1 possible only.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1/2", "1"),
                           MakeUnarySource("S2", {0, 1}, "0", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(3));
  ASSERT_TRUE(instance.ok());
  auto table = ComputeBaseFactConfidences(*instance);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const std::vector<Tuple> certain = table->CertainFacts();
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(certain[0], U(0));
  const std::vector<Tuple> possible = table->PossibleFacts();
  EXPECT_GE(possible.size(), 2u);
  auto conf0 = table->ConfidenceOf(U(0));
  ASSERT_TRUE(conf0.ok());
  EXPECT_DOUBLE_EQ(*conf0, 1.0);
  EXPECT_EQ(table->ConfidenceOf(U(99)).status().code(),
            StatusCode::kNotFound);
}

TEST(ConfidenceTableTest, InconsistentCollectionIsAnError) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(ComputeBaseFactConfidences(*instance).status().code(),
            StatusCode::kInconsistent);
}

}  // namespace
}  // namespace psc
