#include "psc/relational/database.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

Fact F(const std::string& relation, int64_t a) {
  return Fact(relation, {Value(a)});
}

TEST(DatabaseTest, AddContainsRemove) {
  Database db;
  EXPECT_TRUE(db.AddFact(F("R", 1)));
  EXPECT_FALSE(db.AddFact(F("R", 1)));  // duplicate
  EXPECT_TRUE(db.Contains(F("R", 1)));
  EXPECT_FALSE(db.Contains(F("R", 2)));
  EXPECT_FALSE(db.Contains(F("S", 1)));
  EXPECT_TRUE(db.RemoveFact(F("R", 1)));
  EXPECT_FALSE(db.RemoveFact(F("R", 1)));
  EXPECT_TRUE(db.empty());
}

TEST(DatabaseTest, SizeCountsAcrossRelations) {
  Database db;
  db.AddFact(F("R", 1));
  db.AddFact(F("R", 2));
  db.AddFact(F("S", 1));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.GetRelation("R").size(), 2u);
  EXPECT_EQ(db.GetRelation("S").size(), 1u);
  EXPECT_TRUE(db.GetRelation("T").empty());
}

TEST(DatabaseTest, AllFactsDeterministicOrder) {
  Database db;
  db.AddFact(F("S", 9));
  db.AddFact(F("R", 2));
  db.AddFact(F("R", 1));
  const std::vector<Fact> facts = db.AllFacts();
  ASSERT_EQ(facts.size(), 3u);
  EXPECT_EQ(facts[0], F("R", 1));
  EXPECT_EQ(facts[1], F("R", 2));
  EXPECT_EQ(facts[2], F("S", 9));
}

TEST(DatabaseTest, EqualityIsStructural) {
  Database a;
  Database b;
  a.AddFact(F("R", 1));
  b.AddFact(F("R", 1));
  EXPECT_EQ(a, b);
  // A removed relation leaves no empty-set residue.
  a.AddFact(F("S", 1));
  a.RemoveFact(F("S", 1));
  EXPECT_EQ(a, b);
}

TEST(DatabaseTest, UnionAndSubset) {
  Database a;
  Database b;
  a.AddFact(F("R", 1));
  b.AddFact(F("R", 2));
  b.AddFact(F("S", 3));
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(Database().IsSubsetOf(b));
}

TEST(DatabaseTest, OrderingUsableAsMapKey) {
  Database a;
  Database b;
  a.AddFact(F("R", 1));
  b.AddFact(F("R", 2));
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(DatabaseTest, ToStringListsCanonically) {
  Database db;
  db.AddFact(F("S", 1));
  db.AddFact(F("R", 2));
  EXPECT_EQ(db.ToString(), "R(2)\nS(1)");
}

TEST(FactUniverseTest, UnaryAndBinaryCounts) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 1).ok());
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  const std::vector<Value> domain = {Value(int64_t{0}), Value(int64_t{1}),
                                     Value(int64_t{2})};
  auto universe = EnumerateFactUniverse(schema, domain);
  ASSERT_TRUE(universe.ok());
  EXPECT_EQ(universe->size(), 3u + 9u);
}

TEST(FactUniverseTest, ZeroArityRelationYieldsOneFact) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("Flag", 0).ok());
  auto universe = EnumerateFactUniverse(schema, {Value(int64_t{1})});
  ASSERT_TRUE(universe.ok());
  ASSERT_EQ(universe->size(), 1u);
  EXPECT_EQ((*universe)[0].relation(), "Flag");
  EXPECT_TRUE((*universe)[0].tuple().empty());
}

TEST(FactUniverseTest, DeterministicOdometerOrder) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  const std::vector<Value> domain = {Value(int64_t{0}), Value(int64_t{1})};
  auto universe = EnumerateFactUniverse(schema, domain);
  ASSERT_TRUE(universe.ok());
  ASSERT_EQ(universe->size(), 4u);
  EXPECT_EQ((*universe)[0].tuple(), (Tuple{Value(int64_t{0}), Value(int64_t{0})}));
  EXPECT_EQ((*universe)[1].tuple(), (Tuple{Value(int64_t{0}), Value(int64_t{1})}));
  EXPECT_EQ((*universe)[2].tuple(), (Tuple{Value(int64_t{1}), Value(int64_t{0})}));
  EXPECT_EQ((*universe)[3].tuple(), (Tuple{Value(int64_t{1}), Value(int64_t{1})}));
}

TEST(FactUniverseTest, CapEnforced) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("T", 3).ok());
  std::vector<Value> domain;
  for (int64_t i = 0; i < 100; ++i) domain.push_back(Value(i));
  auto universe = EnumerateFactUniverse(schema, domain, /*max_facts=*/1000);
  EXPECT_EQ(universe.status().code(), StatusCode::kResourceExhausted);
}

TEST(FactUniverseTest, EmptyDomainNonzeroArity) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 1).ok());
  auto universe = EnumerateFactUniverse(schema, {});
  // No constants → no facts over a unary relation.
  EXPECT_FALSE(universe.ok());
}

}  // namespace
}  // namespace psc
