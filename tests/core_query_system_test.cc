#include "psc/core/query_system.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

QuerySystem Example51System() {
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}));
  EXPECT_TRUE(system.ok());
  return std::move(system).ValueOrDie();
}

TEST(QuerySystemTest, CheckConsistencyDelegates) {
  const QuerySystem system = Example51System();
  auto report = system.CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
}

TEST(QuerySystemTest, BaseConfidencesMatchExample51) {
  const QuerySystem system = Example51System();
  auto table = system.BaseConfidences(IntDomain(4));  // m = 1 → 7 worlds
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->world_count.ToUint64(), 7u);
  EXPECT_NEAR(*table->ConfidenceOf(U(1)), 6.0 / 7.0, 1e-12);
}

TEST(QuerySystemTest, ExactAnswerIdentityQuery) {
  const QuerySystem system = Example51System();
  auto query = AlgebraExpr::Base("R", 1);
  auto answer = system.AnswerExact(query, IntDomain(4));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method, "exact-enumeration");
  EXPECT_EQ(answer->worlds_used, 7u);
  // No certain base fact (the empty-ish worlds drop each), possible = all
  // four facts.
  EXPECT_EQ(answer->possible.size(), 4u);
  EXPECT_NEAR(*answer->confidences.ConfidenceOf(U(1)), 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(*answer->confidences.ConfidenceOf(U(0)), 4.0 / 7.0, 1e-12);
}

TEST(QuerySystemTest, ExactAnswerMatchesBaseConfidences) {
  const QuerySystem system = Example51System();
  const std::vector<Value> domain = IntDomain(5);
  auto table = system.BaseConfidences(domain);
  ASSERT_TRUE(table.ok());
  auto answer = system.AnswerExact(AlgebraExpr::Base("R", 1), domain);
  ASSERT_TRUE(answer.ok());
  for (const TupleConfidence& entry : table->entries) {
    EXPECT_NEAR(*answer->confidences.ConfidenceOf(entry.tuple),
                entry.confidence, 1e-12)
        << TupleToString(entry.tuple);
  }
}

TEST(QuerySystemTest, CertainAnswersAppearWithExactSource) {
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1/2", "1"),
                           MakeUnarySource("S2", {0, 1}, "0", "1/2")}));
  ASSERT_TRUE(system.ok());
  auto answer = system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(3));
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->certain.size(), 1u);
  EXPECT_EQ(*answer->certain.begin(), U(0));
  EXPECT_NEAR(*answer->confidences.ConfidenceOf(U(0)), 1.0, 1e-12);
}

TEST(QuerySystemTest, InconsistentCollectionErrors) {
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")}));
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(2))
                .status()
                .code(),
            StatusCode::kInconsistent);
  EXPECT_EQ(system->AnswerCompositional(AlgebraExpr::Base("R", 1),
                                        IntDomain(2))
                .status()
                .code(),
            StatusCode::kInconsistent);
}

TEST(QuerySystemTest, CompositionalAgreesOnBaseQueries) {
  const QuerySystem system = Example51System();
  const std::vector<Value> domain = IntDomain(4);
  auto exact = system.AnswerExact(AlgebraExpr::Base("R", 1), domain);
  auto compositional =
      system.AnswerCompositional(AlgebraExpr::Base("R", 1), domain);
  ASSERT_TRUE(exact.ok() && compositional.ok());
  for (const auto& [tuple, confidence] : exact->confidences.entries()) {
    EXPECT_NEAR(*compositional->confidences.ConfidenceOf(tuple), confidence,
                1e-12);
  }
  EXPECT_EQ(compositional->method, "compositional");
}

TEST(QuerySystemTest, MonteCarloApproximatesExact) {
  const QuerySystem system = Example51System();
  const std::vector<Value> domain = IntDomain(4);
  auto plan = AlgebraExpr::Select(
      AlgebraExpr::Base("R", 1),
      {Condition::WithConstant(0, "Lt", Value(int64_t{2}))});
  auto exact = system.AnswerExact(plan, domain);
  ASSERT_TRUE(exact.ok());
  auto estimated = system.AnswerMonteCarlo(plan, domain, /*samples=*/20000,
                                           /*seed=*/99);
  ASSERT_TRUE(estimated.ok());
  EXPECT_EQ(estimated->method, "monte-carlo");
  EXPECT_EQ(estimated->worlds_used, 20000u);
  for (const auto& [tuple, confidence] : exact->confidences.entries()) {
    EXPECT_NEAR(*estimated->confidences.ConfidenceOf(tuple), confidence,
                0.02)
        << TupleToString(tuple);
  }
}

TEST(QuerySystemTest, NonIdentityCollectionFallsBackToBruteForce) {
  auto view = testing::Q("V(x) <- E(x, y), N(y)");
  auto source = SourceDescriptor::Create("J", view, {U(0)}, Rational::Zero(),
                                         Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  auto system = QuerySystem::Create(*collection);
  ASSERT_TRUE(system.ok());
  auto answer = system->AnswerExact(
      AlgebraExpr::Project(AlgebraExpr::Base("E", 2), {0}), IntDomain(2));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  // Every world contains some E(0, y) (the view must produce 0), so 0 is
  // a certain answer of π₀(E).
  EXPECT_EQ(answer->certain.count(U(0)), 1u);
  // Compositional and Monte-Carlo modes require identity views.
  EXPECT_EQ(system->AnswerCompositional(AlgebraExpr::Base("E", 2),
                                        IntDomain(2))
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(system->AnswerMonteCarlo(AlgebraExpr::Base("E", 2), IntDomain(2),
                                     10, 1)
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(QuerySystemTest, NullQueryRejected) {
  const QuerySystem system = Example51System();
  EXPECT_FALSE(system.AnswerExact(nullptr, IntDomain(3)).ok());
  EXPECT_FALSE(system.AnswerCompositional(nullptr, IntDomain(3)).ok());
  EXPECT_FALSE(system.AnswerMonteCarlo(nullptr, IntDomain(3), 1, 1).ok());
  EXPECT_FALSE(
      system.AnswerMonteCarlo(AlgebraExpr::Base("R", 1), IntDomain(3), 0, 1)
          .ok());
}

TEST(QuerySystemTest, CertainSubsetOfPossible) {
  const QuerySystem system = Example51System();
  auto answer = system.AnswerExact(AlgebraExpr::Base("R", 1), IntDomain(4));
  ASSERT_TRUE(answer.ok());
  for (const Tuple& tuple : answer->certain) {
    EXPECT_EQ(answer->possible.count(tuple), 1u);
  }
}

}  // namespace
}  // namespace psc
