// Theorem 3.2 and Lemma 3.3: the reduction chain
// HITTING SET → HS* → CONSISTENCY preserves solvability, and the witness
// worlds map back to hitting sets.

#include "psc/consistency/hitting_set.h"

#include "gtest/gtest.h"
#include "psc/consistency/identity_consistency.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

HittingSetInstance Instance(int64_t universe, int64_t budget,
                            std::vector<std::vector<int64_t>> subsets) {
  HittingSetInstance instance;
  instance.universe_size = universe;
  instance.budget = budget;
  instance.subsets = std::move(subsets);
  return instance;
}

bool Hits(const std::vector<int64_t>& hitting_set,
          const HittingSetInstance& instance) {
  for (const auto& subset : instance.subsets) {
    bool hit = false;
    for (const int64_t e : subset) {
      if (std::find(hitting_set.begin(), hitting_set.end(), e) !=
          hitting_set.end()) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return static_cast<int64_t>(hitting_set.size()) <= instance.budget;
}

TEST(HittingSetTest, ValidationCatchesBadInstances) {
  EXPECT_FALSE(Instance(3, 1, {{}}).Validate().ok());          // empty subset
  EXPECT_FALSE(Instance(3, 1, {{5}}).Validate().ok());         // out of range
  EXPECT_FALSE(Instance(3, 1, {{0, 0}}).Validate().ok());      // duplicate
  EXPECT_FALSE(Instance(3, -1, {{0}}).Validate().ok());        // bad budget
  EXPECT_TRUE(Instance(3, 1, {{0, 2}}).Validate().ok());
}

TEST(HittingSetTest, IsHsStarChecksLastSingleton) {
  EXPECT_TRUE(Instance(3, 1, {{0, 1}, {2}}).IsHsStar());
  EXPECT_FALSE(Instance(3, 1, {{2}, {0, 1}}).IsHsStar());
  EXPECT_FALSE(Instance(3, 1, {}).IsHsStar());
}

TEST(BranchAndBoundTest, SolvesSmallInstances) {
  // Two disjoint pairs need 2 elements.
  auto two = SolveHittingSet(Instance(4, 2, {{0, 1}, {2, 3}}));
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(two->solvable);
  EXPECT_TRUE(Hits(two->hitting_set, Instance(4, 2, {{0, 1}, {2, 3}})));

  auto one = SolveHittingSet(Instance(4, 1, {{0, 1}, {2, 3}}));
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(one->solvable);

  // A shared element lets budget 1 suffice.
  auto shared = SolveHittingSet(Instance(4, 1, {{0, 1}, {1, 2}}));
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(shared->solvable);
  EXPECT_EQ(shared->hitting_set, std::vector<int64_t>{1});
}

TEST(BranchAndBoundTest, NoSubsetsIsTriviallySolvable) {
  auto result = SolveHittingSet(Instance(3, 0, {}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->solvable);
  EXPECT_TRUE(result->hitting_set.empty());
}

TEST(BranchAndBoundTest, NodeBudgetEnforced) {
  Rng rng(3);
  const HittingSetInstance instance =
      MakeRandomHittingSet(20, 30, 4, 6, &rng);
  EXPECT_EQ(SolveHittingSet(instance, /*max_nodes=*/2).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ReductionTest, HsToHsStarAddsSingleton) {
  const HittingSetInstance original = Instance(3, 1, {{0, 1}});
  const HittingSetInstance star = ReduceHsToHsStar(original);
  EXPECT_EQ(star.universe_size, 4);
  EXPECT_EQ(star.budget, 2);
  ASSERT_EQ(star.subsets.size(), 2u);
  EXPECT_EQ(star.subsets.back(), std::vector<int64_t>{3});
  EXPECT_TRUE(star.IsHsStar());
}

TEST(ReductionTest, HsStarToConsistencyShape) {
  const HittingSetInstance star = Instance(3, 2, {{0, 1}, {2}});
  auto collection = ReduceHsStarToConsistency(star);
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  ASSERT_EQ(collection->size(), 2u);
  EXPECT_TRUE(collection->AllIdentityViews());
  // cᵢ = 1/K, sᵢ = 1/|Aᵢ| per the paper's construction.
  EXPECT_EQ(collection->source(0).completeness_bound(), Rational(1, 2));
  EXPECT_EQ(collection->source(0).soundness_bound(), Rational(1, 2));
  EXPECT_EQ(collection->source(1).soundness_bound(), Rational::One());
  EXPECT_EQ(collection->source(0).extension_size(), 2u);
}

TEST(ReductionTest, RequiresHsStarPromise) {
  EXPECT_EQ(ReduceHsStarToConsistency(Instance(3, 1, {{0, 1}}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ReductionTest, EndToEndAgreesWithBranchAndBound) {
  const std::vector<HittingSetInstance> instances = {
      Instance(4, 2, {{0, 1}, {2, 3}}),
      Instance(4, 1, {{0, 1}, {2, 3}}),
      Instance(4, 1, {{0, 1}, {1, 2}}),
      Instance(5, 2, {{0, 1}, {1, 2}, {3, 4}, {0, 4}}),
      Instance(5, 1, {{0, 1}, {1, 2}, {3, 4}, {0, 4}}),
      Instance(3, 0, {}),
      Instance(6, 3, {{0}, {1}, {2}}),
      Instance(6, 2, {{0}, {1}, {2}}),
  };
  for (const HittingSetInstance& instance : instances) {
    auto direct = SolveHittingSet(instance);
    ASSERT_TRUE(direct.ok());
    auto via = SolveHittingSetViaConsistency(instance);
    ASSERT_TRUE(via.ok()) << via.status().ToString() << "\n"
                          << instance.ToString();
    EXPECT_EQ(direct->solvable, via->solvable) << instance.ToString();
    if (via->solvable) {
      EXPECT_TRUE(Hits(via->hitting_set, instance))
          << instance.ToString() << " got set of size "
          << via->hitting_set.size();
    }
  }
}

TEST(ReductionTest, RandomizedAgreement) {
  Rng rng(20010701);
  for (int trial = 0; trial < 30; ++trial) {
    const HittingSetInstance instance = MakeRandomHittingSet(
        /*universe_size=*/rng.UniformInt(3, 6),
        /*num_subsets=*/rng.UniformInt(1, 5),
        /*max_subset_size=*/3,
        /*budget=*/rng.UniformInt(0, 3), &rng);
    auto direct = SolveHittingSet(instance);
    ASSERT_TRUE(direct.ok());
    auto via = SolveHittingSetViaConsistency(instance);
    ASSERT_TRUE(via.ok()) << instance.ToString();
    EXPECT_EQ(direct->solvable, via->solvable) << instance.ToString();
    if (via->solvable) {
      EXPECT_TRUE(Hits(via->hitting_set, instance));
    }
  }
}

TEST(ReductionTest, CorollaryFragmentIsIdentityOnly) {
  // Corollary 3.4: the reduction lands entirely inside the identity-view
  // fragment over one relation — verify the checker accepts it natively.
  const HittingSetInstance star = Instance(4, 2, {{0, 1, 2}, {3}});
  auto collection = ReduceHsStarToConsistency(star);
  ASSERT_TRUE(collection.ok());
  auto report = CheckIdentityConsistency(*collection);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

}  // namespace
}  // namespace psc
