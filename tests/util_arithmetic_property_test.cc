// Randomized cross-validation of the exact-arithmetic substrate against
// native 128-bit integers — the layer every counter and threshold rests on.

#include "gtest/gtest.h"
#include "psc/util/bigint.h"
#include "psc/util/random.h"
#include "psc/util/rational.h"

namespace psc {
namespace {

using U128 = unsigned __int128;

std::string U128ToString(U128 value) {
  if (value == 0) return "0";
  std::string out;
  while (value != 0) {
    out.insert(out.begin(), static_cast<char>('0' + value % 10));
    value /= 10;
  }
  return out;
}

TEST(BigIntPropertyTest, AddSubMulAgreeWithNative128) {
  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t a = static_cast<uint64_t>(rng.engine()());
    const uint64_t b = static_cast<uint64_t>(rng.engine()());
    const BigInt big_a(a);
    const BigInt big_b(b);
    EXPECT_EQ((big_a + big_b).ToString(), U128ToString(U128(a) + b));
    EXPECT_EQ((big_a * big_b).ToString(), U128ToString(U128(a) * b));
    const BigInt& larger = a >= b ? big_a : big_b;
    const BigInt& smaller = a >= b ? big_b : big_a;
    EXPECT_EQ((larger - smaller).ToUint64(), a >= b ? a - b : b - a);
    EXPECT_EQ(big_a.Compare(big_b), a < b ? -1 : (a == b ? 0 : 1));
  }
}

TEST(BigIntPropertyTest, DivU32IsEuclidean) {
  Rng rng(2027);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t a = static_cast<uint64_t>(rng.engine()());
    const uint32_t d = static_cast<uint32_t>(rng.UniformInt(1, 1 << 30));
    BigInt quotient(a);
    const uint32_t remainder = quotient.DivU32(d);
    EXPECT_EQ(quotient.ToUint64(), a / d);
    EXPECT_EQ(remainder, a % d);
    // Reconstruct: q·d + r == a.
    BigInt reconstructed = quotient;
    reconstructed.MulU32(d);
    reconstructed += BigInt(remainder);
    EXPECT_EQ(reconstructed.ToUint64(), a);
  }
}

TEST(BigIntPropertyTest, MultiLimbAssociativityAndDistributivity) {
  Rng rng(2028);
  for (int trial = 0; trial < 100; ++trial) {
    const BigInt a(static_cast<uint64_t>(rng.engine()()));
    const BigInt b(static_cast<uint64_t>(rng.engine()()));
    const BigInt c(static_cast<uint64_t>(rng.engine()()));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(RationalPropertyTest, FieldLawsOnRandomGrid) {
  Rng rng(2029);
  const auto random_rational = [&]() {
    return Rational(rng.UniformInt(-20, 20), rng.UniformInt(1, 20));
  };
  for (int trial = 0; trial < 300; ++trial) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational::Zero());
    if (!b.IsZero()) {
      EXPECT_EQ(a / b * b, a);
    }
    // Order compatibility: a < b ⟹ a + c < b + c.
    if (a < b) {
      EXPECT_LT(a + c, b + c);
    }
  }
}

TEST(RationalPropertyTest, ThresholdsAgreeWithExactDefinition) {
  // MulCeil/MulFloor/DivFloor against a slow exact reference.
  Rng rng(2030);
  for (int trial = 0; trial < 500; ++trial) {
    const int64_t num = rng.UniformInt(0, 12);
    const int64_t den = rng.UniformInt(1, 12);
    const int64_t k = rng.UniformInt(0, 40);
    const Rational r(num, den);
    // ceil(num·k / den), floor(num·k / den) via integer arithmetic.
    const int64_t prod = num * k;
    EXPECT_EQ(r.MulCeil(k), (prod + den - 1) / den) << num << "/" << den
                                                    << " k=" << k;
    EXPECT_EQ(r.MulFloor(k), prod / den);
    if (num > 0) {
      EXPECT_EQ(r.DivFloor(k), (k * den) / num);
    }
  }
}

TEST(RationalPropertyTest, ParsePrintRoundTrip) {
  Rng rng(2031);
  for (int trial = 0; trial < 200; ++trial) {
    const Rational original(rng.UniformInt(-1000, 1000),
                            rng.UniformInt(1, 1000));
    auto reparsed = Rational::Parse(original.ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*reparsed, original);
  }
}

TEST(BigIntPropertyTest, RatioToDoubleMatchesNativeForSmallValues) {
  Rng rng(2032);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t num = rng.UniformInt(0, 1 << 30);
    const uint64_t den = rng.UniformInt(1, 1 << 30);
    EXPECT_NEAR(BigInt::RatioToDouble(BigInt(num), BigInt(den)),
                static_cast<double>(num) / static_cast<double>(den),
                1e-12);
  }
}

}  // namespace
}  // namespace psc
