// Integration tests for deadlines and node budgets threaded through
// QuerySystem: consistency degrades to kUnknown, Monte-Carlo returns a
// truncated partial answer, exact enumeration fails cleanly, and disabled
// limits leave every result identical to the default configuration.

#include <chrono>
#include <string>

#include "gtest/gtest.h"
#include "psc/algebra/expression.h"
#include "psc/core/query_system.h"
#include "psc/parser/parser.h"
#include "psc/util/status.h"
#include "test_util.h"

namespace psc {
namespace {

using psc::testing::IntDomain;
using psc::testing::MakeUnaryCollection;
using psc::testing::MakeUnarySource;
using psc::testing::U;

/// An inconsistent non-identity collection whose canonical-freeze search
/// must grind through millions of allowable combinations before giving up:
/// `Blocker` forces R ∩ M = ∅ (completeness 1 over an empty extension)
/// while the two wide sources each demand ≥ 6 of their 12 facts in R ∩ M
/// (soundness 1/2), giving ~2510² candidate combinations, none of which
/// can be a witness. The join bodies keep every view non-identity so the
/// checker cannot shortcut through the exact signature counter.
SourceCollection HardConsistencyCollection() {
  std::string text =
      "source Blocker {\n"
      "  view: V0(x) <- R(x), M(x)\n"
      "  completeness: 1\n"
      "  soundness: 0\n"
      "}\n";
  for (int s = 0; s < 2; ++s) {
    text += "source Wide" + std::to_string(s) +
            " {\n"
            "  view: V" +
            std::to_string(s + 1) +
            "(x) <- R(x), M(x)\n"
            "  completeness: 0\n"
            "  soundness: 1/2\n"
            "  facts: ";
    for (int i = 0; i < 12; ++i) {
      if (i > 0) text += ", ";
      text += "(" + std::to_string(s * 12 + i + 1) + ")";
    }
    text += "\n}\n";
  }
  auto collection = ParseCollection(text);
  EXPECT_TRUE(collection.ok()) << collection.status().ToString();
  return std::move(collection).ValueOrDie();
}

/// Example 5.1: two unary identity sources, 7 possible worlds over {0..3}.
SourceCollection Example51Collection() {
  return MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                              MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
}

class DeadlineConsistencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeadlineConsistencyTest, HugeInstanceDegradesToUnknownPromptly) {
  QuerySystem::Options options;
  options.threads = GetParam();
  options.deadline_ms = 50;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem system,
      QuerySystem::Create(HardConsistencyCollection(), options));

  const auto start = std::chrono::steady_clock::now();
  PSC_ASSERT_OK_AND_ASSIGN(const ConsistencyReport report,
                           system.CheckConsistency());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(report.verdict, ConsistencyVerdict::kUnknown);
  EXPECT_NE(report.unknown_reason.find("deadline"), std::string::npos)
      << report.unknown_reason;
  // Promptness: cooperative polling plus per-combination charges should
  // stop the search within a small multiple of the 50 ms deadline. The
  // bound is deliberately loose for sanitizer / loaded-CI builds; the
  // unbounded search takes orders of magnitude longer.
  EXPECT_LT(elapsed.count(), 10000) << "took " << elapsed.count() << " ms";
}

INSTANTIATE_TEST_SUITE_P(Threads, DeadlineConsistencyTest,
                         ::testing::Values(size_t{1}, size_t{4}));

TEST(DeadlineDisabledTest, ZeroLimitsMatchDefaultOptions) {
  PSC_ASSERT_OK_AND_ASSIGN(const QuerySystem baseline,
                           QuerySystem::Create(Example51Collection()));
  QuerySystem::Options options;
  options.threads = 1;
  options.deadline_ms = 0;
  options.node_budget = 0;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem limited,
      QuerySystem::Create(Example51Collection(), options));

  PSC_ASSERT_OK_AND_ASSIGN(const ConsistencyReport base_report,
                           baseline.CheckConsistency());
  PSC_ASSERT_OK_AND_ASSIGN(const ConsistencyReport limited_report,
                           limited.CheckConsistency());
  EXPECT_EQ(base_report.verdict, limited_report.verdict);
  EXPECT_EQ(base_report.method, limited_report.method);

  const AlgebraExprPtr plan = AlgebraExpr::Base("R", 1);
  PSC_ASSERT_OK_AND_ASSIGN(const QueryAnswer base_answer,
                           baseline.AnswerExact(plan, IntDomain(4)));
  PSC_ASSERT_OK_AND_ASSIGN(const QueryAnswer limited_answer,
                           limited.AnswerExact(plan, IntDomain(4)));
  EXPECT_EQ(base_answer.worlds_used, limited_answer.worlds_used);
  EXPECT_EQ(base_answer.certain, limited_answer.certain);
  EXPECT_EQ(base_answer.possible, limited_answer.possible);
  EXPECT_FALSE(limited_answer.truncated);
  EXPECT_TRUE(limited_answer.truncation_reason.empty());
}

TEST(NodeBudgetTest, MonteCarloTruncatesToPartialAnswerSequential) {
  QuerySystem::Options options;
  options.threads = 1;
  options.node_budget = 100;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem system,
      QuerySystem::Create(Example51Collection(), options));
  const AlgebraExprPtr plan = AlgebraExpr::Base("R", 1);
  PSC_ASSERT_OK_AND_ASSIGN(
      const QueryAnswer answer,
      system.AnswerMonteCarlo(plan, IntDomain(4), /*samples=*/100000,
                              /*seed=*/7));
  EXPECT_TRUE(answer.truncated);
  EXPECT_NE(answer.truncation_reason.find("node budget"), std::string::npos)
      << answer.truncation_reason;
  EXPECT_EQ(answer.method, "monte-carlo");
  // The sequential loop draws exactly one sample per successful charge.
  EXPECT_EQ(answer.worlds_used, 100u);
  // The partial estimate is still well formed: frequencies in [0, 1].
  for (const auto& [tuple, confidence] : answer.confidences.entries()) {
    EXPECT_GE(confidence, 0.0);
    EXPECT_LE(confidence, 1.0);
  }
}

TEST(NodeBudgetTest, MonteCarloTruncatesToPartialAnswerParallel) {
  QuerySystem::Options options;
  options.threads = 4;
  options.node_budget = 100;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem system,
      QuerySystem::Create(Example51Collection(), options));
  const AlgebraExprPtr plan = AlgebraExpr::Base("R", 1);
  PSC_ASSERT_OK_AND_ASSIGN(
      const QueryAnswer answer,
      system.AnswerMonteCarlo(plan, IntDomain(4), /*samples=*/100000,
                              /*seed=*/7));
  EXPECT_TRUE(answer.truncated);
  EXPECT_FALSE(answer.truncation_reason.empty());
  // Workers stop at the shared counter: at most one sample per charge.
  EXPECT_GT(answer.worlds_used, 0u);
  EXPECT_LE(answer.worlds_used, 100u);
}

TEST(NodeBudgetTest, ExactEnumerationFailsCleanly) {
  QuerySystem::Options options;
  options.threads = 1;
  options.node_budget = 2;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem system,
      QuerySystem::Create(Example51Collection(), options));
  const AlgebraExprPtr plan = AlgebraExpr::Base("R", 1);
  const auto result = system.AnswerExact(plan, IntDomain(4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
}

TEST(NodeBudgetTest, ConsistencyDegradesToUnknown) {
  QuerySystem::Options options;
  options.threads = 1;
  options.node_budget = 4;
  PSC_ASSERT_OK_AND_ASSIGN(
      const QuerySystem system,
      QuerySystem::Create(HardConsistencyCollection(), options));
  PSC_ASSERT_OK_AND_ASSIGN(const ConsistencyReport report,
                           system.CheckConsistency());
  EXPECT_EQ(report.verdict, ConsistencyVerdict::kUnknown);
  EXPECT_NE(report.unknown_reason.find("node budget"), std::string::npos)
      << report.unknown_reason;
}

}  // namespace
}  // namespace psc
