// Monotonicity properties of poss(S):
//   * raising any source's soundness or completeness bound shrinks poss(S);
//   * adding a source shrinks poss(S);
//   * the Lemma 3.1 small-model property: a consistent collection always
//     has a witness within the size bound.

#include <set>

#include "gtest/gtest.h"
#include "psc/consistency/identity_consistency.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;

std::set<Database> Worlds(const SourceCollection& collection,
                          int64_t universe) {
  BruteForceWorldEnumerator enumerator(&collection, IntDomain(universe));
  auto worlds = enumerator.CollectPossibleWorlds();
  EXPECT_TRUE(worlds.ok());
  return std::set<Database>(worlds->begin(), worlds->end());
}

Result<SourceCollection> WithBounds(const SourceCollection& base,
                                    size_t index, Rational completeness,
                                    Rational soundness) {
  std::vector<SourceDescriptor> sources;
  for (size_t i = 0; i < base.size(); ++i) {
    const SourceDescriptor& source = base.source(i);
    if (i == index) {
      PSC_ASSIGN_OR_RETURN(
          SourceDescriptor replaced,
          SourceDescriptor::Create(source.name(), source.view(),
                                   source.extension(), completeness,
                                   soundness));
      sources.push_back(std::move(replaced));
    } else {
      sources.push_back(source);
    }
  }
  return SourceCollection::Create(std::move(sources));
}

TEST(MonotonicityTest, TighterBoundsShrinkPossSet) {
  Rng rng(555);
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 3;
  config.bound_granularity = 4;
  for (int trial = 0; trial < 25; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    const std::set<Database> base_worlds = Worlds(*collection, 4);
    for (size_t i = 0; i < collection->size(); ++i) {
      const SourceDescriptor& source = collection->source(i);
      // Bump each bound by 1/4, capped at 1.
      Rational c = source.completeness_bound() + Rational(1, 4);
      if (Rational::One() < c) c = Rational::One();
      Rational s = source.soundness_bound() + Rational(1, 4);
      if (Rational::One() < s) s = Rational::One();
      auto tighter = WithBounds(*collection, i, c, s);
      ASSERT_TRUE(tighter.ok());
      const std::set<Database> tighter_worlds = Worlds(*tighter, 4);
      for (const Database& world : tighter_worlds) {
        EXPECT_EQ(base_worlds.count(world), 1u)
            << "tightening source " << i << " grew poss(S)\n"
            << collection->ToString();
      }
    }
  }
}

TEST(MonotonicityTest, AddingASourceShrinksPossSet) {
  Rng rng(777);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 3;
  for (int trial = 0; trial < 25; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    std::vector<SourceDescriptor> prefix(collection->sources().begin(),
                                         collection->sources().end() - 1);
    auto smaller = SourceCollection::Create(std::move(prefix));
    ASSERT_TRUE(smaller.ok());
    const std::set<Database> small_worlds = Worlds(*smaller, 4);
    const std::set<Database> full_worlds = Worlds(*collection, 4);
    for (const Database& world : full_worlds) {
      EXPECT_EQ(small_worlds.count(world), 1u);
    }
  }
}

TEST(MonotonicityTest, Lemma31WitnessWithinBound) {
  Rng rng(888);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 5;
  config.min_extension = 1;
  config.max_extension = 4;
  int consistent_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto report = CheckIdentityConsistency(*collection);
    ASSERT_TRUE(report.ok());
    if (!report->consistent) continue;
    ++consistent_seen;
    EXPECT_LE(report->witness->size(), collection->WitnessSizeBound())
        << collection->ToString();
  }
  EXPECT_GT(consistent_seen, 0);
}

TEST(MonotonicityTest, ZeroBoundsAreAlwaysConsistent) {
  Rng rng(999);
  RandomIdentityConfig config;
  config.num_sources = 4;
  config.universe_size = 5;
  config.min_extension = 1;
  config.max_extension = 5;
  config.bound_granularity = 1;
  for (int trial = 0; trial < 10; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    std::vector<SourceDescriptor> relaxed;
    for (const SourceDescriptor& source : collection->sources()) {
      auto zeroed = SourceDescriptor::Create(
          source.name(), source.view(), source.extension(),
          Rational::Zero(), Rational::Zero());
      ASSERT_TRUE(zeroed.ok());
      relaxed.push_back(std::move(*zeroed));
    }
    auto zero_collection = SourceCollection::Create(std::move(relaxed));
    ASSERT_TRUE(zero_collection.ok());
    auto report = CheckIdentityConsistency(*zero_collection);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->consistent);
  }
}

}  // namespace
}  // namespace psc
