#include "psc/tableau/tableau.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

Term V(const std::string& name) { return Term::Var(name); }
Term C(int64_t v) { return Term::ConstInt(v); }
Term CS(const char* v) { return Term::ConstStr(v); }

TEST(SubstitutionTest, AppliesToTermsAndAtoms) {
  Substitution subst = {{"x", C(1)}, {"y", V("z")}};
  EXPECT_EQ(ApplySubstitution(V("x"), subst), C(1));
  EXPECT_EQ(ApplySubstitution(V("y"), subst), V("z"));
  EXPECT_EQ(ApplySubstitution(V("w"), subst), V("w"));  // outside domain
  EXPECT_EQ(ApplySubstitution(C(9), subst), C(9));      // constants fixed

  Atom atom("R", {V("x"), V("y"), C(7)});
  const Atom mapped = ApplySubstitution(atom, subst);
  EXPECT_EQ(mapped, Atom("R", {C(1), V("z"), C(7)}));
}

TEST(SubstitutionTest, AppliesToTableauxWithMerging) {
  // Two atoms collapse to one under the substitution.
  Tableau tableau = {Atom("R", {V("x")}), Atom("R", {V("y")})};
  Substitution collapse = {{"x", V("z")}, {"y", V("z")}};
  const Tableau mapped = ApplySubstitution(tableau, collapse);
  EXPECT_EQ(mapped.size(), 1u);
  EXPECT_EQ(*mapped.begin(), Atom("R", {V("z")}));
}

TEST(TableauVariablesTest, CollectsAcrossAtoms) {
  Tableau tableau = {Atom("R", {V("x"), C(1)}), Atom("S", {V("y"), V("x")})};
  EXPECT_EQ(TableauVariables(tableau), (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(TableauVariables({}).empty());
}

Database SmallDb() {
  Database db;
  db.AddFact("R", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("R", {Value(int64_t{2}), Value(int64_t{3})});
  db.AddFact("S", {Value(int64_t{2})});
  return db;
}

TEST(EmbeddingTest, FindsAllHomomorphisms) {
  // R(x,y) embeds twice.
  Tableau tableau = {Atom("R", {V("x"), V("y")})};
  int count = 0;
  EXPECT_TRUE(ForEachEmbedding(tableau, SmallDb(), [&](const Valuation& v) {
    EXPECT_EQ(v.size(), 2u);
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 2);
}

TEST(EmbeddingTest, JoinAcrossAtoms) {
  // R(x,y), S(y): only y = 2 works.
  Tableau tableau = {Atom("R", {V("x"), V("y")}), Atom("S", {V("y")})};
  int count = 0;
  ForEachEmbedding(tableau, SmallDb(), [&](const Valuation& v) {
    EXPECT_EQ(v.at("x"), Value(int64_t{1}));
    EXPECT_EQ(v.at("y"), Value(int64_t{2}));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(EmbeddingTest, ConstantsMustMatch) {
  Tableau ok = {Atom("R", {C(1), V("y")})};
  EXPECT_TRUE(HasEmbedding(ok, SmallDb()));
  Tableau bad = {Atom("R", {C(9), V("y")})};
  EXPECT_FALSE(HasEmbedding(bad, SmallDb()));
}

TEST(EmbeddingTest, RepeatedVariablesForceEquality) {
  Tableau diagonal = {Atom("R", {V("x"), V("x")})};
  EXPECT_FALSE(HasEmbedding(diagonal, SmallDb()));
  Database with_loop = SmallDb();
  with_loop.AddFact("R", {Value(int64_t{5}), Value(int64_t{5})});
  EXPECT_TRUE(HasEmbedding(diagonal, with_loop));
}

TEST(EmbeddingTest, EmptyTableauEmbedsTrivially) {
  int count = 0;
  ForEachEmbedding({}, SmallDb(), [&](const Valuation& v) {
    EXPECT_TRUE(v.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(HasEmbedding({}, Database()));
}

TEST(EmbeddingTest, EarlyStop) {
  Tableau tableau = {Atom("R", {V("x"), V("y")})};
  int count = 0;
  const bool completed =
      ForEachEmbedding(tableau, SmallDb(), [&](const Valuation&) {
        ++count;
        return false;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1);
}

TEST(EmbeddingTest, MissingRelationMeansNoEmbedding) {
  Tableau tableau = {Atom("Missing", {V("x")})};
  EXPECT_FALSE(HasEmbedding(tableau, SmallDb()));
}

TEST(TableauToStringTest, CanonicalOrder) {
  Tableau tableau = {Atom("S", {CS("b")}), Atom("R", {C(1)})};
  EXPECT_EQ(TableauToString(tableau), "{R(1), S(\"b\")}");
}

}  // namespace
}  // namespace psc
