#include "psc/workload/cache_workload.h"

#include "gtest/gtest.h"
#include "psc/consistency/identity_consistency.h"
#include "test_util.h"

namespace psc {
namespace {

TEST(CacheWorkloadTest, GeneratesRequestedShape) {
  CacheConfig config;
  config.num_objects = 50;
  config.num_caches = 3;
  config.coverage = 0.6;
  config.staleness = 0.1;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->collection.size(), 3u);
  EXPECT_EQ(workload->live_objects.size(), 50u);
  EXPECT_TRUE(workload->collection.AllIdentityViews());
}

TEST(CacheWorkloadTest, TruthIsAPossibleWorld) {
  CacheConfig config;
  config.num_objects = 40;
  config.num_caches = 4;
  config.coverage = 0.5;
  config.staleness = 0.2;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());
  Database truth;
  for (const int64_t id : workload->live_objects) {
    truth.AddFact("Object", {Value(id)});
  }
  EXPECT_TRUE(*workload->collection.IsPossibleWorld(truth));
}

TEST(CacheWorkloadTest, StalenessShowsUpInBounds) {
  CacheConfig fresh;
  fresh.staleness = 0.0;
  fresh.coverage = 1.0;
  auto fresh_workload = MakeCacheWorkload(fresh);
  ASSERT_TRUE(fresh_workload.ok());
  for (const auto& source : fresh_workload->collection.sources()) {
    EXPECT_EQ(source.soundness_bound(), Rational::One());
    EXPECT_EQ(source.completeness_bound(), Rational::One());
  }
  CacheConfig stale;
  stale.staleness = 0.4;
  stale.coverage = 1.0;
  auto stale_workload = MakeCacheWorkload(stale);
  ASSERT_TRUE(stale_workload.ok());
  for (const auto& source : stale_workload->collection.sources()) {
    EXPECT_LT(source.soundness_bound(), Rational::One());
  }
}

TEST(CacheWorkloadTest, CollectionIsConsistent) {
  CacheConfig config;
  config.num_objects = 30;
  config.num_caches = 3;
  config.coverage = 0.5;
  config.staleness = 0.15;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());
  auto report = CheckIdentityConsistency(workload->collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent);
}

TEST(CacheWorkloadTest, ValidationRejectsBadConfig) {
  CacheConfig bad;
  bad.num_objects = 0;
  EXPECT_FALSE(MakeCacheWorkload(bad).ok());
  CacheConfig bad_rate;
  bad_rate.coverage = 1.5;
  EXPECT_FALSE(MakeCacheWorkload(bad_rate).ok());
}

TEST(CacheWorkloadTest, DeterministicPerSeed) {
  CacheConfig config;
  config.seed = 123;
  auto a = MakeCacheWorkload(config);
  auto b = MakeCacheWorkload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->collection.size(), b->collection.size());
  for (size_t i = 0; i < a->collection.size(); ++i) {
    EXPECT_EQ(a->collection.source(i).extension(),
              b->collection.source(i).extension());
  }
}

}  // namespace
}  // namespace psc
