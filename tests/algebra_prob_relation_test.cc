#include "psc/algebra/prob_relation.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::U;

TEST(ProbRelationTest, InsertAndLookup) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 0.5).ok());
  ASSERT_TRUE(rel.Insert(U(2), 1.0).ok());
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(1)), 0.5);
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(2)), 1.0);
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(3)), 0.0);  // absent = 0
}

TEST(ProbRelationTest, ZeroConfidenceNotStored) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 0.0).ok());
  EXPECT_TRUE(rel.empty());
}

TEST(ProbRelationTest, ValidationErrors) {
  ProbRelation rel(2);
  EXPECT_EQ(rel.Insert(U(1), 0.5).code(),
            StatusCode::kInvalidArgument);  // arity
  EXPECT_EQ(rel.Insert({Value(int64_t{1}), Value(int64_t{2})}, 1.5).code(),
            StatusCode::kInvalidArgument);  // range
  EXPECT_EQ(rel.Insert({Value(int64_t{1}), Value(int64_t{2})}, -0.1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rel.ConfidenceOf(U(1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProbRelationTest, DuplicateInsertRejectedMergeCombines) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 0.5).ok());
  EXPECT_EQ(rel.Insert(U(1), 0.5).code(), StatusCode::kInvalidArgument);
  // ⊕: 1 − (1−0.5)(1−0.5) = 0.75.
  ASSERT_TRUE(rel.Merge(U(1), 0.5).ok());
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(1)), 0.75);
  // Merging into an absent tuple behaves like insert.
  ASSERT_TRUE(rel.Merge(U(2), 0.25).ok());
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(2)), 0.25);
}

TEST(ProbRelationTest, MergeWithCertainTupleStaysCertain) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 1.0).ok());
  ASSERT_TRUE(rel.Merge(U(1), 0.3).ok());
  EXPECT_DOUBLE_EQ(*rel.ConfidenceOf(U(1)), 1.0);
}

TEST(ProbRelationTest, ThresholdSelection) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 1.0).ok());
  ASSERT_TRUE(rel.Insert(U(2), 0.5).ok());
  ASSERT_TRUE(rel.Insert(U(3), 0.2).ok());
  EXPECT_EQ(rel.TuplesWithConfidenceAtLeast(1.0).size(), 1u);
  EXPECT_EQ(rel.TuplesWithConfidenceAtLeast(0.5).size(), 2u);
  EXPECT_EQ(rel.TuplesWithConfidenceAtLeast(0.0).size(), 3u);
}

TEST(ProbRelationTest, FromRelationLiftsWithConfidenceOne) {
  Relation base = {U(1), U(2)};
  const ProbRelation lifted = ProbRelation::FromRelation(base, 1);
  EXPECT_EQ(lifted.size(), 2u);
  EXPECT_DOUBLE_EQ(*lifted.ConfidenceOf(U(1)), 1.0);
}

TEST(ProbRelationTest, ToStringShowsEntries) {
  ProbRelation rel(1);
  ASSERT_TRUE(rel.Insert(U(1), 0.5).ok());
  EXPECT_EQ(rel.ToString(), "(1) : 0.5");
}

}  // namespace
}  // namespace psc
