#include "psc/sync/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "psc/sync/rank.h"

namespace psc::sync {
namespace {

// Tests that observe the held-lock stack must opt in: bookkeeping is off
// by default in Release builds (see RankCheckingEnabled()).
class HeldStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = RankCheckingEnabled();
    SetRankCheckingEnabled(true);
  }
  void TearDown() override { SetRankCheckingEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST(MutexTest, NameAndRankAccessors) {
  Mutex mu("test.mutex", 42);
  EXPECT_STREQ(mu.name(), "test.mutex");
  EXPECT_EQ(mu.rank(), 42);
  SharedMutex smu("test.shared", 7);
  EXPECT_STREQ(smu.name(), "test.shared");
  EXPECT_EQ(smu.rank(), 7);
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu("test.excl", 10);
  int counter = 0;  // guarded by mu (local, so annotated informally)
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST_F(HeldStackTest, TracksLockAndUnlock) {
  Mutex mu("test.held", 10);
  EXPECT_FALSE(internal::IsHeld(&mu));
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(internal::IsHeld(&mu));
    mu.AssertHeld();  // must not abort while held
  }
  EXPECT_FALSE(internal::IsHeld(&mu));
}

TEST(MutexTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu("test.rw", 10);
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> release{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(&mu);
      const int inside = ++readers_inside;
      int seen = max_readers.load();
      while (inside > seen && !max_readers.compare_exchange_weak(seen, inside)) {
      }
      // Hold until every reader has entered (or a generous timeout), to
      // prove the lock admits them simultaneously.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!release.load() && std::chrono::steady_clock::now() < deadline) {
        if (readers_inside.load() == kReaders) release.store(true);
        std::this_thread::yield();
      }
      --readers_inside;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(max_readers.load(), kReaders);
}

TEST_F(HeldStackTest, WriterAndReaderLocksRegister) {
  SharedMutex mu("test.rw2", 10);
  int value = 0;
  {
    WriterLock lock(&mu);
    EXPECT_TRUE(internal::IsHeld(&mu));
    value = 1;
  }
  EXPECT_FALSE(internal::IsHeld(&mu));
  {
    ReaderLock lock(&mu);
    EXPECT_TRUE(internal::IsHeld(&mu));
    EXPECT_EQ(value, 1);
  }
  EXPECT_FALSE(internal::IsHeld(&mu));
}

TEST_F(HeldStackTest, CondVarWaitWakesOnNotifyAndKeepsEntry) {
  Mutex mu("test.cv", 10);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    mu.Lock();
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
    // Wait() must reacquire the lock and keep the held-stack accurate.
    EXPECT_TRUE(internal::IsHeld(&mu));
    mu.Unlock();
  }
  producer.join();
}

TEST_F(HeldStackTest, CondVarWaitForTimesOutAndKeepsEntry) {
  Mutex mu("test.cv_timeout", 10);
  CondVar cv;
  mu.Lock();
  const bool signalled = cv.WaitFor(mu, std::chrono::milliseconds(10));
  EXPECT_FALSE(signalled);
  EXPECT_TRUE(internal::IsHeld(&mu));
  mu.Unlock();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu("test.cv_all", 10);
  CondVar cv;
  bool go = false;
  std::atomic<int> woken{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      mu.Lock();
      while (!go) cv.Wait(mu);
      mu.Unlock();
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
    cv.NotifyAll();
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST(RankCheckingTest, ToggleRoundTrips) {
  const bool before = RankCheckingEnabled();
  SetRankCheckingEnabled(true);
  EXPECT_TRUE(RankCheckingEnabled());
  SetRankCheckingEnabled(false);
  EXPECT_FALSE(RankCheckingEnabled());
  SetRankCheckingEnabled(before);
}

TEST(RankTest, HierarchyConstantsAreStrictlyOrderedWhereNested) {
  // The orderings the codebase actually nests (DESIGN.md §14). If a rank
  // edit breaks one of these the process would abort at runtime in debug
  // builds; fail fast here instead.
  EXPECT_LT(kRankServeQueue, kRankObsMetrics);        // dispatch emits metrics
  EXPECT_LT(kRankServeCollections, kRankDeltaData);   // StatsJson snapshots
  EXPECT_LT(kRankDeltaData, kRankDeltaCache);         // apply → invalidate
  EXPECT_LT(kRankDeltaCache, kRankEvalIndexCache);    // rebuild touches eval
  EXPECT_LT(kRankDeltaCache, kRankMemoShard);         // rebuild touches memo
  EXPECT_LT(kRankExecQueue, kRankObsMetrics);         // TrySteal counters
  EXPECT_LT(kRankSearchOutcome, kRankSearchBlocks);
  EXPECT_LT(kRankObsScopeTrip, kRankObsScopeRegistry);
  EXPECT_LT(kRankObsLogSeen, kRankObsLogSink);
}

}  // namespace
}  // namespace psc::sync
