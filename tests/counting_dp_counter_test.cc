#include "psc/counting/dp_counter.h"

#include "gtest/gtest.h"
#include "psc/counting/model_counter.h"
#include "psc/util/combinatorics.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

void ExpectCountersAgree(const SourceCollection& collection,
                         const std::vector<Value>& domain) {
  auto instance = IdentityInstance::Create(collection, domain);
  ASSERT_TRUE(instance.ok());
  BinomialTable binomials;
  SignatureCounter shape_counter(&*instance, &binomials);
  auto shape_outcome = shape_counter.Count();
  ASSERT_TRUE(shape_outcome.ok());
  DpCounter dp_counter(&*instance);
  auto dp_outcome = dp_counter.Count();
  ASSERT_TRUE(dp_outcome.ok()) << dp_outcome.status().ToString();
  EXPECT_EQ(dp_outcome->world_count, shape_outcome->world_count)
      << collection.ToString();
  ASSERT_EQ(dp_outcome->worlds_containing.size(),
            shape_outcome->worlds_containing.size());
  for (size_t g = 0; g < dp_outcome->worlds_containing.size(); ++g) {
    EXPECT_EQ(dp_outcome->worlds_containing[g],
              shape_outcome->worlds_containing[g])
        << "group " << g << "\n" << collection.ToString();
  }
}

TEST(DpCounterTest, AgreesOnExampleCollection) {
  ExpectCountersAgree(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      IntDomain(6));
}

TEST(DpCounterTest, AgreesOnExactAndLooseMix) {
  ExpectCountersAgree(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {0, 1, 2}, "1/3", "1/3")}),
      IntDomain(5));
}

TEST(DpCounterTest, AgreesOnInconsistentCollection) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  DpCounter counter(&*instance);
  auto outcome = counter.Count();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->world_count.IsZero());
}

TEST(DpCounterTest, RandomizedAgreement) {
  Rng rng(4242);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 4;
  for (int trial = 0; trial < 40; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    ExpectCountersAgree(*collection, IntDomain(5));
  }
}

TEST(DpCounterTest, Example51ClosedFormAtScale) {
  // The DP's state space is O(k₁·k₂·N): m = 20000 runs in milliseconds
  // where shape enumeration takes seconds.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  const int64_t m = 20000;
  auto instance = IdentityInstance::Create(collection, IntDomain(3 + m));
  ASSERT_TRUE(instance.ok());
  DpCounter counter(&*instance);
  auto outcome = counter.Count(uint64_t{1} << 24);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->world_count.ToUint64(),
            static_cast<uint64_t>(2 * m + 5));
  auto group_b = instance->GroupIndexOf(testing::U(1));
  ASSERT_TRUE(group_b.ok());
  EXPECT_EQ(outcome->worlds_containing[*group_b].ToUint64(),
            static_cast<uint64_t>(2 * m + 4));
}

TEST(DpCounterTest, StateBudgetEnforced) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1, 2}, "1/2", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(10));
  ASSERT_TRUE(instance.ok());
  DpCounter counter(&*instance);
  EXPECT_EQ(counter.Count(/*max_states=*/1).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace psc
