#include "psc/obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "psc/obs/trace.h"

namespace psc {
namespace {

// The registry and options are process-global; every test restores the
// default options and zeroes the instruments it touched so ordering does
// not matter within the shared gtest binary.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalMetrics().Reset();
  }
};

TEST_F(ObsMetricsTest, CounterIncrementsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsMetricsTest, GaugeSetAndRecordMax) {
  obs::Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Set(-3);
  EXPECT_EQ(gauge.value(), -3);
  gauge.RecordMax(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.RecordMax(5);  // lower values do not regress the maximum
  EXPECT_EQ(gauge.value(), 10);
}

TEST_F(ObsMetricsTest, HistogramBucketIndexIsLog2) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11u);
}

TEST_F(ObsMetricsTest, HistogramSnapshotInvariants) {
  obs::Histogram histogram;
  const obs::HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.sum, 0u);
  EXPECT_EQ(empty.Mean(), 0.0);

  for (const uint64_t v : {1u, 2u, 4u, 100u}) histogram.Record(v);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_EQ(snapshot.sum, 107u);
  EXPECT_EQ(snapshot.min, 1u);
  EXPECT_EQ(snapshot.max, 100u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 107.0 / 4.0);
  // Percentiles are bucket upper bounds: exact at the extremes, within a
  // factor of two elsewhere.
  EXPECT_EQ(snapshot.Percentile(0.0), 1u);
  EXPECT_EQ(snapshot.Percentile(1.0), 100u);
  EXPECT_GE(snapshot.Percentile(0.5), 2u);
  EXPECT_LE(snapshot.Percentile(0.5), 4u);
}

TEST_F(ObsMetricsTest, PercentileInterpolatedEmptyAndSingleSample) {
  obs::Histogram histogram;
  const obs::HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(empty.PercentileInterpolated(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.PercentileInterpolated(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.PercentileInterpolated(1.0), 0.0);

  // One sample: every quantile is that sample — interpolation inside the
  // [4, 8) bucket must clamp to the observed range.
  histogram.Record(4);
  const obs::HistogramSnapshot single = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(single.PercentileInterpolated(0.0), 4.0);
  EXPECT_DOUBLE_EQ(single.PercentileInterpolated(0.5), 4.0);
  EXPECT_DOUBLE_EQ(single.PercentileInterpolated(0.99), 4.0);
  EXPECT_DOUBLE_EQ(single.PercentileInterpolated(1.0), 4.0);
}

TEST_F(ObsMetricsTest, PercentileInterpolatedAtBucketBoundaries) {
  // One sample per bucket: {1, 2, 4, 8} land in buckets [1,2), [2,4),
  // [4,8), [8,16). Quantiles at exact multiples of 1/count exhaust whole
  // buckets, so interpolation lands exactly on bucket upper bounds.
  obs::Histogram histogram;
  for (const uint64_t v : {1u, 2u, 4u, 8u}) histogram.Record(v);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.25), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.75), 8.0);
  // Mid-bucket quantiles interpolate linearly: q=0.375 is halfway
  // through the [2,4) bucket.
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.375), 3.0);
  // The extremes are the observed min/max, and q clamps to [0, 1].
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(1.0), 8.0);
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(2.0), 8.0);
}

TEST_F(ObsMetricsTest, PercentileInterpolatedClampsToObservedRange) {
  // {1, 2, 4, 100}: the p50 rank exhausts the [2,4) bucket, so the
  // interpolated value is its upper bound — strictly tighter than the
  // integer Percentile's factor-of-two bracket above.
  obs::Histogram histogram;
  for (const uint64_t v : {1u, 2u, 4u, 100u}) histogram.Record(v);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.PercentileInterpolated(0.5), 4.0);
  // p99 falls in the top bucket [64,128) but can never exceed max.
  EXPECT_LE(snapshot.PercentileInterpolated(0.99), 100.0);
  EXPECT_GE(snapshot.PercentileInterpolated(0.99), 64.0);
}

TEST_F(ObsMetricsTest, RegistryReturnsStableReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("x");
  obs::Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(registry.CounterValue("x"), 3u);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);

  registry.GetGauge("g").Set(-1);
  registry.GetHistogram("h").Record(9);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("x"), 0u);
  EXPECT_EQ(registry.GetGauge("g").value(), 0);
  EXPECT_EQ(registry.GetHistogram("h").count(), 0u);
}

TEST_F(ObsMetricsTest, SnapshotAccessorsAreSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zeta").Increment();
  registry.GetCounter("alpha").Increment(2);
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[0].second, 2u);
  EXPECT_EQ(values[1].first, "zeta");
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 25000;
  obs::MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread resolves the counter itself: lookup is mutex-guarded,
      // increments are lock-free.
      obs::Counter& counter = registry.GetCounter("contended");
      obs::Histogram& histogram = registry.GetHistogram("contended_h");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter.Increment();
        histogram.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("contended"),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(registry.GetHistogram("contended_h").count(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST_F(ObsMetricsTest, ScopedTimerRecordsIntoHistogram) {
  obs::Histogram histogram;
  {
    obs::ScopedTimer timer(&histogram);
    EXPECT_EQ(histogram.count(), 0u);  // nothing recorded until scope exit
  }
  EXPECT_EQ(histogram.count(), 1u);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  // steady_clock is monotonic, so the recorded duration is non-negative by
  // construction (and the debug assert in ElapsedMicros enforces it).
  EXPECT_GE(snapshot.max, snapshot.min);
}

TEST_F(ObsMetricsTest, ScopedTimerElapsedIsMonotone) {
  const obs::ScopedTimer timer(static_cast<obs::Histogram*>(nullptr));
  const uint64_t first = timer.ElapsedMicros();
  const uint64_t second = timer.ElapsedMicros();
  EXPECT_GE(second, first);
}

#if PSC_OBS_ENABLED
TEST_F(ObsMetricsTest, MacrosRespectRuntimeSwitch) {
  obs::GlobalMetrics().Reset();
  PSC_OBS_COUNTER_INC("obs_test.switch");
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("obs_test.switch"), 1u);

  obs::Options off;
  off.enabled = false;
  obs::SetOptions(off);
  PSC_OBS_COUNTER_INC("obs_test.switch");
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("obs_test.switch"), 1u);

  obs::SetOptions(obs::Options{});
  PSC_OBS_COUNTER_ADD("obs_test.switch", 4);
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("obs_test.switch"), 5u);
}

TEST_F(ObsMetricsTest, GaugeAndHistogramMacros) {
  obs::GlobalMetrics().Reset();
  PSC_OBS_GAUGE_SET("obs_test.gauge", 11);
  PSC_OBS_GAUGE_MAX("obs_test.gauge", 3);  // below current value: ignored
  EXPECT_EQ(obs::GlobalMetrics().GetGauge("obs_test.gauge").value(), 11);
  PSC_OBS_GAUGE_MAX("obs_test.gauge", 30);
  EXPECT_EQ(obs::GlobalMetrics().GetGauge("obs_test.gauge").value(), 30);

  PSC_OBS_HISTOGRAM_RECORD("obs_test.histogram", 8);
  EXPECT_EQ(obs::GlobalMetrics().GetHistogram("obs_test.histogram").count(),
            1u);
}
#else
TEST_F(ObsMetricsTest, MacrosCompileToNothingWhenDisabled) {
  obs::GlobalMetrics().Reset();
  PSC_OBS_COUNTER_INC("obs_test.disabled");
  PSC_OBS_COUNTER_ADD("obs_test.disabled", 10);
  PSC_OBS_GAUGE_SET("obs_test.disabled_gauge", 1);
  PSC_OBS_HISTOGRAM_RECORD("obs_test.disabled_histogram", 1);
  EXPECT_EQ(obs::GlobalMetrics().CounterValue("obs_test.disabled"), 0u);
}
#endif  // PSC_OBS_ENABLED

}  // namespace
}  // namespace psc
