#include "psc/algebra/expression.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

Tuple T2(int64_t a, int64_t b) { return {Value(a), Value(b)}; }
using testing::U;

std::map<std::string, ProbRelation> BaseRelations() {
  ProbRelation r(2);
  EXPECT_TRUE(r.Insert(T2(1, 10), 0.5).ok());
  EXPECT_TRUE(r.Insert(T2(2, 10), 0.5).ok());
  ProbRelation s(1);
  EXPECT_TRUE(s.Insert(U(10), 0.5).ok());
  std::map<std::string, ProbRelation> base;
  base.emplace("R", std::move(r));
  base.emplace("S", std::move(s));
  return base;
}

TEST(ExpressionTest, BaseLeaf) {
  auto expr = AlgebraExpr::Base("R", 2);
  EXPECT_EQ(expr->OutputArity(), 2u);
  EXPECT_EQ(expr->BaseRelations(), (std::set<std::string>{"R"}));
  auto result = expr->EvalConfidence(BaseRelations());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(ExpressionTest, MissingBaseRelationIsError) {
  auto expr = AlgebraExpr::Base("Missing", 1);
  EXPECT_EQ(expr->EvalConfidence(BaseRelations()).status().code(),
            StatusCode::kNotFound);
  // Arity mismatch also surfaces.
  auto wrong = AlgebraExpr::Base("R", 3);
  EXPECT_EQ(wrong->EvalConfidence(BaseRelations()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExpressionTest, ComposedPlanConfidence) {
  // π₀(σ(col1 = 10)(R)) — both R-tuples survive, project to {1}, {2}.
  auto plan = AlgebraExpr::Project(
      AlgebraExpr::Select(
          AlgebraExpr::Base("R", 2),
          {Condition::WithConstant(1, "Eq", Value(int64_t{10}))}),
      {0});
  EXPECT_EQ(plan->OutputArity(), 1u);
  auto result = plan->EvalConfidence(BaseRelations());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result->ConfidenceOf(U(1)), 0.5);
  EXPECT_DOUBLE_EQ(*result->ConfidenceOf(U(2)), 0.5);
}

TEST(ExpressionTest, ProductAndJoinPlans) {
  auto product = AlgebraExpr::Product(AlgebraExpr::Base("R", 2),
                                      AlgebraExpr::Base("S", 1));
  EXPECT_EQ(product->OutputArity(), 3u);
  auto product_result = product->EvalConfidence(BaseRelations());
  ASSERT_TRUE(product_result.ok());
  EXPECT_EQ(product_result->size(), 2u);
  EXPECT_DOUBLE_EQ(*product_result->ConfidenceOf(
                       {Value(int64_t{1}), Value(int64_t{10}),
                        Value(int64_t{10})}),
                   0.25);

  auto join = AlgebraExpr::Join(AlgebraExpr::Base("R", 2),
                                AlgebraExpr::Base("S", 1), {{1, 0}});
  EXPECT_EQ(join->OutputArity(), 2u);
  auto join_result = join->EvalConfidence(BaseRelations());
  ASSERT_TRUE(join_result.ok());
  EXPECT_DOUBLE_EQ(*join_result->ConfidenceOf(T2(1, 10)), 0.25);
}

TEST(ExpressionTest, UnionPlan) {
  auto left = AlgebraExpr::Project(AlgebraExpr::Base("R", 2), {1});
  auto combined = AlgebraExpr::Union(left, AlgebraExpr::Base("S", 1));
  auto result = combined->EvalConfidence(BaseRelations());
  ASSERT_TRUE(result.ok());
  // π₁(R) gives conf(10) = 0.75; S gives 0.5 → ⊕ = 0.875.
  EXPECT_DOUBLE_EQ(*result->ConfidenceOf(U(10)), 0.875);
}

TEST(ExpressionTest, EvalInWorldMatchesSetSemantics) {
  Database world;
  world.AddFact("R", T2(1, 10));
  world.AddFact("R", T2(2, 20));
  world.AddFact("S", U(10));
  auto plan = AlgebraExpr::Join(AlgebraExpr::Base("R", 2),
                                AlgebraExpr::Base("S", 1), {{1, 0}});
  auto result = plan->EvalInWorld(world);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(*result->begin(), T2(1, 10));
  // Absent base relations evaluate to empty, not error.
  auto missing = AlgebraExpr::Base("Nope", 1)->EvalInWorld(world);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST(ExpressionTest, BaseRelationsCollectsAllLeaves) {
  auto plan = AlgebraExpr::Union(
      AlgebraExpr::Project(
          AlgebraExpr::Product(AlgebraExpr::Base("A", 1),
                               AlgebraExpr::Base("B", 1)),
          {0}),
      AlgebraExpr::Base("C", 1));
  EXPECT_EQ(plan->BaseRelations(), (std::set<std::string>{"A", "B", "C"}));
}

TEST(ExpressionTest, ToStringRendersStructure) {
  auto plan = AlgebraExpr::Project(
      AlgebraExpr::Select(AlgebraExpr::Base("R", 2),
                          {Condition::WithConstant(1, "Eq",
                                                   Value(int64_t{10}))}),
      {0});
  EXPECT_EQ(plan->ToString(), "π{0}(σ{Eq($1, 10)}(R))");
}

}  // namespace
}  // namespace psc
