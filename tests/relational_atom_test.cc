#include "psc/relational/atom.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

Atom MakeAtom() {
  return Atom("R", {Term::Var("x"), Term::ConstInt(1), Term::Var("y"),
                    Term::Var("x")});
}

TEST(AtomTest, Accessors) {
  const Atom atom = MakeAtom();
  EXPECT_EQ(atom.predicate(), "R");
  EXPECT_EQ(atom.arity(), 4u);
  EXPECT_FALSE(atom.IsGround());
}

TEST(AtomTest, VariablesDeduplicated) {
  const Atom atom = MakeAtom();
  EXPECT_EQ(atom.Variables(), (std::set<std::string>{"x", "y"}));
}

TEST(AtomTest, GroundAtom) {
  Atom atom("S", {Term::ConstInt(1), Term::ConstStr("a")});
  EXPECT_TRUE(atom.IsGround());
  EXPECT_TRUE(atom.Variables().empty());
}

TEST(AtomTest, EqualityAndOrdering) {
  Atom a("R", {Term::Var("x")});
  Atom b("R", {Term::Var("y")});
  Atom c("S", {Term::Var("x")});
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);  // same predicate, term order
  EXPECT_LT(a, c);  // predicate order
}

TEST(AtomTest, ToString) {
  EXPECT_EQ(MakeAtom().ToString(), "R(x, 1, y, x)");
  EXPECT_EQ(Atom("Nullary", {}).ToString(), "Nullary()");
}

TEST(FactTest, Accessors) {
  Fact fact("Temperature", {Value(int64_t{438432}), Value(int64_t{1990})});
  EXPECT_EQ(fact.relation(), "Temperature");
  EXPECT_EQ(fact.arity(), 2u);
  EXPECT_EQ(fact.tuple()[0].AsInt(), 438432);
}

TEST(FactTest, ToAtomRoundTrip) {
  Fact fact("R", {Value(int64_t{1}), Value("x")});
  const Atom atom = fact.ToAtom();
  EXPECT_TRUE(atom.IsGround());
  EXPECT_EQ(atom.predicate(), "R");
  EXPECT_EQ(atom.terms()[0].constant(), Value(int64_t{1}));
  EXPECT_EQ(atom.terms()[1].constant(), Value("x"));
}

TEST(FactTest, OrderingByRelationThenTuple) {
  Fact a("R", {Value(int64_t{1})});
  Fact b("R", {Value(int64_t{2})});
  Fact c("S", {Value(int64_t{0})});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, Fact("R", {Value(int64_t{1})}));
  EXPECT_NE(a, b);
}

TEST(FactTest, ToString) {
  EXPECT_EQ(Fact("R", {Value(int64_t{1}), Value("a")}).ToString(),
            "R(1, \"a\")");
}

}  // namespace
}  // namespace psc
