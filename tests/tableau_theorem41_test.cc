// Theorem 4.1: poss(S) = ⋃_{U ∈ 𝒰} rep(𝒯^U(S)).
//
// Verified extensionally: over a small finite universe, every database is
// classified identically by (a) the direct poss(S) membership test
// (measures against bounds) and (b) membership in some template's rep.

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/tableau/template_builder.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

/// Checks the set equality over all subsets of the universe.
void ExpectTheorem41(const SourceCollection& collection,
                     const std::vector<Value>& domain) {
  TemplateBuilder builder(&collection);
  auto universe = EnumerateFactUniverse(collection.schema(), domain, 1 << 12);
  ASSERT_TRUE(universe.ok());
  ASSERT_LE(universe->size(), 14u) << "test universe too large";
  const uint64_t limit = uint64_t{1} << universe->size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Database db;
    for (size_t j = 0; j < universe->size(); ++j) {
      if ((mask >> j) & 1) db.AddFact((*universe)[j]);
    }
    auto direct = collection.IsPossibleWorld(db);
    ASSERT_TRUE(direct.ok());
    auto via_templates = builder.FamilyContains(db);
    ASSERT_TRUE(via_templates.ok()) << via_templates.status().ToString();
    EXPECT_EQ(*direct, *via_templates) << "D = {" << db.ToString() << "}";
  }
}

TEST(Theorem41Test, SingleSourceIdentity) {
  ExpectTheorem41(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")}),
      IntDomain(4));
}

TEST(Theorem41Test, OverlappingIdentitySources) {
  ExpectTheorem41(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      IntDomain(4));
}

TEST(Theorem41Test, ExactAndLooseSource) {
  ExpectTheorem41(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {0, 1}, "1/3", "1/2")}),
      IntDomain(3));
}

TEST(Theorem41Test, ZeroBoundsSource) {
  ExpectTheorem41(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")}),
      IntDomain(3));
}

TEST(Theorem41Test, InconsistentCollectionHasEmptyFamily) {
  // Two exact contradictory sources: both sides must be empty.
  ExpectTheorem41(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")}),
      IntDomain(2));
}

TEST(Theorem41Test, ProjectionViewOverBinaryRelation) {
  // Non-identity views: V(x) ← R2(x, y) with a tiny binary universe.
  auto view = testing::Q("V(x) <- R2(x, y)");
  Relation extension = {testing::U(0)};
  auto source = SourceDescriptor::Create("P", view, extension, Rational(1, 2),
                                         Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  // Universe: R2 over {0,1}² = 4 facts → 16 databases.
  ExpectTheorem41(*collection, IntDomain(2));
}

TEST(Theorem41Test, TwoRelationJoinView) {
  // V(x) ← E(x, y), N(y): body spans two relations.
  auto view = testing::Q("V(x) <- E(x, y), N(y)");
  Relation extension = {testing::U(0)};
  auto source = SourceDescriptor::Create("J", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  // Universe: E over {0,1}² (4) + N over {0,1} (2) = 6 facts.
  ExpectTheorem41(*collection, IntDomain(2));
}

TEST(Theorem41Test, RandomizedIdentityCollections) {
  Rng rng(20260705);
  for (int trial = 0; trial < 25; ++trial) {
    RandomIdentityConfig config;
    config.num_sources = 2;
    config.universe_size = 3;
    config.min_extension = 1;
    config.max_extension = 3;
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    ExpectTheorem41(*collection, IntDomain(4));
  }
}

}  // namespace
}  // namespace psc
