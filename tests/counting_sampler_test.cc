#include "psc/counting/world_sampler.h"

#include <map>

#include "gtest/gtest.h"
#include "psc/source/measures.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(WorldSamplerTest, SamplesAreAlwaysPossibleWorlds) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(5));
  ASSERT_TRUE(instance.ok());
  auto sampler = WorldSampler::Create(&*instance);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Database world = sampler->Sample(&rng);
    auto possible = collection.IsPossibleWorld(world);
    ASSERT_TRUE(possible.ok());
    EXPECT_TRUE(*possible) << world.ToString();
  }
}

TEST(WorldSamplerTest, FrequenciesApproachExactConfidences) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  const std::vector<Value> domain = IntDomain(4);  // m = 1
  auto instance = IdentityInstance::Create(collection, domain);
  ASSERT_TRUE(instance.ok());
  auto sampler = WorldSampler::Create(&*instance);
  ASSERT_TRUE(sampler.ok());
  EXPECT_EQ(sampler->world_count().ToUint64(), 7u);  // 2m+5 with m = 1

  Rng rng(23);
  const int trials = 30000;
  std::map<Tuple, int> hits;
  for (int i = 0; i < trials; ++i) {
    const Database world = sampler->Sample(&rng);
    for (const Fact& fact : world.AllFacts()) ++hits[fact.tuple()];
  }
  // Exact confidences with m = 1: b = 6/7, a = c = 4/7, d = 2/7.
  EXPECT_NEAR(hits[testing::U(1)] / double(trials), 6.0 / 7.0, 0.02);
  EXPECT_NEAR(hits[testing::U(0)] / double(trials), 4.0 / 7.0, 0.02);
  EXPECT_NEAR(hits[testing::U(2)] / double(trials), 4.0 / 7.0, 0.02);
  EXPECT_NEAR(hits[testing::U(3)] / double(trials), 2.0 / 7.0, 0.02);
}

TEST(WorldSamplerTest, InconsistentCollectionRejected) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(WorldSampler::Create(&*instance).status().code(),
            StatusCode::kInconsistent);
}

TEST(WorldSamplerTest, SingleWorldCollectionIsDeterministic) {
  // One exact source: the only world is exactly its extension.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1", "1")});
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  ASSERT_TRUE(instance.ok());
  auto sampler = WorldSampler::Create(&*instance);
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE(sampler->world_count().IsOne());
  Rng rng(5);
  const Database world = sampler->Sample(&rng);
  EXPECT_EQ(world.size(), 2u);
  EXPECT_TRUE(world.Contains("R", testing::U(0)));
  EXPECT_TRUE(world.Contains("R", testing::U(1)));
}

}  // namespace
}  // namespace psc
