// Determinism contract of the parallel runtime: every solver entry point
// must return bit-identical results for any worker count (Monte-Carlo
// estimation: for any worker count >= 2; the single-threaded path keeps
// the historical single-stream draw order).

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "psc/consistency/general_consistency.h"
#include "psc/core/query_system.h"
#include "psc/counting/confidence.h"
#include "psc/counting/dp_counter.h"
#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/exec/thread_pool.h"
#include "psc/util/random.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::Q;
using testing::U;

TEST(CountingDeterminismTest, SignatureCounterMatchesSequentialAcrossPools) {
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 5;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    PSC_ASSERT_OK_AND_ASSIGN(const SourceCollection collection,
                             MakeRandomIdentityCollection(config, &rng));
    PSC_ASSERT_OK_AND_ASSIGN(
        const IdentityInstance instance,
        IdentityInstance::Create(collection, IntDomain(5)));
    BinomialTable binomials;
    SignatureCounter counter(&instance, &binomials);
    PSC_ASSERT_OK_AND_ASSIGN(const CountingOutcome sequential,
                             counter.Count());
    for (const size_t threads : {2, 4, 8}) {
      exec::ThreadPool pool(threads);
      PSC_ASSERT_OK_AND_ASSIGN(
          const CountingOutcome parallel,
          counter.Count(uint64_t{1} << 26, &pool));
      EXPECT_EQ(parallel.world_count, sequential.world_count)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.feasible_shapes, sequential.feasible_shapes);
      EXPECT_EQ(parallel.visited_shapes, sequential.visited_shapes);
      ASSERT_EQ(parallel.worlds_containing.size(),
                sequential.worlds_containing.size());
      for (size_t g = 0; g < sequential.worlds_containing.size(); ++g) {
        EXPECT_EQ(parallel.worlds_containing[g],
                  sequential.worlds_containing[g])
            << "seed " << seed << " threads " << threads << " group " << g;
      }
    }
  }
}

TEST(CountingDeterminismTest, DpCounterMatchesSequentialAcrossPools) {
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 6;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    PSC_ASSERT_OK_AND_ASSIGN(const SourceCollection collection,
                             MakeRandomIdentityCollection(config, &rng));
    PSC_ASSERT_OK_AND_ASSIGN(
        const IdentityInstance instance,
        IdentityInstance::Create(collection, IntDomain(6)));
    DpCounter counter(&instance);
    PSC_ASSERT_OK_AND_ASSIGN(const CountingOutcome sequential,
                             counter.Count());
    for (const size_t threads : {2, 4}) {
      exec::ThreadPool pool(threads);
      PSC_ASSERT_OK_AND_ASSIGN(
          const CountingOutcome parallel,
          counter.Count(uint64_t{1} << 22, &pool));
      EXPECT_EQ(parallel.world_count, sequential.world_count)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.feasible_shapes, sequential.feasible_shapes);
      EXPECT_EQ(parallel.visited_shapes, sequential.visited_shapes);
      ASSERT_EQ(parallel.worlds_containing.size(),
                sequential.worlds_containing.size());
      for (size_t g = 0; g < sequential.worlds_containing.size(); ++g) {
        EXPECT_EQ(parallel.worlds_containing[g],
                  sequential.worlds_containing[g]);
      }
    }
  }
}

TEST(CountingDeterminismTest, ConfidenceTableMatchesSequentialWithPool) {
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 5;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    PSC_ASSERT_OK_AND_ASSIGN(const SourceCollection collection,
                             MakeRandomIdentityCollection(config, &rng));
    PSC_ASSERT_OK_AND_ASSIGN(
        const IdentityInstance instance,
        IdentityInstance::Create(collection, IntDomain(5)));
    auto sequential = ComputeBaseFactConfidences(instance);
    exec::ThreadPool pool(4);
    auto parallel =
        ComputeBaseFactConfidences(instance, uint64_t{1} << 26, &pool);
    ASSERT_EQ(sequential.ok(), parallel.ok()) << "seed " << seed;
    if (!sequential.ok()) continue;  // inconsistent draw: both agree
    EXPECT_EQ(parallel->world_count, sequential->world_count);
    ASSERT_EQ(parallel->entries.size(), sequential->entries.size());
    for (size_t i = 0; i < sequential->entries.size(); ++i) {
      EXPECT_EQ(parallel->entries[i].tuple, sequential->entries[i].tuple);
      EXPECT_EQ(parallel->entries[i].numerator,
                sequential->entries[i].numerator);
      EXPECT_EQ(parallel->entries[i].confidence,
                sequential->entries[i].confidence);
    }
  }
}

/// Random non-identity collections: projection views over a binary
/// relation, so the checker exercises the canonical-freeze search that
/// the parallel runtime shards.
SourceCollection MakeRandomProjectionCollection(Rng* rng) {
  static const char* const kBounds[] = {"0", "1/2", "1"};
  static const char* const kViews[] = {"V(x) <- R2(x, y)",
                                       "W(y) <- R2(x, y)"};
  std::vector<SourceDescriptor> sources;
  const int64_t num_sources = rng->UniformInt(1, 2);
  for (int64_t s = 0; s < num_sources; ++s) {
    Relation extension;
    for (const int64_t pick :
         rng->SampleWithoutReplacement(4, rng->UniformInt(1, 3))) {
      extension.insert(U(pick));
    }
    auto completeness = Rational::Parse(kBounds[rng->UniformInt(0, 2)]);
    auto soundness = Rational::Parse(kBounds[rng->UniformInt(0, 2)]);
    EXPECT_TRUE(completeness.ok() && soundness.ok());
    auto source = SourceDescriptor::Create(
        std::string("S") + static_cast<char>('0' + s),
        Q(kViews[static_cast<size_t>(s)]), std::move(extension),
        *completeness, *soundness);
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    sources.push_back(std::move(source).ValueOrDie());
  }
  auto collection = SourceCollection::Create(std::move(sources));
  EXPECT_TRUE(collection.ok()) << collection.status().ToString();
  return std::move(collection).ValueOrDie();
}

TEST(ConsistencyDeterminismTest, FreezeSearchMatchesSequentialAcrossPools) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const SourceCollection collection = MakeRandomProjectionCollection(&rng);

    GeneralConsistencyChecker::Options options;
    options.enable_exhaustive = false;  // isolate the freeze search
    options.threads = 1;
    auto sequential = GeneralConsistencyChecker(options).Check(collection);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    for (const size_t threads : {2, 4, 8}) {
      options.threads = threads;
      auto parallel = GeneralConsistencyChecker(options).Check(collection);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(parallel->verdict, sequential->verdict)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel->method, sequential->method);
      ASSERT_EQ(parallel->witness.has_value(),
                sequential->witness.has_value());
      if (sequential->witness.has_value()) {
        // The parallel search accepts the *minimal-index* witness — the
        // very database the sequential scan stops at.
        EXPECT_EQ(*parallel->witness, *sequential->witness)
            << "seed " << seed << " threads " << threads;
      }
      EXPECT_GE(parallel->combinations_tried, uint64_t{0});
    }
  }
}

TEST(MonteCarloDeterminismTest, EstimatesAgreeAcrossWorkerCounts) {
  auto collection = testing::MakeUnaryCollection(
      {testing::MakeUnarySource("S1", {0, 1, 2}, "1/2", "1/3"),
       testing::MakeUnarySource("S2", {1, 2, 3}, "1/3", "1/2")});
  const ConjunctiveQuery query = Q("A(x) <- R(x)");
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    QuerySystem::Options options;
    options.threads = 2;
    PSC_ASSERT_OK_AND_ASSIGN(const QuerySystem reference_system,
                             QuerySystem::Create(collection, options));
    PSC_ASSERT_OK_AND_ASSIGN(
        const QueryAnswer reference,
        reference_system.AnswerMonteCarlo(query, IntDomain(4), 200, seed));
    EXPECT_EQ(reference.worlds_used, 200u);
    for (const size_t threads : {3, 4, 8}) {
      options.threads = threads;
      PSC_ASSERT_OK_AND_ASSIGN(const QuerySystem system,
                               QuerySystem::Create(collection, options));
      PSC_ASSERT_OK_AND_ASSIGN(
          const QueryAnswer answer,
          system.AnswerMonteCarlo(query, IntDomain(4), 200, seed));
      EXPECT_EQ(answer.worlds_used, reference.worlds_used);
      EXPECT_EQ(answer.certain, reference.certain)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(answer.possible, reference.possible);
      EXPECT_EQ(answer.confidences.entries(),
                reference.confidences.entries());
    }
  }
}

TEST(MonteCarloDeterminismTest, SingleThreadKeepsLegacyStream) {
  // The sequential path must consume one Rng(seed) in sample order — the
  // pre-parallel behaviour — so repeated runs agree with each other.
  auto collection = testing::MakeUnaryCollection(
      {testing::MakeUnarySource("S1", {0, 1}, "1/2", "1/2")});
  const ConjunctiveQuery query = Q("A(x) <- R(x)");
  QuerySystem::Options options;
  options.threads = 1;
  PSC_ASSERT_OK_AND_ASSIGN(const QuerySystem system,
                           QuerySystem::Create(collection, options));
  PSC_ASSERT_OK_AND_ASSIGN(
      const QueryAnswer first,
      system.AnswerMonteCarlo(query, IntDomain(2), 100, 7));
  PSC_ASSERT_OK_AND_ASSIGN(
      const QueryAnswer second,
      system.AnswerMonteCarlo(query, IntDomain(2), 100, 7));
  EXPECT_EQ(first.certain, second.certain);
  EXPECT_EQ(first.possible, second.possible);
  EXPECT_EQ(first.confidences.entries(), second.confidences.entries());
}

}  // namespace
}  // namespace psc
