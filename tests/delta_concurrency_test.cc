// Thread-safety tests for delta::IncrementalSystem: concurrent readers
// (consistency checks, exact answers) against a writer streaming deltas.
// The test names carry "DeltaConcurrency" so the CI matrix's TSan pass
// (tools/ci_matrix.sh) selects them; assertions here are about freedom
// from races and torn state, not about which cache path each read hits.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "psc/delta/incremental.h"
#include "psc/parser/parser.h"
#include "psc/source/source_collection.h"
#include "psc/util/rational.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *std::move(query);
}

delta::IncrementalSystem MakeSystem() {
  std::vector<SourceDescriptor> sources;
  for (int i = 0; i < 2; ++i) {
    Relation extension = {{Value(int64_t{i})}, {Value(int64_t{i + 1})}};
    auto source = SourceDescriptor::Create(
        StrCat("S", i), Q(StrCat("V", i, "(x) <- R(x)")), std::move(extension),
        Rational(1, 16), Rational(1, 2));
    EXPECT_TRUE(source.ok());
    sources.push_back(*std::move(source));
  }
  auto collection = SourceCollection::Create(std::move(sources));
  EXPECT_TRUE(collection.ok());
  QuerySystem::Options options;
  options.threads = 1;  // keep each reader single-threaded; we supply the
                        // cross-thread contention ourselves
  auto system = delta::IncrementalSystem::Create(*std::move(collection),
                                                 options);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

TEST(DeltaConcurrencyTest, QueriesRaceDeltaApplication) {
  delta::IncrementalSystem system = MakeSystem();
  ASSERT_TRUE(system.CheckConsistency().ok());

  const ConjunctiveQuery query = Q("Ans(x) <- R(x)");
  std::vector<Value> domain;
  for (int64_t v = 0; v <= 4; ++v) domain.push_back(Value(v));

  constexpr int kBatches = 40;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int step = 0; step < kBatches; ++step) {
      CollectionDelta delta;
      const Tuple tuple = {Value(int64_t{3})};
      // Toggle: even steps insert into S0, odd steps take it back out.
      if (step % 2 == 0) {
        delta.Insert("S0", tuple);
      } else {
        delta.Retract("S0", tuple);
      }
      if (!system.ApplyDelta(delta).ok()) failures.fetch_add(1);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load()) {
        if (r == 0) {
          // One reader keeps the consistency cache warm...
          if (!system.CheckConsistency().ok()) failures.fetch_add(1);
        } else {
          // ...the others answer queries against whatever snapshot the
          // shared lock hands them.
          auto answer = system.AnswerExact(query, domain);
          if (!answer.ok()) failures.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // The final state is deterministic regardless of interleaving: kBatches
  // is even, so the toggled tuple ends up retracted.
  const SourceCollection final_state = system.CollectionSnapshot();
  EXPECT_EQ(final_state.source(0).extension().count({Value(int64_t{3})}), 0u);
  auto report = system.CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
}

TEST(DeltaConcurrencyTest, ConcurrentCheckersShareOneCache) {
  delta::IncrementalSystem system = MakeSystem();

  // No writer: hammer the cold cache from several threads at once. Both
  // the lazy QuerySystem build and the report cache fill race benignly —
  // every thread must still see the same verdict.
  std::vector<std::thread> checkers;
  std::atomic<int> consistent{0};
  for (int r = 0; r < 4; ++r) {
    checkers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto report = system.CheckConsistency();
        if (report.ok() &&
            report->verdict == ConsistencyVerdict::kConsistent) {
          consistent.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& checker : checkers) checker.join();
  EXPECT_EQ(consistent.load(), 32);
}

}  // namespace
}  // namespace psc
