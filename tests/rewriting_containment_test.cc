#include "psc/rewriting/containment.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::Q;

bool Contained(const std::string& q1, const std::string& q2) {
  auto result = IsContainedIn(Q(q1), Q(q2));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() && *result;
}

TEST(ContainmentTest, ReflexiveAndRenaming) {
  EXPECT_TRUE(Contained("V(x) <- R(x)", "V(x) <- R(x)"));
  EXPECT_TRUE(Contained("V(x) <- R(x)", "W(a) <- R(a)"));
}

TEST(ContainmentTest, MoreAtomsMeansMoreSpecific) {
  // R(x),S(x) ⊑ R(x) but not conversely.
  EXPECT_TRUE(Contained("V(x) <- R(x), S(x)", "V(x) <- R(x)"));
  EXPECT_FALSE(Contained("V(x) <- R(x)", "V(x) <- R(x), S(x)"));
}

TEST(ContainmentTest, ClassicSelfLoopExample) {
  // The textbook pair: path-of-length-2 vs self-loop.
  // Q_loop(x) = E(x,x) is contained in Q_path(x) = E(x,y),E(y,z)… mapped
  // onto the loop; the reverse fails.
  EXPECT_TRUE(
      Contained("V(x) <- E(x, x)", "V(x) <- E(x, y), E(y, z)"));
  EXPECT_FALSE(
      Contained("V(x) <- E(x, y), E(y, z)", "V(x) <- E(x, x)"));
}

TEST(ContainmentTest, ConstantsAreFixedPoints) {
  EXPECT_TRUE(Contained("V(x) <- R(x, 1)", "V(x) <- R(x, y)"));
  EXPECT_FALSE(Contained("V(x) <- R(x, y)", "V(x) <- R(x, 1)"));
  EXPECT_FALSE(Contained("V(x) <- R(x, 1)", "V(x) <- R(x, 2)"));
}

TEST(ContainmentTest, HeadVariablesMustAlign) {
  // Same bodies, different head projections.
  EXPECT_FALSE(Contained("V(x) <- R(x, y)", "V(y) <- R(x, y)"));
  EXPECT_TRUE(Contained("V(x, y) <- R(x, y)", "V(a, b) <- R(a, b)"));
  // The doubled head collapses both positions: a ↦ x, b ↦ x works.
  EXPECT_TRUE(Contained("V(x, x) <- R(x, x)", "V(a, b) <- R(b, a)"));
}

TEST(ContainmentTest, ArityMismatchIsAnError) {
  auto result = IsContainedIn(Q("V(x) <- R(x)"), Q("V(x, y) <- R2(x, y)"));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ContainmentTest, BuiltinsVerbatimMatch) {
  EXPECT_TRUE(Contained("V(y) <- T(y), After(y, 1900)",
                        "V(y) <- T(y), After(y, 1900)"));
  // Dropping the built-in weakens: specific ⊑ general.
  EXPECT_TRUE(Contained("V(y) <- T(y), After(y, 1900)", "V(y) <- T(y)"));
  EXPECT_FALSE(Contained("V(y) <- T(y)", "V(y) <- T(y), After(y, 1900)"));
  // Different constants: conservatively rejected (even though 1950 > 1900
  // would imply containment semantically — documented incompleteness).
  EXPECT_FALSE(Contained("V(y) <- T(y), After(y, 1950)",
                         "V(y) <- T(y), After(y, 1900)"));
}

TEST(ContainmentTest, GroundBuiltinsEvaluate) {
  EXPECT_TRUE(Contained("V(x) <- R(x, 1990)",
                        "V(x) <- R(x, y), After(y, 1900)"));
  EXPECT_FALSE(Contained("V(x) <- R(x, 1800)",
                         "V(x) <- R(x, y), After(y, 1900)"));
}

TEST(ContainmentTest, EquivalenceDetectsRedundancy) {
  auto equivalent =
      AreEquivalent(Q("V(x) <- R(x, y), R(x, z)"), Q("V(x) <- R(x, y)"));
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
  auto different =
      AreEquivalent(Q("V(x) <- R(x, y)"), Q("V(x) <- R(y, x)"));
  ASSERT_TRUE(different.ok());
  EXPECT_FALSE(*different);
}

TEST(MinimizeTest, DropsRedundantAtoms) {
  auto minimized = MinimizeQuery(Q("V(x) <- R(x, y), R(x, z)"));
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->relational_body().size(), 1u);
  auto equivalent =
      AreEquivalent(*minimized, Q("V(x) <- R(x, y)"));
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(MinimizeTest, KeepsCoreAtoms) {
  // A genuine 2-path cannot shrink.
  auto minimized = MinimizeQuery(Q("V(x, z) <- E(x, y), E(y, z)"));
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->relational_body().size(), 2u);
  // Neither can a cross-relation conjunction.
  auto cross = MinimizeQuery(Q("V(x) <- R(x), S(x)"));
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->relational_body().size(), 2u);
}

TEST(MinimizeTest, TriangleWithLoopCollapses) {
  // E(x,y),E(y,x),E(x,x) has core E(x,x) when x is the only head var.
  auto minimized = MinimizeQuery(Q("V(x) <- E(x, y), E(y, x), E(x, x)"));
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->relational_body().size(), 1u);
  EXPECT_EQ(minimized->relational_body()[0], Q("V(x) <- E(x, x)")
                                                 .relational_body()[0]);
}

TEST(MinimizeTest, PreservesBuiltinSafety) {
  // The atom binding the built-in's variable must survive.
  auto minimized =
      MinimizeQuery(Q("V(x) <- R(x), S(y), After(y, 5)"));
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->relational_body().size(), 2u);
}

TEST(ContainmentCacheTest, AlphaEquivalentPairsShareOneEntry) {
  ClearContainmentCache();
  EXPECT_EQ(ContainmentCacheSize(), 0u);
  EXPECT_TRUE(Contained("V(x) <- R(x), S(x)", "V(x) <- R(x)"));
  const size_t after_first = ContainmentCacheSize();
  EXPECT_GE(after_first, 1u);
  // A renamed copy of the same pair must hit the canonical-key cache, not
  // add an entry.
  EXPECT_TRUE(Contained("V(a) <- R(a), S(a)", "V(b) <- R(b)"));
  EXPECT_EQ(ContainmentCacheSize(), after_first);
  ClearContainmentCache();
}

TEST(ContainmentCacheTest, CachedVerdictsStayCorrectBothWays) {
  ClearContainmentCache();
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(Contained("V(x) <- R(x), S(x)", "V(x) <- R(x)"));
    EXPECT_FALSE(Contained("V(x) <- R(x)", "V(x) <- R(x), S(x)"));
  }
  ClearContainmentCache();
}

TEST(ContainmentCacheTest, DirectionIsPartOfTheKey) {
  // Q1 ⊑ Q2 and Q2 ⊑ Q1 are distinct questions; a symmetric key would
  // poison one direction with the other's verdict.
  ClearContainmentCache();
  EXPECT_TRUE(Contained("V(x) <- R(x), S(x)", "V(x) <- R(x)"));
  EXPECT_FALSE(Contained("V(x) <- R(x)", "V(x) <- R(x), S(x)"));
  EXPECT_GE(ContainmentCacheSize(), 2u);
  ClearContainmentCache();
}

TEST(ContainmentCacheTest, DistinctConstantsDoNotCollide) {
  ClearContainmentCache();
  // Constants are fixed points of homomorphisms and must stay verbatim in
  // the canonical key; only variables are renamed.
  EXPECT_TRUE(Contained("V(x) <- E(x, 1)", "V(x) <- E(x, 1)"));
  EXPECT_FALSE(Contained("V(x) <- E(x, 1)", "V(x) <- E(x, 2)"));
  ClearContainmentCache();
}

TEST(MinimizeTest, SemanticsPreservedOnConcreteDatabase) {
  const ConjunctiveQuery original = Q("V(x) <- E(x, y), E(x, z), E(x, x)");
  auto minimized = MinimizeQuery(original);
  ASSERT_TRUE(minimized.ok());
  EXPECT_LT(minimized->relational_body().size(),
            original.relational_body().size());
  Database db;
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{1})});
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("E", {Value(int64_t{2}), Value(int64_t{3})});
  auto before = original.Evaluate(db);
  auto after = minimized->Evaluate(db);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

}  // namespace
}  // namespace psc
