#include "psc/util/status.h"

#include "gtest/gtest.h"
#include "psc/util/result.h"

namespace psc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Inconsistent("x").code(), StatusCode::kInconsistent);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_EQ(copy, original);
  original = Status::OK();
  EXPECT_FALSE(copy.ok());
}

Status FailsThrough() {
  PSC_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough(), Status::NotFound("inner"));
}

Status SucceedsThrough() {
  PSC_RETURN_NOT_OK(Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPassesOk) { EXPECT_TRUE(SucceedsThrough().ok()); }

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).ValueOrDie();
  EXPECT_EQ(*value, 7);
}

Result<int> Doubler(Result<int> input) {
  PSC_ASSIGN_OR_RETURN(const int value, input);
  return value * 2;
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  Result<int> result = Doubler(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, AssignOrReturnOnError) {
  Result<int> result = Doubler(Status::Internal("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace psc
