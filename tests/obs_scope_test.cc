#include "psc/obs/scope.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/limits/budget.h"
#include "psc/obs/json.h"
#include "psc/obs/metrics.h"
#include "psc/obs/report.h"
#include "psc/obs/trace.h"

namespace psc {
namespace {

// Only referenced when instrumentation is compiled in.
[[maybe_unused]] uint64_t CounterValue(const obs::ScopeSnapshot& snapshot,
                                       const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

// Scopes mirror the process-global instruments; each test starts from
// default options and clean global state so ordering does not matter.
class ObsScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
};

TEST_F(ObsScopeTest, NullScopeIsInactiveAndSnapshotsEmpty) {
  const obs::Scope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.id(), 0u);
  EXPECT_EQ(scope.name(), "");
  const obs::ScopeSnapshot snapshot = scope.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.spans.empty());
  EXPECT_EQ(snapshot.trip_reason, "");
}

TEST_F(ObsScopeTest, CreateAssignsUniqueIdsAndName) {
  const obs::Scope first = obs::Scope::Create("scope_test.first");
  const obs::Scope second = obs::Scope::Create("scope_test.second");
  EXPECT_TRUE(first.active());
  EXPECT_EQ(first.name(), "scope_test.first");
  EXPECT_GT(first.id(), 0u);
  EXPECT_NE(first.id(), second.id());
  // Copies share state.
  const obs::Scope copy = first;
  EXPECT_EQ(copy.id(), first.id());
}

TEST_F(ObsScopeTest, GuardInstallsAndRestoresCurrentScope) {
  EXPECT_FALSE(obs::CurrentScope().active());
  const obs::Scope scope = obs::Scope::Create("scope_test.install");
  {
    const obs::ScopeGuard guard(scope);
    EXPECT_EQ(obs::CurrentScope().id(), scope.id());
  }
  EXPECT_FALSE(obs::CurrentScope().active());
}

TEST_F(ObsScopeTest, NullGuardLeavesInstalledScopeAlone) {
  const obs::Scope outer = obs::Scope::Create("scope_test.outer");
  const obs::ScopeGuard outer_guard(outer);
  {
    // Solver code installs unconditionally; a null scope must not mask
    // the query scope already on the thread.
    const obs::ScopeGuard null_guard((obs::Scope()));
    EXPECT_EQ(obs::CurrentScope().id(), outer.id());
  }
  EXPECT_EQ(obs::CurrentScope().id(), outer.id());
}

#if PSC_OBS_ENABLED

TEST_F(ObsScopeTest, InstalledScopeAccumulatesMetricDeltas) {
  const obs::Scope scope = obs::Scope::Create("scope_test.deltas");
  PSC_OBS_COUNTER_INC("scope_test.before");  // outside: global only
  {
    const obs::ScopeGuard guard(scope);
    PSC_OBS_COUNTER_ADD("scope_test.inside", 3);
    PSC_OBS_COUNTER_ADD("scope_test.inside", 2);
  }
  PSC_OBS_COUNTER_INC("scope_test.after");

  const obs::ScopeSnapshot snapshot = scope.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "scope_test.inside"), 5u);
  EXPECT_EQ(CounterValue(snapshot, "scope_test.before"), 0u);
  EXPECT_EQ(CounterValue(snapshot, "scope_test.after"), 0u);
  // The global registry saw everything: scopes are a delta view on top.
  EXPECT_EQ(obs::GlobalMetrics().GetCounter("scope_test.inside").value(),
            5u);
}

TEST_F(ObsScopeTest, NestedGuardsAttributeToTheInnermostScope) {
  const obs::Scope outer = obs::Scope::Create("scope_test.nest_outer");
  const obs::Scope inner = obs::Scope::Create("scope_test.nest_inner");
  {
    const obs::ScopeGuard outer_guard(outer);
    PSC_OBS_COUNTER_INC("scope_test.nested");
    {
      const obs::ScopeGuard inner_guard(inner);
      PSC_OBS_COUNTER_ADD("scope_test.nested", 10);
    }
    PSC_OBS_COUNTER_INC("scope_test.nested");
  }
  // Attribution is exclusive: the innermost scope owns the delta.
  EXPECT_EQ(CounterValue(outer.Snapshot(), "scope_test.nested"), 2u);
  EXPECT_EQ(CounterValue(inner.Snapshot(), "scope_test.nested"), 10u);
}

TEST_F(ObsScopeTest, SpansRecordedUnderScopeLandInItsBuffer) {
  obs::Options options;
  options.trace_enabled = true;
  obs::SetOptions(options);
  const obs::Scope scope = obs::Scope::Create("scope_test.spans");
  {
    const obs::ScopeGuard guard(scope);
    obs::TraceSpan span("scope_test.span");
    (void)span;
  }
  const obs::ScopeSnapshot snapshot = scope.Snapshot();
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_EQ(snapshot.spans[0].name, "scope_test.span");
  EXPECT_EQ(snapshot.spans[0].scope_id, scope.id());
  // The global buffer received the same record.
  ASSERT_EQ(obs::GlobalTrace().Snapshot().size(), 1u);
}

#endif  // PSC_OBS_ENABLED

TEST_F(ObsScopeTest, BudgetTripAttributesToTheCreatingScope) {
  const obs::Scope scope = obs::Scope::Create("scope_test.trip");
  limits::Budget budget;
  {
    const obs::ScopeGuard guard(scope);
    // The budget captures the installed scope at construction...
    budget = limits::Budget::WithNodeBudget(5);
  }
  // ...so the trip attributes to it even when no scope (or another
  // query's) is installed on the observing thread.
  EXPECT_TRUE(budget.Charge(2));
  EXPECT_FALSE(budget.Charge(4));  // 6 > 5 nodes: trips
  EXPECT_EQ(budget.reason(), limits::StopReason::kNodeBudget);
  EXPECT_EQ(scope.Snapshot().trip_reason, "node-budget");
}

TEST_F(ObsScopeTest, FirstTripReasonWins) {
  const obs::Scope scope = obs::Scope::Create("scope_test.first_trip");
  scope.SetTripReason("deadline");
  scope.SetTripReason("node-budget");
  EXPECT_EQ(scope.Snapshot().trip_reason, "deadline");
}

TEST_F(ObsScopeTest, CaptureTraceContextCarriesTheActiveScope) {
  const obs::Scope scope = obs::Scope::Create("scope_test.context");
  obs::TraceContext context;
  {
    const obs::ScopeGuard guard(scope);
    context = obs::CaptureTraceContext();
  }
  EXPECT_EQ(context.scope.id(), scope.id());
  EXPECT_FALSE(obs::CurrentScope().active());
  {
    const obs::TraceContextGuard guard(context);
    EXPECT_EQ(obs::CurrentScope().id(), scope.id());
  }
  EXPECT_FALSE(obs::CurrentScope().active());
}

TEST_F(ObsScopeTest, RunReportCarriesPerQuerySectionAndValidates) {
  const obs::Scope scope = obs::Scope::Create("scope_test.report");
  {
    const obs::ScopeGuard guard(scope);
    PSC_OBS_COUNTER_ADD("scope_test.report_counter", 7);
  }
  scope.SetTripReason("deadline");

  const obs::RunReport report = obs::RunReport::Capture();
  bool found = false;
  for (const obs::ScopeSnapshot& query : report.queries) {
    if (query.id != scope.id()) continue;
    found = true;
    EXPECT_EQ(query.name, "scope_test.report");
    EXPECT_EQ(query.trip_reason, "deadline");
#if PSC_OBS_ENABLED
    EXPECT_EQ(CounterValue(query, "scope_test.report_counter"), 7u);
#endif
  }
  EXPECT_TRUE(found);

  const std::string json = report.ToJson();
  const Status valid = obs::ValidateRunReportJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST_F(ObsScopeTest, DroppedScopesVanishFromCapture) {
  uint64_t dropped_id = 0;
  {
    const obs::Scope ephemeral = obs::Scope::Create("scope_test.ephemeral");
    dropped_id = ephemeral.id();
  }
  for (const obs::ScopeSnapshot& query :
       obs::CaptureScopeSnapshots()) {
    EXPECT_NE(query.id, dropped_id);
  }
}

}  // namespace
}  // namespace psc
