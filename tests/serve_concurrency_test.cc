// Concurrency tests for the resident engine: many client threads racing
// answers against apply-delta mutations and collection reloads, with
// background dispatchers and batch fan-out. Run under TSan in CI; the
// assertions here are about the contract (every request gets exactly one
// ok response; the final state is deterministic), the sanitizer checks
// the synchronization.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "psc/serve/engine.h"
#include "psc/serve/protocol.h"
#include "test_util.h"

namespace psc::serve {
namespace {

constexpr const char* kCollectionText =
    "source S1 {\n"
    "  view: V1(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V1(\"a\"), V1(\"b\")\n"
    "}\n"
    "source S2 {\n"
    "  view: V2(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V2(\"b\"), V2(\"c\")\n"
    "}\n";

const char* kQueries[] = {
    "Ans(x) <- R(x)",
    "Ans(x, y) <- R(x), R(y)",
    "Ans(x) <- R(x), R(x)",
};

std::string LoadLine() {
  JsonObjectWriter writer;
  writer.String("verb", "load");
  writer.String("text", kCollectionText);
  return writer.Finish();
}

std::string AnswerLine(size_t query_index, const std::string& id = "") {
  JsonObjectWriter writer;
  writer.String("verb", "answer");
  if (!id.empty()) writer.String("id", id);
  writer.String("query", kQueries[query_index % 3]);
  return writer.Finish();
}

std::string DeltaLine(bool insert) {
  JsonObjectWriter writer;
  writer.String("verb", "apply-delta");
  writer.String("script", insert ? "+ S1(\"c\")" : "- S1(\"c\")");
  return writer.Finish();
}

bool IsOk(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

TEST(ServeConcurrencyTest, AnswersRaceDeltasAndReloads) {
  EngineOptions options;
  options.dispatch_threads = 2;
  options.solver_threads = 1;
  options.max_batch = 8;
  Engine engine(options);
  ASSERT_TRUE(IsOk(engine.Call(0, LoadLine())));

  constexpr size_t kClientThreads = 6;
  constexpr size_t kRequestsPerClient = 25;
  constexpr size_t kDeltaToggles = 20;  // even: ends back at the base state
  constexpr size_t kReloads = 5;

  std::atomic<size_t> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads + 2);
  for (size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const std::string response =
            engine.Call(/*session=*/c + 1, AnswerLine(c + r));
        if (!IsOk(response)) failures.fetch_add(1);
      }
    });
  }
  // One mutator toggling a tuple in and out: every answer above races a
  // cache invalidation, and an even toggle count restores the base state.
  clients.emplace_back([&] {
    for (size_t t = 0; t < kDeltaToggles; ++t) {
      const std::string response =
          engine.Call(/*session=*/100, DeltaLine(t % 2 == 0));
      if (!IsOk(response)) failures.fetch_add(1);
    }
  });
  // One reloader replacing the resident system outright: dispatchers
  // executing against the old instance must keep it alive (shared
  // ownership), never read freed memory.
  clients.emplace_back([&] {
    for (size_t r = 0; r < kReloads; ++r) {
      const std::string response = engine.Call(/*session=*/101, LoadLine());
      if (!IsOk(response)) failures.fetch_add(1);
    }
  });
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0u);

  // Deterministic endpoint: the reload restored the base collection and
  // the toggles cancelled out, so the warm engine's final answers must be
  // byte-identical to a fresh engine's — warm-state reuse never changes
  // results, only cost.
  EngineOptions fresh_options;
  fresh_options.dispatch_threads = 0;
  fresh_options.solver_threads = 1;
  Engine fresh(fresh_options);
  ASSERT_TRUE(IsOk(fresh.Call(0, LoadLine())));
  const auto payload = [](const std::string& response) {
    const size_t at = response.find("\"worlds_used\"");
    return at == std::string::npos ? response : response.substr(at);
  };
  for (size_t q = 0; q < 3; ++q) {
    const std::string warm = engine.Call(0, AnswerLine(q, "x"));
    const std::string cold = fresh.Call(0, AnswerLine(q, "x"));
    ASSERT_TRUE(IsOk(warm)) << warm;
    ASSERT_TRUE(IsOk(cold)) << cold;
    EXPECT_EQ(payload(warm), payload(cold));
  }

  engine.BeginShutdown();
  engine.Drain();
}

TEST(ServeConcurrencyTest, ConcurrentSubmitsAllAnswerUnderShutdown) {
  EngineOptions options;
  options.dispatch_threads = 2;
  options.solver_threads = 1;
  Engine engine(options);
  ASSERT_TRUE(IsOk(engine.Call(0, LoadLine())));

  // Fire-and-forget submissions from several threads while shutdown races
  // in: every submission must get exactly one callback, whether it was
  // accepted (answered during the drain) or rejected at admission.
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 20;
  std::atomic<size_t> callbacks{0};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t r = 0; r < kPerThread; ++r) {
        engine.Submit(t + 1, AnswerLine(r),
                      [&](const std::string&) { callbacks.fetch_add(1); });
      }
    });
  }
  engine.BeginShutdown();
  for (std::thread& thread : submitters) thread.join();
  engine.Drain();
  EXPECT_EQ(callbacks.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace psc::serve
