// Lemma 3.1: every possible world contains a possible sub-world of size
// at most maxᵢ|body(φᵢ)|·Σᵢ|vᵢ|, constructible from witness valuations.

#include "psc/consistency/shrink_witness.h"

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/workload/ghcn.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

void ExpectLemma31(const SourceCollection& collection,
                   const Database& world) {
  auto shrunk = ShrinkWitness(collection, world);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_TRUE(shrunk->IsSubsetOf(world));
  EXPECT_LE(shrunk->size(), collection.WitnessSizeBound());
  auto possible = collection.IsPossibleWorld(*shrunk);
  ASSERT_TRUE(possible.ok());
  EXPECT_TRUE(*possible);
}

TEST(ShrinkWitnessTest, RejectsNonWorlds) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1", "1")});
  Database not_a_world;
  not_a_world.AddFact("R", U(9));
  EXPECT_EQ(ShrinkWitness(collection, not_a_world).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShrinkWitnessTest, IdentityWorldsShrinkToSoundCore) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/3", "1/2")});
  // G = {0, 1, 2}: soundness 1, completeness 2/3 — a bloated world.
  Database world;
  world.AddFact("R", U(0));
  world.AddFact("R", U(1));
  world.AddFact("R", U(2));
  ExpectLemma31(collection, world);
  auto shrunk = ShrinkWitness(collection, world);
  ASSERT_TRUE(shrunk.ok());
  // Only claimed facts survive: the unclaimed R(2) contributes to no
  // witness valuation.
  EXPECT_EQ(*shrunk, [] {
    Database expected;
    expected.AddFact("R", U(0));
    expected.AddFact("R", U(1));
    return expected;
  }());
}

TEST(ShrinkWitnessTest, EveryBruteForcedWorldShrinks) {
  Rng rng(606);
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 3;
  int worlds_checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    BruteForceWorldEnumerator enumerator(&*collection, IntDomain(4));
    ASSERT_TRUE(enumerator
                    .ForEachPossibleWorld([&](const Database& world) {
                      ExpectLemma31(*collection, world);
                      ++worlds_checked;
                      return true;
                    })
                    .ok());
  }
  EXPECT_GT(worlds_checked, 0);
}

TEST(ShrinkWitnessTest, GhcnTruthShrinksBelowBound) {
  // The ground truth is large (hundreds of readings); the lemma bound is
  // maxᵢ|body|·Σ|vᵢ|, and the construction must land under it.
  GhcnConfig config;
  config.num_stations = 9;
  config.start_year = 1990;
  config.end_year = 1991;
  GhcnGenerator generator(config, 12);
  const GhcnWorld world = generator.GenerateTruth();
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada", 1900, 0.4,
                                        0.0);
  auto s2 = generator.MakeCountrySource(world, "S2", "US", 1900, 0.3, 0.0);
  ASSERT_TRUE(s0.ok() && s1.ok() && s2.ok());
  auto collection = SourceCollection::Create({*s0, *s1, *s2});
  ASSERT_TRUE(collection.ok());
  ASSERT_TRUE(*collection->IsPossibleWorld(world.truth));

  auto shrunk = ShrinkWitness(*collection, world.truth);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_TRUE(shrunk->IsSubsetOf(world.truth));
  EXPECT_LE(shrunk->size(), collection->WitnessSizeBound());
  EXPECT_LT(shrunk->size(), world.truth.size());
  EXPECT_TRUE(*collection->IsPossibleWorld(*shrunk));
}

TEST(ShrinkWitnessTest, JoinViewKeepsWitnessBodies) {
  // V(x) ← E(x, y), N(y) with a sound claim {0}: shrinking a bloated
  // world must keep one E(0, y) + N(y) pair.
  auto view = testing::Q("V(x) <- E(x, y), N(y)");
  auto source = SourceDescriptor::Create("J", view, {U(0)},
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  Database world;
  world.AddFact("E", {Value(int64_t{0}), Value(int64_t{5})});
  world.AddFact("E", {Value(int64_t{0}), Value(int64_t{6})});
  world.AddFact("E", {Value(int64_t{7}), Value(int64_t{8})});
  world.AddFact("N", {Value(int64_t{5})});
  world.AddFact("N", {Value(int64_t{6})});
  ASSERT_TRUE(*collection->IsPossibleWorld(world));
  auto shrunk = ShrinkWitness(*collection, world);
  ASSERT_TRUE(shrunk.ok());
  // One body instantiation: exactly 2 facts, E(0,y) and N(y).
  EXPECT_EQ(shrunk->size(), 2u);
  EXPECT_EQ(shrunk->GetRelation("E").size(), 1u);
  EXPECT_EQ(shrunk->GetRelation("N").size(), 1u);
}

}  // namespace
}  // namespace psc
