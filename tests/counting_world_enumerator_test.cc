#include "psc/counting/world_enumerator.h"

#include <set>

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/counting/confidence.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(WorldEnumeratorTest, MatchesBruteForceSetOfWorlds) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  const std::vector<Value> domain = IntDomain(5);

  std::set<Database> via_groups;
  auto instance = IdentityInstance::Create(collection, domain);
  ASSERT_TRUE(instance.ok());
  IdentityWorldEnumerator enumerator(&*instance);
  auto completed = enumerator.ForEachWorld([&](const Database& world) {
    EXPECT_TRUE(via_groups.insert(world).second) << "duplicate world";
    return true;
  });
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_TRUE(*completed);

  std::set<Database> via_brute;
  BruteForceWorldEnumerator brute(&collection, domain);
  ASSERT_TRUE(brute
                  .ForEachPossibleWorld([&](const Database& world) {
                    via_brute.insert(world);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(via_groups, via_brute);
}

TEST(WorldEnumeratorTest, CountMatchesCounter) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1, 2}, "1/3", "1/3"),
                           MakeUnarySource("S2", {2, 3}, "1/2", "1/2")});
  auto instance = IdentityInstance::Create(collection, IntDomain(5));
  ASSERT_TRUE(instance.ok());
  auto table = ComputeBaseFactConfidences(*instance);
  ASSERT_TRUE(table.ok());
  uint64_t enumerated = 0;
  IdentityWorldEnumerator enumerator(&*instance);
  ASSERT_TRUE(enumerator
                  .ForEachWorld([&](const Database&) {
                    ++enumerated;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(enumerated, table->world_count.ToUint64());
}

TEST(WorldEnumeratorTest, EarlyStopHonored) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(6));
  ASSERT_TRUE(instance.ok());
  IdentityWorldEnumerator enumerator(&*instance);
  int seen = 0;
  auto completed = enumerator.ForEachWorld([&](const Database&) {
    return ++seen < 5;
  });
  ASSERT_TRUE(completed.ok());
  EXPECT_FALSE(*completed);
  EXPECT_EQ(seen, 5);
}

TEST(WorldEnumeratorTest, WorldBudgetEnforced) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "0")});
  auto instance = IdentityInstance::Create(collection, IntDomain(10));
  ASSERT_TRUE(instance.ok());
  IdentityWorldEnumerator enumerator(&*instance);
  auto completed = enumerator.ForEachWorld(
      [](const Database&) { return true; }, /*max_worlds=*/10);
  EXPECT_EQ(completed.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace psc
