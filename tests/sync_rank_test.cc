// Death tests for the debug lock-rank deadlock detector
// (src/psc/sync/mutex.cc). Each EXPECT_DEATH forks, so rank checking is
// force-enabled inside the death statement to make the tests meaningful
// in Release builds too.

#include <thread>

#include "gtest/gtest.h"
#include "psc/sync/mutex.h"
#include "psc/sync/rank.h"

namespace psc::sync {
namespace {

class RankDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Forked death statements inherit the parent's style; threadsafe
    // re-executes the binary, which is required because the suite (and
    // the process under test) is multi-threaded.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    was_enabled_ = RankCheckingEnabled();
    SetRankCheckingEnabled(true);
  }
  void TearDown() override { SetRankCheckingEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(RankDeathTest, AscendingOrderIsAllowed) {
  Mutex outer("test.outer", 10);
  Mutex inner("test.inner", 20);
  {
    MutexLock lock_outer(&outer);
    MutexLock lock_inner(&inner);
  }
  // Releasing and re-acquiring in the other order is fine too, as long as
  // they are never *nested* out of rank.
  {
    MutexLock lock_inner(&inner);
  }
  {
    MutexLock lock_outer(&outer);
  }
  SUCCEED();
}

TEST_F(RankDeathTest, InversionAborts) {
  Mutex outer("test.outer", 10);
  Mutex inner("test.inner", 20);
  EXPECT_DEATH(
      {
        SetRankCheckingEnabled(true);
        MutexLock lock_inner(&inner);
        MutexLock lock_outer(&outer);  // 10 while holding 20: inversion
      },
      "lock rank inversion.*test\\.outer.*test\\.inner");
}

TEST_F(RankDeathTest, ReverseInversionAlsoAborts) {
  // The A->B / B->A pair: one order must abort no matter which the
  // checker sees first, because the rule is structural (strict ascent),
  // not history-based.
  Mutex a("test.a", 30);
  Mutex b("test.b", 40);
  {
    MutexLock lock_a(&a);
    MutexLock lock_b(&b);  // ascending: fine
  }
  EXPECT_DEATH(
      {
        SetRankCheckingEnabled(true);
        MutexLock lock_b(&b);
        MutexLock lock_a(&a);  // descending: abort
      },
      "lock rank inversion.*test\\.a.*test\\.b");
}

TEST_F(RankDeathTest, EqualRankNestingAborts) {
  // Same-rank nesting is forbidden (strict >): two locks at one rank must
  // never be held together, which is what makes same-rank classes (e.g.
  // per-shard memo locks, per-connection write locks) deadlock-free.
  Mutex first("test.first", 50);
  Mutex second("test.second", 50);
  EXPECT_DEATH(
      {
        SetRankCheckingEnabled(true);
        MutexLock lock_first(&first);
        MutexLock lock_second(&second);
      },
      "lock rank inversion.*test\\.second.*test\\.first");
}

TEST_F(RankDeathTest, SharedAcquisitionParticipates) {
  SharedMutex data("test.data", 40);
  Mutex cache("test.cache", 50);
  {
    ReaderLock read(&data);
    MutexLock lock(&cache);  // ascending through a shared hold: fine
  }
  EXPECT_DEATH(
      {
        SetRankCheckingEnabled(true);
        MutexLock lock(&cache);
        ReaderLock read(&data);  // shared acquire below held rank: abort
      },
      "lock rank inversion.*test\\.data.*test\\.cache");
}

TEST_F(RankDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu("test.assert", 10);
  EXPECT_DEATH(
      {
        SetRankCheckingEnabled(true);
        mu.AssertHeld();
      },
      "AssertHeld.*test\\.assert");
}

TEST_F(RankDeathTest, RanksAreThreadLocal) {
  // A second thread holding a high-rank lock must not poison this
  // thread's ordering: the held stack is thread-local.
  Mutex low("test.low", 10);
  Mutex high("test.high", 90);
  high.Lock();
  std::thread other([&] {
    MutexLock lock(&low);  // fresh stack: rank 10 with nothing held is fine
  });
  other.join();
  high.Unlock();
  SUCCEED();
}

TEST_F(RankDeathTest, DisabledCheckingDoesNotAbort) {
  SetRankCheckingEnabled(false);
  Mutex outer("test.outer", 10);
  Mutex inner("test.inner", 20);
  {
    MutexLock lock_inner(&inner);
    MutexLock lock_outer(&outer);  // inversion, but checking is off
  }
  SUCCEED();
}

}  // namespace
}  // namespace psc::sync
