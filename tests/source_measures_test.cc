#include "psc/source/measures.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::U;

Database Db(const std::vector<int64_t>& facts) {
  Database db;
  for (const int64_t fact : facts) db.AddFact("R", {Value(fact)});
  return db;
}

TEST(MeasuresTest, DefinitionsOnIdentityView) {
  // v = {1,2,3}, D = {2,3,4} → φ(D) = D, intersection = {2,3}.
  auto source = testing::MakeUnarySource("S", {1, 2, 3}, "0", "0");
  auto measures = ComputeMeasures(source, Db({2, 3, 4}));
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->view_result_size, 3);
  EXPECT_EQ(measures->extension_size, 3);
  EXPECT_EQ(measures->intersection_size, 2);
  EXPECT_EQ(measures->completeness, Rational(2, 3));
  EXPECT_EQ(measures->soundness, Rational(2, 3));
}

TEST(MeasuresTest, EmptyViewResultIsVacuouslyComplete) {
  auto source = testing::MakeUnarySource("S", {1}, "1", "0");
  auto measures = ComputeMeasures(source, Db({}));
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->completeness, Rational::One());
  EXPECT_EQ(measures->soundness, Rational::Zero());
}

TEST(MeasuresTest, EmptyExtensionIsVacuouslySound) {
  auto source = testing::MakeUnarySource("S", {}, "0", "1");
  auto measures = ComputeMeasures(source, Db({1, 2}));
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->soundness, Rational::One());
  EXPECT_EQ(measures->completeness, Rational::Zero());
}

TEST(MeasuresTest, SatisfiesBoundsChecksBoth) {
  auto source = testing::MakeUnarySource("S", {1, 2}, "1/2", "1/2");
  // D = {1,3}: soundness 1/2 ✓, completeness 1/2 ✓.
  EXPECT_TRUE(*SatisfiesBounds(source, Db({1, 3})));
  // D = {3,4}: soundness 0 ✗.
  EXPECT_FALSE(*SatisfiesBounds(source, Db({3, 4})));
  // D = {1,3,4}: completeness 1/3 ✗.
  EXPECT_FALSE(*SatisfiesBounds(source, Db({1, 3, 4})));
  // D = {1,2}: both 1 ✓.
  EXPECT_TRUE(*SatisfiesBounds(source, Db({1, 2})));
}

TEST(MeasuresTest, SoundCompleteExactPredicates) {
  auto source = testing::MakeUnarySource("S", {1, 2}, "0", "0");
  EXPECT_TRUE(*IsSound(source, Db({1, 2, 3})));     // v ⊆ φ(D)
  EXPECT_FALSE(*IsComplete(source, Db({1, 2, 3})));
  EXPECT_TRUE(*IsComplete(source, Db({1})));        // v ⊇ φ(D)
  EXPECT_FALSE(*IsSound(source, Db({1})));
  EXPECT_TRUE(*IsExact(source, Db({1, 2})));
  EXPECT_FALSE(*IsExact(source, Db({1})));
  EXPECT_FALSE(*IsExact(source, Db({1, 2, 3})));
}

TEST(MeasuresTest, NonIdentityViewUsesQuerySemantics) {
  // View selects Canadian stations only.
  auto view = testing::Q(
      "V(s) <- Station(s, lat, lon, c), Eq(c, \"Canada\")");
  Relation extension = {U(1), U(99)};  // 99 is a bogus claim
  auto source = SourceDescriptor::Create("S", view, extension, Rational(1, 2),
                                         Rational(1, 2));
  ASSERT_TRUE(source.ok());
  Database db;
  db.AddFact("Station", {Value(int64_t{1}), Value(int64_t{45}),
                         Value(int64_t{-75}), Value("Canada")});
  db.AddFact("Station", {Value(int64_t{2}), Value(int64_t{40}),
                         Value(int64_t{-74}), Value("US")});
  auto measures = ComputeMeasures(*source, db);
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->view_result_size, 1);   // only station 1
  EXPECT_EQ(measures->intersection_size, 1);  // the bogus 99 is unsound
  EXPECT_EQ(measures->soundness, Rational(1, 2));
  EXPECT_EQ(measures->completeness, Rational::One());
}

}  // namespace
}  // namespace psc
