# Negative-compilation harness for the thread-safety annotations
# (ISSUE 9 / DESIGN.md §14). Run as a ctest:
#
#   cmake -DSOURCE_ROOT=<repo> -P tests/run_annotation_check.cmake
#
# Requires a Clang compiler (the analysis is Clang-only). When none is on
# PATH the script prints "SKIP: ...", which the ctest registration maps
# to SKIPPED via SKIP_REGULAR_EXPRESSION — GCC-only environments stay
# green without pretending to have verified anything.
#
# Contract:
#   * sync_negative/good_locked_access.cc compiles cleanly with
#     -Wthread-safety -Werror (harness control).
#   * every sync_negative/bad_*.cc FAILS to compile, and the diagnostic
#     mentions -Wthread-safety-analysis (so a failure for an unrelated
#     reason — a typo, a missing include — does not masquerade as the
#     analysis working).

if(NOT DEFINED SOURCE_ROOT)
  message(FATAL_ERROR "pass -DSOURCE_ROOT=<repo root>")
endif()

find_program(PSC_CLANGXX NAMES clang++ clang++-18 clang++-17 clang++-16
             clang++-15 clang++-14)
if(NOT PSC_CLANGXX)
  # Matched by the test's SKIP_REGULAR_EXPRESSION → reported as SKIPPED.
  message(STATUS "SKIP: no clang++ on PATH; thread-safety analysis "
                 "is Clang-only")
  return()
endif()

set(FLAGS -std=c++17 -fsyntax-only -Wthread-safety -Werror
    -I${SOURCE_ROOT}/src)
set(SNIPPET_DIR ${SOURCE_ROOT}/tests/sync_negative)

# Control: correct code must pass.
execute_process(
  COMMAND ${PSC_CLANGXX} ${FLAGS} ${SNIPPET_DIR}/good_locked_access.cc
  RESULT_VARIABLE good_result
  ERROR_VARIABLE good_stderr)
if(NOT good_result EQUAL 0)
  message(FATAL_ERROR
      "good_locked_access.cc failed to compile under -Wthread-safety "
      "-Werror; the harness or annotations are broken:\n${good_stderr}")
endif()
message(STATUS "PASS good_locked_access.cc compiles cleanly")

# Every bad_*.cc must fail, with a thread-safety diagnostic.
file(GLOB bad_snippets ${SNIPPET_DIR}/bad_*.cc)
list(LENGTH bad_snippets bad_count)
if(bad_count EQUAL 0)
  message(FATAL_ERROR "no bad_*.cc snippets found in ${SNIPPET_DIR}")
endif()
foreach(snippet IN LISTS bad_snippets)
  get_filename_component(name ${snippet} NAME)
  execute_process(
    COMMAND ${PSC_CLANGXX} ${FLAGS} ${snippet}
    RESULT_VARIABLE bad_result
    ERROR_VARIABLE bad_stderr)
  if(bad_result EQUAL 0)
    message(FATAL_ERROR
        "${name} COMPILED but must be rejected by -Wthread-safety "
        "-Werror: the annotations are not catching the violation")
  endif()
  if(NOT bad_stderr MATCHES "thread-safety")
    message(FATAL_ERROR
        "${name} failed for the wrong reason (expected a "
        "-Wthread-safety-analysis diagnostic):\n${bad_stderr}")
  endif()
  message(STATUS "PASS ${name} rejected with a thread-safety diagnostic")
endforeach()

message(STATUS "annotation check: 1 control + ${bad_count} negative "
               "snippet(s) ok")
