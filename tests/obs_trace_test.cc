#include "psc/obs/trace.h"

#include <algorithm>
#include <string>

#include "gtest/gtest.h"
#include "psc/obs/json.h"
#include "psc/obs/report.h"

namespace psc {
namespace {

const obs::SpanRecord* FindSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  const auto it =
      std::find_if(spans.begin(), spans.end(),
                   [&name](const obs::SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

// Tracing shares one process-global buffer and option block; each test
// starts from a clean, tracing-enabled state and restores the defaults.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Options options;
    options.trace_enabled = true;
    obs::SetOptions(options);
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
};

TEST_F(ObsTraceTest, NestedSpansRecordParentAndDepth) {
  {
    obs::TraceSpan root("obs_test.root");
    {
      obs::TraceSpan child("obs_test.child");
      obs::TraceSpan grandchild("obs_test.grandchild");
      (void)grandchild;
      (void)child;
    }
    (void)root;
  }
  const std::vector<obs::SpanRecord> spans = obs::GlobalTrace().Snapshot();
  ASSERT_EQ(spans.size(), 3u);

  const obs::SpanRecord* root = FindSpan(spans, "obs_test.root");
  const obs::SpanRecord* child = FindSpan(spans, "obs_test.child");
  const obs::SpanRecord* grandchild = FindSpan(spans, "obs_test.grandchild");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);

  EXPECT_EQ(root->parent_id, -1);
  EXPECT_EQ(root->depth, 0u);
  EXPECT_EQ(child->parent_id, static_cast<int64_t>(root->id));
  EXPECT_EQ(child->depth, 1u);
  EXPECT_EQ(grandchild->parent_id, static_cast<int64_t>(child->id));
  EXPECT_EQ(grandchild->depth, 2u);

  // A parent's interval encloses its child's.
  EXPECT_LE(root->start_us, child->start_us);
  EXPECT_GE(root->start_us + root->duration_us,
            child->start_us + child->duration_us);
}

TEST_F(ObsTraceTest, SpansAreNotBufferedWhenTracingIsOff) {
  obs::SetOptions(obs::Options{});  // trace_enabled = false
  { obs::TraceSpan span("obs_test.untraced"); (void)span; }
  EXPECT_TRUE(obs::GlobalTrace().Snapshot().empty());
  // The histogram timing is still recorded: spans always time their scope.
  EXPECT_EQ(
      obs::GlobalMetrics().GetHistogram("obs_test.untraced").count(), 1u);
}

TEST_F(ObsTraceTest, DepthLimitSuppressesDeepSpans) {
  obs::Options options;
  options.trace_enabled = true;
  options.trace_depth_limit = 1;
  obs::SetOptions(options);
  {
    obs::TraceSpan root("obs_test.shallow");
    {
      obs::TraceSpan deep("obs_test.deep");
      (void)deep;
    }
    (void)root;
  }
  const std::vector<obs::SpanRecord> spans = obs::GlobalTrace().Snapshot();
  EXPECT_NE(FindSpan(spans, "obs_test.shallow"), nullptr);
  EXPECT_EQ(FindSpan(spans, "obs_test.deep"), nullptr);
}

TEST_F(ObsTraceTest, BufferCountsDroppedSpansPastCapacity) {
  obs::TraceBuffer buffer;
  buffer.SetCapacity(2);
  for (uint64_t i = 0; i < 5; ++i) {
    obs::SpanRecord record;
    record.id = i;
    record.name = "overflow";
    buffer.Append(record);
  }
  EXPECT_EQ(buffer.Snapshot().size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  buffer.Clear();
  EXPECT_TRUE(buffer.Snapshot().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(ObsTraceTest, SetCapacityTruncatesRetroactively) {
  obs::TraceBuffer buffer;
  for (uint64_t i = 0; i < 5; ++i) {
    obs::SpanRecord record;
    record.id = i;
    record.name = "retro";
    buffer.Append(record);
  }
  ASSERT_EQ(buffer.Snapshot().size(), 5u);
  // Shrinking below the current size drops the excess and counts it.
  buffer.SetCapacity(3);
  EXPECT_EQ(buffer.Snapshot().size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  // Growing never resurrects dropped records.
  buffer.SetCapacity(10);
  EXPECT_EQ(buffer.Snapshot().size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
}

TEST_F(ObsTraceTest, RecordedSpansCarryThreadLane) {
  { obs::TraceSpan span("obs_test.lane"); (void)span; }
  const std::vector<obs::SpanRecord> spans = obs::GlobalTrace().Snapshot();
  const obs::SpanRecord* record = FindSpan(spans, "obs_test.lane");
  ASSERT_NE(record, nullptr);
  // Lane ids are dense and start at 1; this thread has one.
  EXPECT_GE(record->tid, 1u);
  EXPECT_EQ(record->tid, obs::CurrentThreadLaneId());
  // No scope installed: the span belongs to the global scope (id 0).
  EXPECT_EQ(record->scope_id, 0u);
}

TEST_F(ObsTraceTest, FormatSpanTreeIndentsChildrenBelowParents) {
  {
    obs::TraceSpan root("obs_test.tree_root");
    obs::TraceSpan child("obs_test.tree_child");
    (void)child;
    (void)root;
  }
  const std::string tree =
      obs::FormatSpanTree(obs::GlobalTrace().Snapshot());
  const size_t root_pos = tree.find("obs_test.tree_root");
  const size_t child_pos = tree.find("obs_test.tree_child");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_LT(root_pos, child_pos);  // parents print before their children
}

TEST_F(ObsTraceTest, RunReportJsonRoundTripsThroughParser) {
  obs::GlobalMetrics().GetCounter("obs_test.rt_counter").Increment(17);
  obs::GlobalMetrics().GetGauge("obs_test.rt_gauge").Set(-4);
  obs::GlobalMetrics().GetHistogram("obs_test.rt_histogram").Record(1000);
  {
    obs::TraceSpan root("obs_test.rt_root");
    obs::TraceSpan child("obs_test.rt_child");
    (void)child;
    (void)root;
  }

  const std::string json = obs::RunReport::Capture().ToJson();
  auto document = obs::ParseJson(json);
  ASSERT_TRUE(document.ok()) << document.status().ToString();

  const obs::JsonValue* version = document->Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(static_cast<int>(version->number()),
            obs::kRunReportSchemaVersion);

  const obs::JsonValue* counters = document->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* counter = counters->Find("obs_test.rt_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number(), 17.0);

  const obs::JsonValue* gauges = document->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const obs::JsonValue* gauge = gauges->Find("obs_test.rt_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number(), -4.0);

  const obs::JsonValue* histograms = document->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const obs::JsonValue* histogram =
      histograms->Find("obs_test.rt_histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Find("count")->number(), 1.0);
  EXPECT_EQ(histogram->Find("sum")->number(), 1000.0);

  const obs::JsonValue* spans = document->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->array().size(), 2u);
  bool found_child = false;
  for (const obs::JsonValue& span : spans->array()) {
    ASSERT_NE(span.Find("name"), nullptr);
    if (span.Find("name")->string() == "obs_test.rt_child") {
      found_child = true;
      EXPECT_EQ(span.Find("depth")->number(), 1.0);
      EXPECT_NE(span.Find("parent")->number(), -1.0);
    }
  }
  EXPECT_TRUE(found_child);
}

TEST_F(ObsTraceTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace psc
